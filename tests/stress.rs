//! Opt-in stress tests (`cargo test --workspace -- --ignored`): large-n
//! scaling sanity beyond what the default suite exercises.

use dvs_rejection::model::generator::WorkloadSpec;
use dvs_rejection::power::presets::xscale_ideal;
use dvs_rejection::sched::algorithms::{MarginalGreedy, ScaledDp};
use dvs_rejection::sched::bounds::fractional_lower_bound;
use dvs_rejection::sched::{Instance, RejectionPolicy};

#[test]
#[ignore = "stress: ~10k tasks, run with --ignored"]
fn greedy_handles_ten_thousand_tasks() {
    let tasks = WorkloadSpec::new(10_000, 40.0).seed(1).generate().unwrap();
    let instance = Instance::new(tasks, xscale_ideal()).unwrap();
    let s = MarginalGreedy.solve(&instance).unwrap();
    s.verify(&instance).unwrap();
    let lb = fractional_lower_bound(&instance).unwrap();
    assert!(
        s.cost() <= lb * 1.05,
        "greedy {:.1} should track the bound {lb:.1} closely at this scale",
        s.cost()
    );
}

#[test]
#[ignore = "stress: scaled DP at n = 500, run with --ignored"]
fn scaled_dp_handles_five_hundred_tasks() {
    let tasks = WorkloadSpec::new(500, 5.0).seed(2).generate().unwrap();
    let instance = Instance::new(tasks, xscale_ideal()).unwrap();
    let s = ScaledDp::new(0.2).unwrap().solve(&instance).unwrap();
    s.verify(&instance).unwrap();
    let g = MarginalGreedy.solve(&instance).unwrap();
    assert!(s.cost() <= g.cost() * 1.001 + 1e-9);
}

#[test]
#[ignore = "stress: long simulation horizon, run with --ignored"]
fn simulator_sustains_long_horizons() {
    use dvs_rejection::sim::{Simulator, SpeedProfile};
    let tasks = WorkloadSpec::new(20, 0.9).seed(3).generate().unwrap();
    let cpu = xscale_ideal();
    let u = tasks.utilization();
    // 100 hyper-periods.
    let horizon = tasks.hyper_period() * 100;
    let report = Simulator::new(&tasks, &cpu)
        .with_profile(SpeedProfile::constant(u).unwrap())
        .run(horizon)
        .unwrap();
    assert!(report.misses().is_empty());
    assert!(report.completed_jobs() > 10_000);
}
