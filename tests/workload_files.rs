//! The shipped sample workload files stay parseable and solvable — the
//! contract behind the `dvs-reject` CLI walkthroughs in the README.

use dvs_rejection::model::io::{format_task_set, load_task_set, parse_task_set};
use dvs_rejection::power::presets::xscale_ideal;
use dvs_rejection::sched::algorithms::BranchBound;
use dvs_rejection::sched::constrained::ConstrainedInstance;
use dvs_rejection::sched::{Instance, RejectionPolicy};

#[test]
fn media_server_workload_round_trips_and_solves() {
    let tasks = load_task_set("examples/workloads/media_server.tasks").unwrap();
    assert_eq!(tasks.len(), 10);
    assert!(tasks.iter().all(rt_model_is_implicit));
    let again = parse_task_set(&format_task_set(&tasks)).unwrap();
    assert_eq!(tasks, again);

    let instance = Instance::new(tasks, xscale_ideal()).unwrap();
    assert!(instance.is_overloaded());
    let sol = BranchBound::default().solve(&instance).unwrap();
    sol.verify(&instance).unwrap();
    assert!(!sol.accepted().is_empty());
    let report = sol.replay(&instance).unwrap();
    assert!(report.misses().is_empty());
}

#[test]
fn control_loops_workload_uses_the_yds_oracle() {
    let tasks = load_task_set("examples/workloads/control_loops.tasks").unwrap();
    assert!(tasks.iter().any(|t| !t.is_implicit_deadline()));
    let inst = ConstrainedInstance::new(tasks, xscale_ideal()).unwrap();
    let greedy = inst.solve_greedy().unwrap();
    let opt = inst.solve_exhaustive().unwrap();
    greedy.verify(&inst).unwrap();
    opt.verify(&inst).unwrap();
    assert!(greedy.cost() >= opt.cost() - 1e-9);
    let report = opt.replay(&inst).unwrap();
    assert!(report.misses().is_empty());
}

fn rt_model_is_implicit(t: &dvs_rejection::model::Task) -> bool {
    t.is_implicit_deadline()
}
