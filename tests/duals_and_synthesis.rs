//! Integration tests tying the primal rejection problem to its duals:
//! energy budgets, acceptance prices, capacity values, and processor-count
//! synthesis.

use dvs_rejection::model::generator::{PenaltyModel, WorkloadSpec};
use dvs_rejection::model::transform;
use dvs_rejection::multi::synthesis::{energy_floor, min_processors};
use dvs_rejection::power::presets::{cubic_ideal, xscale_ideal};
use dvs_rejection::sched::algorithms::BranchBound;
use dvs_rejection::sched::analysis::{acceptance_price, capacity_value};
use dvs_rejection::sched::budget::{solve_budget_dp, utilization_cap_for_budget};
use dvs_rejection::sched::{Instance, RejectionPolicy};
use rt_model::Task;

/// Weak duality across the whole stack: for every budget, the value served
/// by the budget DP plus the penalties of the tasks it leaves out is an
/// upper bound certificate consistent with the primal optimum.
#[test]
fn budget_frontier_brackets_the_primal_optimum() {
    for seed in 0..4 {
        let tasks = WorkloadSpec::new(12, 1.8).seed(seed).generate().unwrap();
        let inst = Instance::new(tasks, xscale_ideal()).unwrap();
        let primal = BranchBound::default().solve(&inst).unwrap();
        // Pose the dual at the primal's own energy: it must shelter at
        // least as much value as the primal does.
        let dual = solve_budget_dp(&inst, primal.energy() * (1.0 + 1e-9), 0.01).unwrap();
        let primal_served = inst.total_penalty() - primal.penalty();
        let v_max = inst.tasks().iter().map(Task::penalty).fold(0.0, f64::max);
        assert!(
            dual.value() >= primal_served - 0.01 * v_max - 1e-6,
            "seed {seed}: dual value {} below primal served {primal_served}",
            dual.value()
        );
        // And the primal cost decomposes as E + (V_total − served).
        assert!(
            (primal.cost() - (primal.energy() + inst.total_penalty() - primal_served)).abs() < 1e-9
        );
    }
}

/// Acceptance prices are consistent with the primal optimum: tasks priced
/// well below their actual penalty are accepted, tasks priced well above
/// are rejected.
#[test]
fn acceptance_prices_predict_the_optimal_decisions() {
    let tasks = WorkloadSpec::new(8, 1.2)
        .penalty_model(PenaltyModel::Uniform { lo: 0.1, hi: 1.2 })
        .seed(3)
        .generate()
        .unwrap();
    let inst = Instance::new(tasks, cubic_ideal()).unwrap();
    let opt = BranchBound::default().solve(&inst).unwrap();
    for t in inst.tasks().iter() {
        let Some(price) = acceptance_price(&inst, t.id(), 1e-4).unwrap() else {
            assert!(!opt.accepts(t.id()));
            continue;
        };
        if t.penalty() > price + 1e-3 {
            assert!(
                opt.accepts(t.id()),
                "{} priced {price} < v {} but rejected",
                t.id(),
                t.penalty()
            );
        }
        if t.penalty() < price - 1e-3 {
            assert!(
                !opt.accepts(t.id()),
                "{} priced {price} > v {} but accepted",
                t.id(),
                t.penalty()
            );
        }
    }
}

/// The capacity value matches a finite-difference of the budget frontier:
/// scaling the load down is equivalent to scaling capacity up.
#[test]
fn capacity_value_consistent_with_load_scaling() {
    let tasks = WorkloadSpec::new(10, 2.0)
        .penalty_model(PenaltyModel::UtilizationProportional {
            scale: 20.0,
            jitter: 0.2,
        })
        .seed(2)
        .generate()
        .unwrap();
    let inst = Instance::new(tasks.clone(), xscale_ideal()).unwrap();
    let v = capacity_value(&inst, 0.05).unwrap();
    assert!(v > 0.0);
    // Equivalent view: shrink every task by 1/(1+δ) — cost must fall by at
    // least as much as the capacity value predicts for small δ (energy of
    // the boosted processor differs only through the speed range).
    let shrunk = transform::scale_load(&tasks, 1.0 / 1.05).unwrap();
    let inst2 = Instance::new(shrunk, xscale_ideal()).unwrap();
    let c1 = BranchBound::default().solve(&inst).unwrap().cost();
    let c2 = BranchBound::default().solve(&inst2).unwrap().cost();
    assert!(c2 < c1, "shrinking demand must reduce the optimal cost");
}

/// Synthesis sanity chain: the count at the floor budget serves every task
/// at (near) the critical speed, and generous budgets recover the capacity
/// bound; the budget inversion agrees with the per-processor oracle.
#[test]
fn synthesis_and_budget_inversion_agree_with_the_oracles() {
    let cpu = xscale_ideal();
    let tasks = WorkloadSpec::new(12, 2.2)
        .max_task_utilization(1.0)
        .seed(7)
        .generate()
        .unwrap();
    let floor = energy_floor(&tasks, &cpu).unwrap();
    let at_floor = min_processors(&tasks, &cpu, floor * (1.0 + 1e-6), 64)
        .unwrap()
        .expect("floor budget is reachable with enough processors");
    let generous = min_processors(&tasks, &cpu, f64::INFINITY, 64)
        .unwrap()
        .unwrap();
    assert!(at_floor.processors() >= generous.processors());
    assert_eq!(generous.processors(), 3); // ⌈2.2⌉

    // Budget inversion on one of those processors: the cap at the energy
    // of serving u equals u (round trip through E*).
    let inst = Instance::new(tasks, cpu).unwrap();
    for &u in &[0.2, 0.5, 0.9] {
        let e = inst.energy_for(u).unwrap();
        let cap = utilization_cap_for_budget(&inst, e).unwrap();
        assert!(
            (cap - u).abs() < 1e-6,
            "round trip failed at u = {u}: cap {cap}"
        );
    }
}
