//! Cross-crate property tests: invariants that tie the analytic stack
//! (`reject-sched` + `dvs-power`) to the empirical stack (`edf-sim`) on
//! randomly generated workloads and processors.
//!
//! Formerly expressed with `proptest`; rewritten on the vendored
//! [`rt_model::rng::Rng`] so the suite runs fully offline.

use dvs_rejection::model::rng::Rng;
use dvs_rejection::model::{Task, TaskSet};
use dvs_rejection::power::{PowerFunction, Processor, SpeedDomain};
use dvs_rejection::sched::algorithms::{Exhaustive, MarginalGreedy, ScaledDp};
use dvs_rejection::sched::{Instance, RejectionPolicy};

const CASES: u64 = 40;

fn random_processor(rng: &mut Rng) -> Processor {
    let power = PowerFunction::polynomial(
        rng.gen_f64(0.0, 0.5),
        rng.gen_f64(0.5, 3.0),
        rng.gen_f64(2.0, 3.0),
    )
    .unwrap();
    let domain = if rng.next_u64() & 1 == 0 {
        let k = 2 + rng.gen_index(4);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < k {
            set.insert(rng.gen_u64(2, 20) as u32);
        }
        SpeedDomain::discrete(
            set.into_iter()
                .map(|l| f64::from(l) / 20.0)
                .collect::<Vec<_>>(),
        )
        .unwrap()
    } else {
        SpeedDomain::continuous(0.0, 1.0).unwrap()
    };
    Processor::new(power, domain)
}

fn random_tasks(rng: &mut Rng) -> TaskSet {
    let n = 1 + rng.gen_index(8);
    TaskSet::try_from_tasks((0..n).map(|i| {
        let u = rng.gen_f64(0.02, 0.6);
        let v = rng.gen_f64(0.1, 6.0);
        let period = 10 * (1 + (i as u64 % 3));
        Task::new(i, u * period as f64, period)
            .unwrap()
            .with_penalty(v)
    }))
    .unwrap()
}

/// Whatever the processor model, every solver's accepted set replays
/// without misses and with the predicted energy.
#[test]
fn every_solution_is_simulator_validated() {
    let mut rng = Rng::seed_from_u64(0x5001);
    for _ in 0..CASES {
        let cpu = random_processor(&mut rng);
        let tasks = random_tasks(&mut rng);
        let instance = Instance::new(tasks, cpu).unwrap();
        for policy in [
            &MarginalGreedy as &dyn RejectionPolicy,
            &ScaledDp::new(0.1).unwrap(),
            &Exhaustive::default(),
        ] {
            let s = policy.solve(&instance).unwrap();
            s.verify(&instance).unwrap();
            if s.accepted().is_empty() {
                continue;
            }
            let report = s.replay(&instance).unwrap();
            assert!(report.misses().is_empty(), "{}", policy.name());
            assert!(
                (report.energy() - s.energy()).abs() < 1e-5 * s.energy().max(1.0),
                "{}: simulated {} vs analytic {}",
                policy.name(),
                report.energy(),
                s.energy()
            );
        }
    }
}

/// Cost decomposition invariants hold for every solver on every model.
#[test]
fn cost_decomposition() {
    let mut rng = Rng::seed_from_u64(0x5002);
    for _ in 0..CASES {
        let cpu = random_processor(&mut rng);
        let tasks = random_tasks(&mut rng);
        let total_penalty = tasks.total_penalty();
        let instance = Instance::new(tasks, cpu).unwrap();
        let s = MarginalGreedy.solve(&instance).unwrap();
        assert!(s.penalty() <= total_penalty + 1e-9);
        assert!((s.cost() - (s.energy() + s.penalty())).abs() < 1e-9);
        // Rejecting everything is always an upper bound on the optimum.
        let opt = Exhaustive::default().solve(&instance).unwrap();
        assert!(opt.cost() <= total_penalty + 1e-9 * total_penalty.max(1.0));
    }
}
