//! Cross-crate property tests: invariants that tie the analytic stack
//! (`reject-sched` + `dvs-power`) to the empirical stack (`edf-sim`) on
//! randomly generated workloads and processors.

use dvs_rejection::model::{Task, TaskSet};
use dvs_rejection::power::{PowerFunction, Processor, SpeedDomain};
use dvs_rejection::sched::algorithms::{Exhaustive, MarginalGreedy, ScaledDp};
use dvs_rejection::sched::{Instance, RejectionPolicy};
use proptest::prelude::*;

fn arb_processor() -> impl Strategy<Value = Processor> {
    (
        0.0f64..0.5,
        0.5f64..3.0,
        2.0f64..3.0,
        prop::option::of(prop::collection::btree_set(2u32..20, 2..6)),
    )
        .prop_map(|(b1, b2, alpha, levels)| {
            let power = PowerFunction::polynomial(b1, b2, alpha).unwrap();
            let domain = match levels {
                Some(set) => SpeedDomain::discrete(
                    set.into_iter().map(|k| k as f64 / 20.0).collect::<Vec<_>>(),
                )
                .unwrap(),
                None => SpeedDomain::continuous(0.0, 1.0).unwrap(),
            };
            Processor::new(power, domain)
        })
}

fn arb_tasks() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((0.02f64..0.6, 0.1f64..6.0), 1..9).prop_map(|parts| {
        TaskSet::try_from_tasks(parts.iter().enumerate().map(|(i, &(u, v))| {
            let period = 10 * (1 + (i as u64 % 3));
            Task::new(i, u * period as f64, period).unwrap().with_penalty(v)
        }))
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Whatever the processor model, every solver's accepted set replays
    /// without misses and with the predicted energy.
    #[test]
    fn every_solution_is_simulator_validated(cpu in arb_processor(), tasks in arb_tasks()) {
        let instance = Instance::new(tasks, cpu).unwrap();
        for policy in [
            &MarginalGreedy as &dyn RejectionPolicy,
            &ScaledDp::new(0.1).unwrap(),
            &Exhaustive::default(),
        ] {
            let s = policy.solve(&instance).unwrap();
            s.verify(&instance).unwrap();
            if s.accepted().is_empty() {
                continue;
            }
            let report = s.replay(&instance).unwrap();
            prop_assert!(report.misses().is_empty(), "{}", policy.name());
            prop_assert!(
                (report.energy() - s.energy()).abs() < 1e-5 * s.energy().max(1.0),
                "{}: simulated {} vs analytic {}",
                policy.name(), report.energy(), s.energy()
            );
        }
    }

    /// Cost decomposition invariants hold for every solver on every model.
    #[test]
    fn cost_decomposition(cpu in arb_processor(), tasks in arb_tasks()) {
        let total_penalty = tasks.total_penalty();
        let instance = Instance::new(tasks, cpu).unwrap();
        let s = MarginalGreedy.solve(&instance).unwrap();
        prop_assert!(s.penalty() <= total_penalty + 1e-9);
        prop_assert!((s.cost() - (s.energy() + s.penalty())).abs() < 1e-9);
        // Rejecting everything is always an upper bound on the optimum.
        let opt = Exhaustive::default().solve(&instance).unwrap();
        prop_assert!(opt.cost() <= total_penalty + 1e-9 * total_penalty.max(1.0));
    }
}
