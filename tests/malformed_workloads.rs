//! Malformed workload files return typed errors — never panic.
//!
//! A corpus of broken task-set files (truncated rows, NaN/negative fields,
//! duplicate ids, garbage bytes, missing files) driven through both the
//! string parser and the file loader. The contract: every case is an `Err`
//! with a message naming the offending location, and none unwinds.

use dvs_rejection::model::io::{
    load_task_set, parse_task_set, LoadTaskSetError, ParseTaskSetError,
};

/// The corpus: (label, contents, substring expected in the error message).
const CORPUS: &[(&str, &str, &str)] = &[
    ("truncated row", "0 30.0 100 -\n", "line 1"),
    ("extra column", "0 30.0 100 - 2.5 9\n", "line 1"),
    ("nan cycles", "0 NaN 100 - 2.5\n", "line 1"),
    ("inf cycles", "0 inf 100 - 2.5\n", "line 1"),
    ("negative cycles", "0 -3.0 100 - 2.5\n", "line 1"),
    ("nan penalty", "0 30.0 100 - NaN\n", "line 1"),
    ("negative penalty", "0 30.0 100 - -2.5\n", "line 1"),
    ("zero period", "0 30.0 0 - 2.5\n", "line 1"),
    ("period not integer", "0 30.0 1.5 - 2.5\n", "period"),
    ("deadline past period", "0 30.0 100 120 2.5\n", "line 1"),
    ("zero deadline", "0 30.0 100 0 2.5\n", "line 1"),
    ("garbage id", "x 30.0 100 - 2.5\n", "id"),
    ("second line broken", "0 30.0 100 - 2.5\n1 45.0\n", "line 2"),
    (
        "duplicate ids",
        "0 30.0 100 - 2.5\n0 45.0 100 60 5.0\n",
        "duplicate",
    ),
    ("binary garbage", "\u{1}\u{2}\u{3} not a task set", ""),
];

#[test]
fn every_corpus_entry_is_a_typed_error() {
    for (label, text, needle) in CORPUS {
        let err = parse_task_set(text)
            .map(|_| ())
            .expect_err(&format!("{label}: parsed successfully"));
        let msg = err.to_string();
        assert!(
            msg.to_lowercase().contains(&needle.to_lowercase()),
            "{label}: message {msg:?} does not mention {needle:?}"
        );
    }
}

#[test]
fn corpus_entries_fail_identically_through_the_file_loader() {
    let dir = std::env::temp_dir().join("dvs_rejection_malformed_corpus");
    std::fs::create_dir_all(&dir).unwrap();
    for (i, (label, text, _)) in CORPUS.iter().enumerate() {
        let path = dir.join(format!("case_{i}.tasks"));
        std::fs::write(&path, text).unwrap();
        let err = load_task_set(&path)
            .map(|_| ())
            .expect_err(&format!("{label}: loaded successfully"));
        // The file loader wraps the same parse error and adds the path.
        match err {
            LoadTaskSetError::Parse { source, .. } => {
                // Compare rendered messages, not values: a NaN payload is
                // unequal to itself under the derived `PartialEq`.
                let direct = parse_task_set(text).unwrap_err();
                assert_eq!(source.to_string(), direct.to_string(), "{label}");
            }
            other => panic!("{label}: expected a parse error, got {other}"),
        }
        assert!(
            load_task_set(&path)
                .unwrap_err()
                .to_string()
                .contains(".tasks"),
            "{label}: message should name the file"
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn missing_file_is_an_io_error_not_a_panic() {
    let err = load_task_set("/nonexistent/dir/never_here.tasks").unwrap_err();
    assert!(matches!(err, LoadTaskSetError::Io { .. }));
    assert!(err.to_string().contains("never_here.tasks"));
}

#[test]
fn parse_errors_pinpoint_line_and_column() {
    // Spot-check the typed variants survive the trip (not just strings).
    assert_eq!(
        parse_task_set("0 30.0 100 -\n").unwrap_err(),
        ParseTaskSetError::BadColumnCount { line: 1, found: 4 }
    );
    assert!(matches!(
        parse_task_set("0 x 100 - 2.5\n").unwrap_err(),
        ParseTaskSetError::BadField {
            line: 1,
            column: "cycles"
        }
    ));
    assert!(matches!(
        parse_task_set("0 30.0 100 - 2.5\n0 1.0 10 - 0.1\n").unwrap_err(),
        ParseTaskSetError::Model { .. }
    ));
}
