//! End-to-end integration tests spanning every crate: workload generation →
//! rejection solving → analytic verification → cycle-accurate replay.

use dvs_rejection::model::generator::{PenaltyModel, WorkloadSpec};
use dvs_rejection::model::{FrameInstance, FrameTask, Task, TaskSet};
use dvs_rejection::multi::{
    fractional_lower_bound_multi, solve_partitioned, MultiInstance, PartitionStrategy,
};
use dvs_rejection::power::presets::{uniform_levels, xscale_ideal, xscale_levels};
use dvs_rejection::power::{DormantMode, IdleMode, PowerFunction, Processor, SpeedDomain};
use dvs_rejection::sched::algorithms::{
    BranchBound, Exhaustive, LocalSearch, MarginalGreedy, SafeGreedy, ScaledDp,
};
use dvs_rejection::sched::bounds::fractional_lower_bound;
use dvs_rejection::sched::frame::solve_frame;
use dvs_rejection::sched::hardness::{Knapsack, KnapsackItem};
use dvs_rejection::sched::{Instance, RejectionPolicy};
use dvs_rejection::sim::{Simulator, SleepPolicy, SpeedProfile};

/// The full pipeline on a realistic overloaded workload, across processor
/// models: generate → solve (several algorithms) → verify → replay, with
/// the cost chain OPT ≤ heuristics and LB ≤ OPT intact.
#[test]
fn pipeline_across_processor_models() {
    let processors = vec![
        ("ideal-xscale", xscale_ideal()),
        ("xscale-levels", xscale_levels()),
        ("coarse-levels", uniform_levels(3)),
        (
            "leaky-overhead",
            Processor::new(
                PowerFunction::polynomial(0.2, 1.52, 3.0).unwrap(),
                SpeedDomain::continuous(0.0, 1.0).unwrap(),
            )
            .with_idle_mode(IdleMode::Sleep(DormantMode::new(1.0, 2.0).unwrap())),
        ),
    ];
    for (name, cpu) in processors {
        for seed in 0..3 {
            let tasks = WorkloadSpec::new(12, 1.7)
                .penalty_model(PenaltyModel::UtilizationProportional {
                    scale: 2.0,
                    jitter: 0.5,
                })
                .seed(seed)
                .generate()
                .unwrap();
            let instance = Instance::new(tasks, cpu.clone()).unwrap();
            let lb = fractional_lower_bound(&instance).unwrap();
            let opt = Exhaustive::default().solve(&instance).unwrap();
            opt.verify(&instance).unwrap();
            assert!(
                lb <= opt.cost() + 1e-6 * opt.cost().max(1.0),
                "{name}: lb above OPT"
            );
            for policy in [
                &MarginalGreedy as &dyn RejectionPolicy,
                &SafeGreedy,
                &ScaledDp::new(0.05).unwrap(),
                &BranchBound::default(),
            ] {
                let s = policy.solve(&instance).unwrap();
                s.verify(&instance).unwrap();
                assert!(
                    s.cost() >= opt.cost() - 1e-6 * opt.cost().max(1.0),
                    "{name}/{}: beat the optimum",
                    policy.name()
                );
                if !s.accepted().is_empty() {
                    let report = s.replay(&instance).unwrap();
                    assert!(report.misses().is_empty(), "{name}/{}", policy.name());
                }
            }
        }
    }
}

/// Analytic energy agrees with the simulator across the whole stack,
/// including two-level discrete plans.
#[test]
fn analytic_energy_is_simulator_accurate() {
    for seed in 0..5 {
        let tasks = WorkloadSpec::new(8, 0.9).seed(seed).generate().unwrap();
        for cpu in [xscale_ideal(), xscale_levels(), uniform_levels(4)] {
            let instance = Instance::new(tasks.clone(), cpu).unwrap();
            let sol = MarginalGreedy.solve(&instance).unwrap();
            if sol.accepted().is_empty() {
                continue;
            }
            let report = sol.replay(&instance).unwrap();
            assert!(
                (report.energy() - sol.energy()).abs() < 1e-6 * sol.energy().max(1.0),
                "seed {seed}: simulated {} vs analytic {}",
                report.energy(),
                sol.energy()
            );
        }
    }
}

/// Frame-based workloads round-trip through the periodic embedding.
#[test]
fn frame_embedding_end_to_end() {
    let frame = FrameInstance::new(
        1000,
        vec![
            FrameTask::new(0, 400.0).unwrap().with_penalty(1500.0),
            FrameTask::new(1, 500.0).unwrap().with_penalty(1800.0),
            FrameTask::new(2, 350.0).unwrap().with_penalty(20.0),
        ],
    )
    .unwrap();
    let (instance, sol) = solve_frame(&frame, xscale_ideal(), &BranchBound::default()).unwrap();
    sol.verify(&instance).unwrap();
    // 1250 cycles demanded in 1000 ticks: overload → τ2 (cheap) is dropped.
    assert!(sol.accepts(0.into()) && sol.accepts(1.into()));
    assert!(!sol.accepts(2.into()));
    let report = sol.replay(&instance).unwrap();
    assert_eq!(report.misses().len(), 0);
}

/// The knapsack reduction connects the combinatorial core to the
/// scheduling stack: solving the reduced instance solves the knapsack.
#[test]
fn hardness_reduction_end_to_end() {
    let ks = Knapsack::new(
        vec![
            KnapsackItem {
                weight: 31,
                profit: 70.0,
            },
            KnapsackItem {
                weight: 27,
                profit: 60.0,
            },
            KnapsackItem {
                weight: 42,
                profit: 90.0,
            },
            KnapsackItem {
                weight: 25,
                profit: 55.0,
            },
            KnapsackItem {
                weight: 18,
                profit: 40.0,
            },
        ],
        100,
    )
    .unwrap();
    let dp_opt = ks.solve_exact();
    let instance = ks.to_rejection_instance().unwrap();
    let sched = BranchBound::default().solve(&instance).unwrap();
    assert!((ks.profit_from_cost(sched.cost()) - dp_opt).abs() < 1e-3);
    // The accepted tasks form a feasible packing.
    let weight: u64 = sched
        .accepted()
        .iter()
        .map(|id| ks.items()[id.index()].weight)
        .sum();
    assert!(weight <= ks.capacity());
}

/// Multiprocessor pipeline: partition + per-CPU rejection + fluid bound +
/// per-processor replay on the simulator.
#[test]
fn multiprocessor_end_to_end() {
    let tasks = WorkloadSpec::new(18, 3.6)
        .penalty_model(PenaltyModel::UtilizationProportional {
            scale: 2.0,
            jitter: 0.5,
        })
        .max_task_utilization(1.0)
        .seed(5)
        .generate()
        .unwrap();
    let sys = MultiInstance::new(tasks, xscale_ideal(), 3).unwrap();
    let lb = fractional_lower_bound_multi(&sys).unwrap();
    let sol =
        solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy).unwrap();
    sol.verify(&sys).unwrap();
    assert!(sol.cost() >= lb - 1e-6);
    // Replay every processor's accepted bucket.
    for sub in sol.per_processor() {
        if sub.accepted().is_empty() {
            continue;
        }
        let bucket = sys.tasks().subset(sub.accepted()).unwrap();
        let plan = sys.processor().plan(bucket.utilization()).unwrap();
        let report = Simulator::new(&bucket, sys.processor())
            .with_profile(SpeedProfile::from_plan(&plan))
            .run_hyper_period()
            .unwrap();
        assert!(report.misses().is_empty());
    }
}

/// Local search composed over a weak seed closes most of the optimality gap
/// on a hard adversarial instance.
#[test]
fn local_search_recovers_adversarial_instance() {
    // Density order misleads: the big task looks dense but blocks two tasks
    // whose combined penalty exceeds it.
    let tasks = TaskSet::try_from_tasks(vec![
        Task::new(0, 9.0, 10).unwrap().with_penalty(11.0),
        Task::new(1, 5.0, 10).unwrap().with_penalty(7.0),
        Task::new(2, 5.0, 10).unwrap().with_penalty(7.0),
    ])
    .unwrap();
    let instance = Instance::new(tasks, xscale_ideal()).unwrap();
    let opt = Exhaustive::default().solve(&instance).unwrap();
    let polished = LocalSearch::around(MarginalGreedy)
        .solve(&instance)
        .unwrap();
    assert!(
        (polished.cost() - opt.cost()).abs() < 1e-9,
        "local search should find the swap"
    );
}

/// The dormant-mode stack: an accepted set scheduled at the critical speed,
/// slept with procrastination, stays deadline-clean and saves energy over
/// staying awake.
#[test]
fn dormant_procrastination_end_to_end() {
    let cpu = Processor::new(
        PowerFunction::polynomial(0.4, 1.52, 3.0).unwrap(),
        SpeedDomain::continuous(0.0, 1.0).unwrap(),
    )
    .with_idle_mode(IdleMode::Sleep(DormantMode::new(1.0, 3.0).unwrap()));
    let tasks = WorkloadSpec::new(6, 0.25)
        .penalty_model(PenaltyModel::Uniform { lo: 5.0, hi: 9.0 })
        .seed(2)
        .generate()
        .unwrap();
    let instance = Instance::new(tasks, cpu.clone()).unwrap();
    let sol = BranchBound::default().solve(&instance).unwrap();
    let subset = instance.tasks().subset(sol.accepted()).unwrap();
    assert!(!subset.is_empty());
    let speed = cpu.critical_speed().max(subset.utilization());
    let budget = dvs_rejection::sim::procrastination_budget(&subset, speed);
    let awake = Simulator::new(&subset, &cpu)
        .with_profile(SpeedProfile::constant(speed).unwrap())
        .with_sleep_policy(SleepPolicy::NeverSleep)
        .run_hyper_period()
        .unwrap();
    let proc = Simulator::new(&subset, &cpu)
        .with_profile(SpeedProfile::constant(speed).unwrap())
        .with_sleep_policy(SleepPolicy::Procrastinate { budget })
        .run_hyper_period()
        .unwrap();
    assert!(proc.misses().is_empty());
    assert!(
        proc.energy() < awake.energy(),
        "sleeping should save energy"
    );
}
