//! Overload triage for a media server.
//!
//! Scenario: a streaming appliance decodes subscriber channels. Each
//! channel is a periodic task (frame decode every period); its rejection
//! penalty models the refund paid if the channel is dropped. During a flash
//! event the subscribed workload reaches 2.5× processor capacity and the
//! admission controller must pick which channels to serve — trading refund
//! money against the energy bill of the DVS processor.
//!
//! ```text
//! cargo run --example overload_triage
//! ```

use dvs_rejection::model::{Task, TaskSet};
use dvs_rejection::power::presets::xscale_ideal;
use dvs_rejection::sched::algorithms::{BranchBound, MarginalGreedy};
use dvs_rejection::sched::bounds::fractional_lower_bound;
use dvs_rejection::sched::{Instance, RejectionPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (name, cycles per frame, frame period in ticks, refund per hyper-period, ×3 scaled)
    let channels = [
        ("news-sd", 12.0, 100, 30.0),
        ("news-hd", 45.0, 100, 55.0),
        ("sports-hd", 60.0, 100, 160.0),
        ("sports-4k", 140.0, 200, 220.0),
        ("movies-sd", 15.0, 100, 18.0),
        ("movies-hd", 50.0, 100, 60.0),
        ("kids-sd", 10.0, 50, 26.0),
        ("docu-hd", 40.0, 100, 35.0),
        ("music-sd", 8.0, 50, 20.0),
        ("shopping-sd", 14.0, 100, 2.0),
    ];
    let tasks = TaskSet::try_from_tasks(
        channels
            .iter()
            .enumerate()
            .map(|(i, &(_, c, p, v))| Task::new(i, c, p).map(|t| t.with_penalty(3.0 * v)))
            .collect::<Result<Vec<_>, _>>()?,
    )?;
    let instance = Instance::new(tasks, xscale_ideal())?;
    println!("{instance}");
    println!(
        "flash crowd: demand {:.2}× capacity\n",
        instance.total_utilization() / instance.processor().max_speed()
    );

    let greedy = MarginalGreedy.solve(&instance)?;
    let exact = BranchBound::default().solve(&instance)?;
    let bound = fractional_lower_bound(&instance)?;

    println!(
        "{:<14} {:>8} {:>9} {:>8}",
        "channel", "demand", "refund", "served?"
    );
    for (i, &(name, c, p, v)) in channels.iter().enumerate() {
        let u = c / p as f64;
        println!(
            "{:<14} {:>8.3} {:>9.1} {:>8}",
            name,
            u,
            v,
            if exact.accepts(i.into()) {
                "yes"
            } else {
                "DROP"
            }
        );
    }
    println!(
        "\ngreedy cost {:.2}  |  optimal cost {:.2}  |  fractional bound {:.2}",
        greedy.cost(),
        exact.cost(),
        bound
    );
    let report = exact.replay(&instance)?;
    println!(
        "optimal line-up replayed: {} frames decoded, {} misses, energy {:.2}",
        report.completed_jobs(),
        report.misses().len(),
        report.energy()
    );
    Ok(())
}
