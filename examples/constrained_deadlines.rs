//! Constrained deadlines and the YDS speed schedule.
//!
//! Scenario: a control loop whose output must be ready well before the
//! next sampling period (deadline < period). Constant speeds are no longer
//! optimal: the YDS critical-interval schedule runs fast through demand
//! peaks and slow elsewhere — and tight deadlines change which tasks are
//! worth admitting at all.
//!
//! ```text
//! cargo run --example constrained_deadlines
//! ```

use dvs_rejection::model::{feasibility, Task, TaskSet};
use dvs_rejection::power::presets::cubic_ideal;
use dvs_rejection::sched::constrained::ConstrainedInstance;
use dvs_rejection::sim::yds::yds_speeds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (cycles, period, deadline, penalty)
    let parts = [
        (2.5, 8, 3, 4.0), // tight control task (demand peak in [0, 3])
        (1.0, 4, 4, 2.5), // sensor fusion
        (1.0, 8, 8, 1.2), // logging (relaxed)
        (1.0, 8, 5, 0.2), // diagnostics (cheap to drop)
    ];
    let tasks = TaskSet::try_from_tasks(parts.iter().enumerate().map(|(i, &(c, p, d, v))| {
        Task::new(i, c, p)
            .unwrap()
            .with_deadline(d)
            .unwrap()
            .with_penalty(v)
    }))?;
    println!("task set: {tasks}");
    println!(
        "utilization U = {:.3}, min constant speed (demand peaks) = {:.3}\n",
        tasks.utilization(),
        feasibility::min_constant_speed(&tasks)
    );

    // YDS schedule of the full set.
    let jobs = tasks.hyper_period_jobs();
    let speeds = yds_speeds(&jobs);
    println!("YDS per-job speeds over one hyper-period:");
    for job in &jobs {
        println!(
            "  {job}  →  speed {:.3}",
            speeds.speed_of(job.task(), job.index()).unwrap()
        );
    }
    let cpu = cubic_ideal();
    let yds_energy = speeds.energy(&jobs, cpu.power(), 0.0, 1.0).unwrap();
    let s_const = feasibility::min_constant_speed(&tasks);
    let const_energy: f64 = jobs
        .iter()
        .map(|j| j.cycles() * cpu.power().power(s_const) / s_const)
        .sum();
    println!(
        "\nYDS energy {yds_energy:.3} vs best constant speed {const_energy:.3}  \
         (saving {:.1}%)\n",
        100.0 * (1.0 - yds_energy / const_energy)
    );

    // Rejection with the YDS oracle.
    let inst = ConstrainedInstance::new(tasks, cpu)?;
    let sol = inst.solve_exhaustive()?;
    sol.verify(&inst)?;
    println!("optimal admission with rejection:");
    for (i, &(c, p, d, v)) in parts.iter().enumerate() {
        println!(
            "  τ{i} (c={c}, p={p}, d={d}, v={v}): {}",
            if sol.accepted().contains(&i.into()) {
                "accept"
            } else {
                "REJECT"
            }
        );
    }
    println!(
        "cost = {:.3} (energy {:.3} + penalty {:.3})",
        sol.cost(),
        sol.energy(),
        sol.penalty()
    );
    let report = sol.replay(&inst)?;
    println!(
        "replayed: {} jobs, {} misses",
        report.completed_jobs(),
        report.misses().len()
    );
    Ok(())
}
