//! The energy-budget dual: which tasks to serve within an energy allowance.
//!
//! Scenario: a solar-harvesting node gets a forecast of the energy it may
//! spend per hyper-period. Instead of minimising energy + penalties, it
//! must maximise the value of the work it serves inside the budget —
//! tracing the value/energy Pareto frontier as the forecast varies.
//!
//! ```text
//! cargo run --example energy_budget
//! ```

use dvs_rejection::model::generator::{PenaltyModel, WorkloadSpec};
use dvs_rejection::power::presets::xscale_ideal;
use dvs_rejection::sched::budget::{
    solve_budget_dp, solve_budget_greedy, utilization_cap_for_budget,
};
use dvs_rejection::sched::Instance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks = WorkloadSpec::new(12, 1.4)
        .penalty_model(PenaltyModel::UtilizationProportional {
            scale: 2.0,
            jitter: 0.6,
        })
        .seed(17)
        .generate()?;
    let instance = Instance::new(tasks, xscale_ideal())?;
    let e_max = instance.energy_for(instance.processor().max_speed())?;
    let total_value = instance.total_penalty();
    println!("{instance}");
    println!("full-throttle energy E*(s_max) = {e_max:.2}, total value = {total_value:.2}\n");

    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>12}",
        "budget", "u-cap", "greedy value", "DP value", "DP energy"
    );
    for frac in [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let budget = frac * e_max;
        let cap = utilization_cap_for_budget(&instance, budget)?;
        let greedy = solve_budget_greedy(&instance, budget)?;
        let dp = solve_budget_dp(&instance, budget, 0.02)?;
        greedy.verify(&instance)?;
        dp.verify(&instance)?;
        println!(
            "{:>8.2} {:>8.3} {:>11.1}% {:>11.1}% {:>11.1}%",
            budget,
            cap,
            100.0 * greedy.value() / total_value,
            100.0 * dp.value() / total_value,
            100.0 * dp.energy() / e_max
        );
    }
    println!("\n(the frontier is concave: the first joules buy the densest tasks)");
    Ok(())
}
