//! Capacity planning: prices, the value of speed, and processor counts.
//!
//! Scenario: a designer sizing a platform asks three questions the
//! sensitivity/synthesis APIs answer directly:
//!
//! 1. *What is each task's market price for service?* (the penalty level
//!    at which the optimal schedule starts accepting it)
//! 2. *What is a faster part worth?* (marginal cost reduction per unit of
//!    extra maximum speed)
//! 3. *How many processors does the workload need under an energy budget?*
//!
//! ```text
//! cargo run --example capacity_planning
//! ```

use dvs_rejection::model::generator::{PenaltyModel, WorkloadSpec};
use dvs_rejection::multi::synthesis::{count_vs_budget, energy_at_min_count, energy_floor};
use dvs_rejection::power::presets::xscale_ideal;
use dvs_rejection::sched::analysis::{acceptance_price, capacity_value};
use dvs_rejection::sched::Instance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks = WorkloadSpec::new(8, 1.6)
        .penalty_model(PenaltyModel::UtilizationProportional {
            scale: 3.0,
            jitter: 0.6,
        })
        .max_task_utilization(1.0)
        .seed(29)
        .generate()?;
    let cpu = xscale_ideal();
    let instance = Instance::new(tasks.clone(), cpu.clone())?;
    println!("{instance}\n");

    // 1. Acceptance prices.
    println!(
        "{:>5} {:>9} {:>10} {:>12}",
        "task", "demand", "penalty", "price"
    );
    for t in instance.tasks().iter() {
        let price = acceptance_price(&instance, t.id(), 1e-4)?;
        println!(
            "{:>5} {:>9.3} {:>10.2} {:>12}",
            t.id().to_string(),
            t.utilization(),
            t.penalty(),
            price.map_or("unservable".to_string(), |p| format!("{p:.2}")),
        );
    }

    // 2. The value of a faster part.
    let v = capacity_value(&instance, 0.1)?;
    println!("\nmarginal value of capacity (δ = 10%): {v:.2} cost units per unit of speed");

    // 3. Processor counts across energy budgets.
    let floor = energy_floor(&tasks, &cpu)?;
    let top = energy_at_min_count(&tasks, &cpu)?;
    println!("\nenergy floor {floor:.1} (critical-speed singletons) … {top:.1} (min count)");
    println!("{:>7} {:>12}", "γ", "processors");
    for point in count_vs_budget(&tasks, &cpu, &[0.1, 0.3, 0.5, 0.8, 1.0], 64)? {
        println!("{:>7.1} {:>12}", point.gamma, point.processors);
    }
    Ok(())
}
