//! Non-ideal processors: rejection scheduling on real frequency tables.
//!
//! Scenario: the same overloaded workload deployed on (a) an ideal
//! continuous-speed core, (b) the 5-step XScale frequency table, and
//! (c) a crude 2-step governor. Shows the two-adjacent-level split at work
//! and how coarser tables raise both energy and the value of rejection.
//!
//! ```text
//! cargo run --example discrete_levels
//! ```

use dvs_rejection::model::generator::{PenaltyModel, WorkloadSpec};
use dvs_rejection::power::presets::{uniform_levels, xscale_ideal, xscale_levels};
use dvs_rejection::sched::algorithms::BranchBound;
use dvs_rejection::sched::{Instance, RejectionPolicy};
use dvs_rejection::sim::SpeedProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks = WorkloadSpec::new(10, 1.3)
        .penalty_model(PenaltyModel::UtilizationProportional {
            scale: 2.5,
            jitter: 0.4,
        })
        .seed(3)
        .generate()?;
    let cpus = [
        ("ideal continuous", xscale_ideal()),
        ("xscale 5-level", xscale_levels()),
        ("2-level governor", uniform_levels(2)),
    ];
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>22}",
        "speed domain", "accepted", "energy", "cost", "plan"
    );
    for (name, cpu) in cpus {
        let instance = Instance::new(tasks.clone(), cpu)?;
        let sol = BranchBound::default().solve(&instance)?;
        sol.verify(&instance)?;
        let plan_desc = sol
            .plan()
            .map(|p| {
                p.segments()
                    .iter()
                    .map(|s| format!("{:.2}@{:.2}", s.speed, s.fraction))
                    .collect::<Vec<_>>()
                    .join(" + ")
            })
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<18} {:>6}/{:<2} {:>9.3} {:>9.3} {:>22}",
            name,
            sol.accepted().len(),
            instance.len(),
            sol.energy(),
            sol.cost(),
            plan_desc
        );
        // Replay the two-level plan on the simulator to show it is real.
        if let Some(plan) = sol.plan() {
            let subset = instance.tasks().subset(sol.accepted())?;
            let report = dvs_rejection::sim::Simulator::new(&subset, instance.processor())
                .with_profile(SpeedProfile::from_plan(plan))
                .run_hyper_period()?;
            assert!(report.misses().is_empty(), "replay must meet deadlines");
        }
    }
    println!("\n(plan column: speed@time-share segments of the optimal execution plan)");
    Ok(())
}
