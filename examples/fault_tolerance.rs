//! Fault injection and graceful degradation on the EDF/DVS simulator.
//!
//! Scenario: the admitted task set was planned under clean-room
//! assumptions — WCETs hold, the DVS actuator is exact, releases are
//! punctual, the silicon never throttles. This example breaks each
//! assumption in turn (then all at once) and replays the set under every
//! recovery policy, showing how deadline misses trade against charged
//! late-rejection penalties and extra energy.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use dvs_rejection::model::generator::WorkloadSpec;
use dvs_rejection::power::presets::cubic_ideal;
use dvs_rejection::sim::{FaultScenario, RecoveryPolicy, Simulator, SpeedProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks = WorkloadSpec::new(8, 0.85).seed(5).generate()?;
    let cpu = cubic_ideal();
    let u = tasks.utilization();
    println!(
        "{} tasks, utilization {:.3}, hyper-period {} ticks\n",
        tasks.len(),
        u,
        tasks.hyper_period()
    );

    let seed = 42;
    let scenarios: Vec<(&str, FaultScenario)> = vec![
        ("clean", FaultScenario::new(seed)),
        (
            "wcet-overrun",
            FaultScenario::new(seed).with_overrun(0.4, 1.8)?,
        ),
        (
            "actuator-error",
            FaultScenario::new(seed).with_actuator_error(0.06, 0.05)?,
        ),
        (
            "thermal-throttle",
            FaultScenario::new(seed).with_thermal_throttle(8.0, 2.0, 0.6)?,
        ),
        (
            "release-jitter",
            FaultScenario::new(seed).with_release_jitter(0.3)?,
        ),
        (
            "everything",
            FaultScenario::new(seed)
                .with_overrun(0.4, 1.8)?
                .with_actuator_error(0.06, 0.05)?
                .with_thermal_throttle(8.0, 2.0, 0.6)?
                .with_release_jitter(0.3)?,
        ),
    ];
    let policies = [
        RecoveryPolicy::none(),
        RecoveryPolicy::late_rejection(),
        RecoveryPolicy::elastic(),
        RecoveryPolicy::full(),
    ];

    for (label, faults) in &scenarios {
        println!("--- fault model: {label} ---");
        println!(
            "{:>22} {:>8} {:>8} {:>10} {:>10} {:>10}",
            "recovery", "misses", "shed", "energy", "penalty", "total"
        );
        for policy in policies {
            let report = Simulator::new(&tasks, &cpu)
                .with_profile(SpeedProfile::constant(u)?)
                .with_faults(*faults)
                .with_recovery(policy)
                .run_hyper_period()?;
            println!(
                "{:>22} {:>8} {:>8} {:>10.3} {:>10.3} {:>10.3}",
                policy.label(),
                report.misses().len(),
                report.late_rejections().len(),
                report.energy(),
                report.charged_penalty(),
                report.total_cost()
            );
        }
        println!();
    }
    println!(
        "Reading the table: `none` converts overload into deadline misses;\n\
         `late-reject` sheds the lowest penalty-density job and charges its\n\
         penalty into the total (the paper's objective applied at run time);\n\
         `elastic` spends energy to absorb overruns; `full` combines both\n\
         with a dormant-mode cooldown after shedding."
    );
    Ok(())
}
