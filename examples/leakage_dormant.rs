//! Leakage-aware scheduling on a sensor node.
//!
//! Scenario: a battery-powered sensor hub runs a light periodic workload
//! (~25% utilization) on a leaky processor. Pure slowdown wastes leakage
//! power; racing to finish and sleeping wastes dynamic power. The sweet
//! spot is the critical speed plus dormant-mode management — and
//! procrastinated wake-ups consolidate sleep intervals to amortise the
//! switch energy.
//!
//! ```text
//! cargo run --example leakage_dormant
//! ```

use dvs_rejection::model::generator::{PenaltyModel, WorkloadSpec};
use dvs_rejection::power::{DormantMode, IdleMode, PowerFunction, Processor, SpeedDomain};
use dvs_rejection::sim::{procrastination_budget, Simulator, SleepPolicy, SpeedProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A leaky 90-nm-class part: P(s) = 0.4 + 1.52·s³, t_sw = 2, E_sw = 6.
    let cpu = Processor::new(
        PowerFunction::polynomial(0.4, 1.52, 3.0)?,
        SpeedDomain::continuous(0.0, 1.0)?,
    )
    .with_idle_mode(IdleMode::Sleep(DormantMode::new(2.0, 6.0)?));
    let tasks = WorkloadSpec::new(6, 0.25)
        .penalty_model(PenaltyModel::Uniform { lo: 1.0, hi: 2.0 })
        .seed(7)
        .generate()?;
    let u = tasks.utilization();
    let s_crit = cpu.critical_speed();
    println!(
        "workload: {} tasks, U = {:.3}; critical speed s* = {:.3}; hyper-period {}",
        tasks.len(),
        u,
        s_crit,
        tasks.hyper_period()
    );
    println!(
        "break-even idle interval: {:.1} ticks\n",
        match cpu.idle_mode() {
            IdleMode::Sleep(dm) => dm.break_even_time(cpu.power().idle_power()),
            IdleMode::AlwaysOn => f64::INFINITY,
        }
    );

    let run_speed = s_crit.max(u);
    let strategies = [
        (
            "slowdown-only (run at U, never sleep)",
            u,
            SleepPolicy::NeverSleep,
        ),
        (
            "race-to-sleep (run at s_max)",
            1.0,
            SleepPolicy::SleepOnIdle,
        ),
        (
            "critical speed + sleep-on-idle",
            run_speed,
            SleepPolicy::SleepOnIdle,
        ),
        (
            "critical speed + procrastination",
            run_speed,
            SleepPolicy::Procrastinate {
                budget: procrastination_budget(&tasks, run_speed),
            },
        ),
    ];
    println!(
        "{:<38} {:>9} {:>7} {:>9} {:>9}",
        "strategy", "energy", "sleeps", "asleep", "misses"
    );
    for (name, speed, policy) in strategies {
        let report = Simulator::new(&tasks, &cpu)
            .with_profile(SpeedProfile::constant(speed.max(1e-9))?)
            .with_sleep_policy(policy)
            .run_hyper_period()?;
        let (run, idle, sleep, _) = report.energy_by_state();
        println!(
            "{:<38} {:>9.2} {:>7} {:>9.1} {:>9}   (run {:.1} / idle {:.1} / E_sw {:.1})",
            name,
            report.energy(),
            report.sleep_transitions(),
            report.sleep_time(),
            report.misses().len(),
            run,
            idle,
            sleep
        );
    }
    Ok(())
}
