//! Stateful admission control: a day in the life of `dvs-admit`.
//!
//! Scenario: an edge gateway leases periodic compute slots. Flows arrive
//! *and leave*; the engine keeps a committed-utilization ledger, prices
//! each admission at its marginal energy over the billing horizon, and on
//! every tick re-solves the standing set with a budgeted branch & bound —
//! shedding a commitment when its penalty is cheaper than the energy it
//! frees, and re-admitting it the moment capacity opens up again.
//!
//! ```text
//! cargo run --example admission_engine
//! ```

use dvs_rejection::admit::{AdmissionEngine, EngineConfig};
use dvs_rejection::model::io::{EventKind, EventRecord};
use dvs_rejection::model::Task;
use dvs_rejection::power::presets::cubic_ideal;
use dvs_rejection::sched::online::OnlineGreedy;

/// A flow consuming `u` of the processor per hyper-period, with a refund
/// owed if it is turned away or dropped.
fn flow(id: usize, u: f64, refund: f64) -> Task {
    Task::new(id, u * 1000.0, 1000)
        .expect("valid task")
        .with_penalty(refund)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = AdmissionEngine::new(
        vec![cubic_ideal()], // P(s) = s³, one power domain
        Box::new(OnlineGreedy),
        EngineConfig::default(), // horizon 1000, re-solve every tick
    )?;

    // One business day, four hours per tick.
    let events = [
        // Morning: a bulk batch flow with a small refund clause...
        EventRecord::new(0.0, EventKind::Arrive(flow(1, 0.5, 130.0))),
        // ...then a premium flow with a steep one. Both fit (Σu = 1.0).
        EventRecord::new(100.0, EventKind::Arrive(flow(2, 0.5, 900.0))),
        // A third flow would overload the domain: rejected outright.
        EventRecord::new(150.0, EventKind::Arrive(flow(3, 0.4, 10.0))),
        // First tick: at Σu = 1.0 the cubic energy bill is ruinous. The
        // re-solve sheds the batch flow — refunding 130 beats the ~875
        // energy units its half-core costs on a saturated die.
        EventRecord::new(250.0, EventKind::Tick),
        // The premium flow departs; the serve-all guard immediately
        // re-admits the (still resident) batch flow: 125 < 130.
        EventRecord::new(500.0, EventKind::Depart(2.into())),
        EventRecord::new(750.0, EventKind::Tick),
        // The batch flow finishes its residency.
        EventRecord::new(900.0, EventKind::Depart(1.into())),
        EventRecord::new(1000.0, EventKind::Tick),
    ];

    for event in &events {
        engine.apply(event)?;
    }

    println!("decision log:");
    println!("{}", engine.format_decision_log());

    let m = engine.metrics();
    println!(
        "arrivals {}  accepted {}  rejected {}  shed {} (re-admitted {})",
        m.arrivals,
        m.accepted(),
        m.rejected,
        m.shed,
        m.readmitted
    );
    println!(
        "energy {:.2} + accrued penalties {:.2} = total cost {:.2} \
         (refunds charged on reject/shed: {:.2})",
        m.energy,
        m.penalty_accrued,
        m.total_cost(),
        m.penalty_charged
    );
    println!(
        "\nstats (the dvs_admitd wire format):\n{}",
        engine.stats_json()
    );
    Ok(())
}
