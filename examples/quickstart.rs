//! Quickstart: build a workload, solve the rejection problem with several
//! algorithms, verify and replay the best solution.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dvs_rejection::model::generator::{PenaltyModel, WorkloadSpec};
use dvs_rejection::power::presets::xscale_ideal;
use dvs_rejection::sched::algorithms::{
    AcceptAllFeasible, BranchBound, MarginalGreedy, RejectAll, ScaledDp,
};
use dvs_rejection::sched::{Instance, RejectionPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 12 periodic tasks demanding 180% of the processor: rejection is forced.
    let tasks = WorkloadSpec::new(12, 1.8)
        .penalty_model(PenaltyModel::UtilizationProportional {
            scale: 2.0,
            jitter: 0.5,
        })
        .seed(42)
        .generate()?;
    let instance = Instance::new(tasks, xscale_ideal())?;
    println!("instance: {instance}");
    println!(
        "overloaded: {} (demand {:.2} vs s_max {:.2})\n",
        instance.is_overloaded(),
        instance.total_utilization(),
        instance.processor().max_speed()
    );

    let policies: Vec<Box<dyn RejectionPolicy>> = vec![
        Box::new(RejectAll),
        Box::new(AcceptAllFeasible),
        Box::new(MarginalGreedy),
        Box::new(ScaledDp::new(0.05)?),
        Box::new(BranchBound::default()),
    ];
    println!(
        "{:<22} {:>9} {:>10} {:>10} {:>10}",
        "algorithm", "accepted", "energy", "penalty", "cost"
    );
    let mut best: Option<dvs_rejection::sched::Solution> = None;
    for p in &policies {
        let s = p.solve(&instance)?;
        s.verify(&instance)?;
        println!(
            "{:<22} {:>6}/{:<2} {:>10.3} {:>10.3} {:>10.3}",
            p.name(),
            s.accepted().len(),
            instance.len(),
            s.energy(),
            s.penalty(),
            s.cost()
        );
        if best.as_ref().is_none_or(|b| s.cost() < b.cost()) {
            best = Some(s);
        }
    }

    // Replay the winner on the cycle-accurate EDF simulator.
    let best = best.expect("at least one policy ran");
    let report = best.replay(&instance)?;
    println!(
        "\nreplayed `{}` on the EDF simulator: {} jobs completed, {} deadline misses,",
        best.algorithm(),
        report.completed_jobs(),
        report.misses().len()
    );
    println!(
        "measured energy {:.3} vs analytic {:.3} over one hyper-period of {} ticks",
        report.energy(),
        best.energy(),
        instance.hyper_period()
    );
    Ok(())
}
