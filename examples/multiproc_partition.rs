//! Multiprocessor extension: partition strategies × per-CPU rejection.
//!
//! Scenario: a 4-core SoC serving 24 periodic tasks at 125% aggregate
//! overload. Compares Largest-Task-First against the unsorted baseline and
//! the coupled global greedy, normalised to the fluid lower bound.
//!
//! ```text
//! cargo run --example multiproc_partition
//! ```

use dvs_rejection::model::generator::{PenaltyModel, WorkloadSpec};
use dvs_rejection::multi::{
    consolidate, fractional_lower_bound_multi, improve, solve_global_greedy, solve_partitioned,
    MultiInstance, PartitionStrategy,
};
use dvs_rejection::power::presets::xscale_ideal;
use dvs_rejection::sched::algorithms::MarginalGreedy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 4;
    let tasks = WorkloadSpec::new(6 * m, 1.25 * m as f64)
        .penalty_model(PenaltyModel::UtilizationProportional {
            scale: 2.0,
            jitter: 0.5,
        })
        .max_task_utilization(1.0)
        .seed(21)
        .generate()?;
    let sys = MultiInstance::new(tasks, xscale_ideal(), m)?;
    println!("{sys}");
    let bound = fractional_lower_bound_multi(&sys)?;
    println!("fluid lower bound: {bound:.3}\n");

    println!(
        "{:<16} {:>9} {:>10} {:>10} {:>10} {:>8}",
        "pipeline", "accepted", "energy", "penalty", "cost", "vs LB"
    );
    for strategy in [
        PartitionStrategy::LargestTaskFirst,
        PartitionStrategy::Unsorted,
        PartitionStrategy::FirstFit,
    ] {
        let sol = solve_partitioned(&sys, strategy, &MarginalGreedy)?;
        sol.verify(&sys)?;
        println!(
            "{:<16} {:>6}/{:<2} {:>10.3} {:>10.3} {:>10.3} {:>8.3}",
            sol.label(),
            sol.accepted().len(),
            sys.tasks().len(),
            sol.energy(),
            sol.penalty(),
            sol.cost(),
            sol.cost() / bound
        );
    }
    let sol = solve_global_greedy(&sys)?;
    sol.verify(&sys)?;
    println!(
        "{:<16} {:>6}/{:<2} {:>10.3} {:>10.3} {:>10.3} {:>8.3}",
        sol.label(),
        sol.accepted().len(),
        sys.tasks().len(),
        sol.energy(),
        sol.penalty(),
        sol.cost(),
        sol.cost() / bound
    );

    // Per-processor view of the LTF pipeline, then the polish passes.
    let ltf = solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy)?;
    println!("\nper-processor breakdown (LTF+greedy):");
    for (k, sub) in ltf.per_processor().iter().enumerate() {
        println!(
            "  cpu{k}: {} tasks accepted, energy {:.3}",
            sub.accepted().len(),
            sub.energy()
        );
    }

    let polished = improve(&sys, &ltf, 500)?;
    polished.verify(&sys)?;
    let packed = consolidate(&sys, &polished)?;
    packed.verify(&sys)?;
    println!(
        "\ncross-CPU local search: {:.3} → {:.3} (vs LB {:.3}); consolidation: {} → {} active CPUs",
        ltf.cost(),
        polished.cost(),
        bound,
        polished.active_processors(),
        packed.active_processors()
    );
    Ok(())
}
