//! Dynamic slack reclamation (cc-EDF) on varying execution times.
//!
//! Scenario: the admitted task set was provisioned for worst-case
//! execution cycles, but real jobs finish early. A static speed wastes the
//! difference; the cycle-conserving EDF governor reclaims it online.
//!
//! ```text
//! cargo run --example slack_reclaim
//! ```

use dvs_rejection::model::generator::WorkloadSpec;
use dvs_rejection::power::presets::cubic_ideal;
use dvs_rejection::sim::{ExecutionModel, Governor, Simulator, SpeedProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks = WorkloadSpec::new(8, 0.8).seed(11).generate()?;
    let cpu = cubic_ideal();
    let u = tasks.utilization();
    println!(
        "{} tasks, WCET utilization {:.3}, hyper-period {} ticks\n",
        tasks.len(),
        u,
        tasks.hyper_period()
    );

    println!(
        "{:>10} {:>14} {:>12} {:>10}",
        "bcet/wcet", "static-U energy", "cc-EDF energy", "saving"
    );
    for ratio in [1.0, 0.75, 0.5, 0.25] {
        let model = ExecutionModel::Uniform {
            bcet_ratio: ratio,
            seed: 99,
        };
        let fixed = Simulator::new(&tasks, &cpu)
            .with_profile(SpeedProfile::constant(u)?)
            .with_execution_model(model)
            .run_hyper_period()?;
        let cc = Simulator::new(&tasks, &cpu)
            .with_governor(Governor::CycleConserving)
            .with_execution_model(model)
            .run_hyper_period()?;
        assert!(fixed.misses().is_empty() && cc.misses().is_empty());
        println!(
            "{:>10.2} {:>14.3} {:>12.3} {:>9.1}%",
            ratio,
            fixed.energy(),
            cc.energy(),
            100.0 * (1.0 - cc.energy() / fixed.energy())
        );
    }
    println!("\n(cc-EDF lowers the speed the moment a job completes early; deadlines stay safe)");
    Ok(())
}
