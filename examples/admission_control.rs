//! Online admission control: tasks arrive one at a time.
//!
//! Scenario: a gateway accepts periodic client flows as they subscribe.
//! Decisions are irrevocable; compare the myopic marginal rule and hedged
//! thresholds against the offline optimum computed in hindsight.
//!
//! ```text
//! cargo run --example admission_control
//! ```

use dvs_rejection::model::generator::{PenaltyModel, WorkloadSpec};
use dvs_rejection::model::Task;
use dvs_rejection::power::presets::xscale_ideal;
use dvs_rejection::sched::algorithms::BranchBound;
use dvs_rejection::sched::online::{run_online, AdmissionPolicy, OnlineGreedy, ThresholdPolicy};
use dvs_rejection::sched::{Instance, RejectionPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks = WorkloadSpec::new(16, 2.0)
        .penalty_model(PenaltyModel::UtilizationProportional {
            scale: 2.0,
            jitter: 0.6,
        })
        .seed(13)
        .generate()?;
    let instance = Instance::new(tasks, xscale_ideal())?;
    let order: Vec<_> = instance.tasks().iter().map(Task::id).collect();
    println!("{instance}\narrival order = generation order; demand 2.0× capacity\n");

    let offline = BranchBound::default().solve(&instance)?;
    println!(
        "{:<22} {:>9} {:>10} {:>9}",
        "policy", "accepted", "cost", "vs OPT"
    );
    println!(
        "{:<22} {:>6}/{:<2} {:>10.2} {:>9.3}",
        "offline optimum",
        offline.accepted().len(),
        instance.len(),
        offline.cost(),
        1.0
    );
    let hedged15 = ThresholdPolicy::new(1.5)?;
    let hedged20 = ThresholdPolicy::new(2.0)?;
    let policies: Vec<&dyn AdmissionPolicy> = vec![&OnlineGreedy, &hedged15, &hedged20];
    let labels = ["online-greedy (θ=1)", "threshold θ=1.5", "threshold θ=2.0"];
    for (policy, label) in policies.iter().zip(labels) {
        let s = run_online(&instance, &order, *policy)?;
        s.verify(&instance)?;
        println!(
            "{:<22} {:>6}/{:<2} {:>10.2} {:>9.3}",
            label,
            s.accepted().len(),
            instance.len(),
            s.cost(),
            s.cost() / offline.cost()
        );
    }
    println!("\n(hedging reserves capacity for denser flows that arrive later)");
    Ok(())
}
