//! `dvs-reject` — command-line front end for the rejection scheduler.
//!
//! ```text
//! dvs-reject <taskset-file> [--alg ALG] [--power MODEL] [--levels K] [--budget N]
//!            [--threads N] [--replay] [--all]
//!
//!   ALG:   greedy (default) | sweep | dp | bb | exhaustive | anneal |
//!          local | accept-all | reject-all
//!   MODEL: xscale (default, P = 0.08 + 1.52 s³) | cubic (P = s³) |
//!          xscale-table (measured 5-level table)
//!   --levels K   quantise the speed domain to K even levels
//!   --budget N   anytime solve: cap bb/dp at N work units (nodes / DP
//!                cells), returning the flagged best incumbent on expiry
//!   --threads N  set DVS_THREADS for this process before solving (results
//!                are identical for any N; this only changes wall-clock)
//!   --replay     validate the solution on the EDF simulator
//!   --all        print a comparison table of every algorithm
//! ```
//!
//! The task-set file format is documented in `rt_model::io` (one task per
//! line: `id cycles period deadline penalty`, `-` for implicit deadlines).

use std::process::ExitCode;

use dvs_rejection::model::io::load_task_set;
use dvs_rejection::power::presets::{cubic_ideal, uniform_levels, xscale_ideal, xscale_measured};
use dvs_rejection::power::{Processor, SpeedDomain};
use dvs_rejection::sched::algorithms::{
    AcceptAllFeasible, BranchBound, DensitySweep, Exhaustive, LocalSearch, MarginalGreedy,
    RejectAll, ScaledDp, SimulatedAnnealing,
};
use dvs_rejection::sched::anytime::{AnytimeSolution, BudgetedPolicy, SolveBudget, SolveQuality};
use dvs_rejection::sched::constrained::ConstrainedInstance;
use dvs_rejection::sched::{Instance, RejectionPolicy};

fn policy(name: &str) -> Result<Box<dyn RejectionPolicy>, String> {
    Ok(match name {
        "greedy" => Box::new(MarginalGreedy),
        "sweep" => Box::new(DensitySweep),
        "dp" => Box::new(ScaledDp::new(0.05).map_err(|e| e.to_string())?),
        "bb" => Box::new(BranchBound::default()),
        "exhaustive" => Box::new(Exhaustive::default()),
        "anneal" => Box::new(SimulatedAnnealing::new(0)),
        "local" => Box::new(LocalSearch::around(MarginalGreedy)),
        "accept-all" => Box::new(AcceptAllFeasible),
        "reject-all" => Box::new(RejectAll),
        _ => return Err(format!("unknown algorithm {name} (see --help)")),
    })
}

/// The budgeted (anytime) solver for `--budget`, where one exists.
fn budgeted(name: &str) -> Result<Box<dyn BudgetedPolicy>, String> {
    Ok(match name {
        "dp" => Box::new(ScaledDp::new(0.05).map_err(|e| e.to_string())?),
        "bb" => Box::new(BranchBound::default()),
        _ => return Err(format!("--budget applies only to bb and dp, not {name}")),
    })
}

fn processor(model: &str, levels: Option<usize>) -> Result<Processor, String> {
    let base = match model {
        "xscale" => xscale_ideal(),
        "cubic" => cubic_ideal(),
        "xscale-table" => xscale_measured(),
        _ => return Err(format!("unknown power model {model} (see --help)")),
    };
    Ok(match levels {
        None => base,
        Some(k) if k > 0 && model != "xscale-table" => {
            let quantised = uniform_levels(k);
            let _ = quantised;
            Processor::new(
                *base.power(),
                SpeedDomain::discrete((1..=k).map(|i| i as f64 / k as f64).collect::<Vec<_>>())
                    .map_err(|e| format!("--levels {k}: {e}"))?,
            )
        }
        Some(_) => base,
    })
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut alg = "greedy".to_string();
    let mut model = "xscale".to_string();
    let mut levels = None;
    let mut budget: Option<u64> = None;
    let mut replay = false;
    let mut all = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--alg" => alg = it.next().ok_or("--alg needs a value")?.clone(),
            "--power" => model = it.next().ok_or("--power needs a value")?.clone(),
            "--levels" => {
                levels = Some(
                    it.next()
                        .ok_or("--levels needs a value")?
                        .parse::<usize>()
                        .map_err(|e| format!("bad --levels: {e}"))?,
                );
            }
            "--budget" => {
                budget = Some(
                    it.next()
                        .ok_or("--budget needs a value")?
                        .parse::<u64>()
                        .map_err(|e| format!("bad --budget: {e}"))?,
                );
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                std::env::set_var(dvs_exec::THREADS_ENV, n.to_string());
            }
            "--replay" => replay = true,
            "--all" => all = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: dvs-reject <taskset-file> [--alg ALG] [--power xscale|cubic|xscale-table] \
                     [--levels K] [--budget N] [--threads N] [--replay] [--all]"
                );
                return Ok(());
            }
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let file = file.ok_or("missing task-set file (see --help)")?;
    let tasks = load_task_set(&file).map_err(|e| e.to_string())?;
    let cpu = processor(&model, levels)?;

    // Constrained deadlines need the YDS-based oracle, not the scalar one.
    if tasks.iter().any(|t| !t.is_implicit_deadline()) {
        let inst = ConstrainedInstance::new(tasks, cpu).map_err(|e| e.to_string())?;
        println!(
            "constrained-deadline instance: n = {}, L = {} (YDS oracle; --alg is ignored, \
             greedy + exhaustive run)",
            inst.tasks().len(),
            inst.hyper_period()
        );
        let greedy = inst.solve_greedy().map_err(|e| e.to_string())?;
        greedy.verify(&inst).map_err(|e| e.to_string())?;
        println!(
            "{:<20} accepted {:>2}/{:<2}  energy {:>10.4}  penalty {:>10.4}  cost {:>10.4}",
            "constrained-greedy",
            greedy.accepted().len(),
            inst.tasks().len(),
            greedy.energy(),
            greedy.penalty(),
            greedy.cost()
        );
        if inst.tasks().len() <= 15 {
            let opt = inst.solve_exhaustive().map_err(|e| e.to_string())?;
            println!(
                "{:<20} accepted {:>2}/{:<2}  energy {:>10.4}  penalty {:>10.4}  cost {:>10.4}",
                "constrained-optimal",
                opt.accepted().len(),
                inst.tasks().len(),
                opt.energy(),
                opt.penalty(),
                opt.cost()
            );
            if replay && !opt.accepted().is_empty() {
                let report = opt.replay(&inst).map_err(|e| e.to_string())?;
                println!(
                    "replay: {} jobs completed, {} misses, measured energy {:.4}",
                    report.completed_jobs(),
                    report.misses().len(),
                    report.energy()
                );
            }
        }
        return Ok(());
    }

    let instance = Instance::new(tasks, cpu).map_err(|e| e.to_string())?;
    println!("{instance}");

    if budget.is_some() && all {
        return Err("--budget cannot be combined with --all".to_string());
    }
    let algs: Vec<String> = if all {
        ["greedy", "sweep", "dp", "bb", "accept-all", "reject-all"]
            .iter()
            .map(|s| (*s).to_string())
            .collect()
    } else {
        vec![alg]
    };
    for name in &algs {
        let solution = if let Some(n) = budget {
            let p = budgeted(name)?;
            let AnytimeSolution {
                solution,
                quality,
                nodes_used,
            } = p
                .solve_within(&instance, &SolveBudget::nodes(n))
                .map_err(|e| format!("{name}: {e}"))?;
            let label = match quality {
                SolveQuality::Exact => "exact",
                SolveQuality::Degraded => "degraded (budget expired; best incumbent)",
            };
            println!("anytime: {nodes_used} work units used, result {label}");
            solution
        } else {
            policy(name)?
                .solve(&instance)
                .map_err(|e| format!("{name}: {e}"))?
        };
        solution
            .verify(&instance)
            .map_err(|e| format!("{name}: {e}"))?;
        println!(
            "{:<20} accepted {:>2}/{:<2}  energy {:>10.4}  penalty {:>10.4}  cost {:>10.4}",
            solution.algorithm(),
            solution.accepted().len(),
            instance.len(),
            solution.energy(),
            solution.penalty(),
            solution.cost()
        );
        if !all {
            let rejected = solution.rejected(&instance);
            if !rejected.is_empty() {
                let list: Vec<String> = rejected.iter().map(ToString::to_string).collect();
                println!("rejected: {}", list.join(", "));
            }
            if replay && !solution.accepted().is_empty() {
                let report = solution.replay(&instance).map_err(|e| e.to_string())?;
                println!(
                    "replay: {} jobs completed, {} misses, measured energy {:.4}",
                    report.completed_jobs(),
                    report.misses().len(),
                    report.energy()
                );
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
