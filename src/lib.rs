//! # dvs-rejection — energy-efficient real-time task scheduling with task rejection
//!
//! Meta-crate re-exporting the public API of the workspace reproducing
//! *"Energy-Efficient Real-Time Task Scheduling with Task Rejection"*
//! (Chen, Kuo, Yang, King — DATE 2007). See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the evaluation.
//!
//! The workspace crates are usable individually; this crate bundles them for
//! the examples and integration tests:
//!
//! * [`model`] (`rt-model`) — periodic/frame-based task model and workload
//!   generators.
//! * [`power`] (`dvs-power`) — convex power functions, speed domains,
//!   critical speed, dormant-mode parameters.
//! * [`sim`] (`edf-sim`) — discrete-event EDF/DVS simulator with energy
//!   metering.
//! * [`sched`] (`reject-sched`) — **the paper's contribution**: the
//!   energy-plus-penalty minimisation problem and its exact, approximation,
//!   and heuristic algorithms.
//! * [`multi`] (`multi-sched`) — partitioned multiprocessor extension.
//! * [`admit`] (`dvs-admit`) — stateful online admission-control engine and
//!   the `dvs_admitd` line-protocol server with periodic re-optimization.
//! * [`exec`] (`dvs-exec`) — deterministic parallel execution layer
//!   (`DVS_THREADS`).
//!
//! # Quickstart
//!
//! ```
//! use dvs_rejection::model::generator::WorkloadSpec;
//! use dvs_rejection::power::{PowerFunction, Processor, SpeedDomain};
//! use dvs_rejection::sched::{Instance, RejectionPolicy};
//! use dvs_rejection::sched::algorithms::DensityGreedy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tasks = WorkloadSpec::new(10, 1.8).seed(1).generate()?;   // overloaded
//! let cpu = Processor::new(
//!     PowerFunction::polynomial(0.08, 1.52, 3.0)?,               // Intel XScale (normalised)
//!     SpeedDomain::continuous(0.1, 1.0)?,
//! );
//! let instance = Instance::new(tasks, cpu)?;
//! let solution = DensityGreedy::default().solve(&instance)?;
//! solution.verify(&instance)?;                                   // feasible, costs add up
//! println!("cost = {}", solution.cost());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use dvs_admit as admit;
pub use dvs_exec as exec;
pub use dvs_power as power;
pub use edf_sim as sim;
pub use multi_sched as multi;
pub use reject_sched as sched;
pub use rt_model as model;
