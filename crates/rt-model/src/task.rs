use std::fmt;

use crate::ModelError;

/// Opaque identifier of a task within a [`TaskSet`](crate::TaskSet).
///
/// Identifiers are small integers chosen by the caller (typically the index
/// in the originating workload). They only need to be unique within one set.
///
/// # Examples
///
/// ```
/// use rt_model::TaskId;
///
/// let id = TaskId::new(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(format!("{id}"), "τ7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(usize);

impl TaskId {
    /// Creates an identifier from a raw index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        TaskId(index)
    }

    /// Returns the raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(index: usize) -> Self {
        TaskId(index)
    }
}

/// A periodic real-time task `τᵢ = (cᵢ, pᵢ, vᵢ)`.
///
/// * `wcec` — worst-case execution cycles `cᵢ` per job (non-negative, finite;
///   may be fractional because cycle counts are normalised against speeds).
/// * `period` — period `pᵢ` in integral ticks; the relative deadline equals
///   the period (implicit-deadline model).
/// * `penalty` — rejection penalty `vᵢ` charged **per hyper-period** if the
///   task is not admitted.
///
/// The *utilization demand* of the task is `uᵢ = cᵢ / pᵢ`, measured in cycles
/// per tick — i.e. the minimum constant processor speed dedicated to `τᵢ`
/// alone.
///
/// # Examples
///
/// ```
/// use rt_model::Task;
///
/// # fn main() -> Result<(), rt_model::ModelError> {
/// let t = Task::new(0, 30.0, 100)?.with_penalty(2.5);
/// assert_eq!(t.wcec(), 30.0);
/// assert_eq!(t.period(), 100);
/// assert!((t.utilization() - 0.3).abs() < 1e-12);
/// assert_eq!(t.penalty(), 2.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    id: TaskId,
    wcec: f64,
    period: u64,
    deadline: u64,
    penalty: f64,
    domain: Option<usize>,
}

impl Task {
    /// Creates a task with the given identifier, worst-case execution cycles,
    /// and period in ticks. The rejection penalty defaults to `0`; set it
    /// with [`Task::with_penalty`].
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidCycles`] if `wcec` is negative, NaN, or infinite.
    /// * [`ModelError::InvalidPeriod`] if `period == 0`.
    pub fn new(id: impl Into<TaskId>, wcec: f64, period: u64) -> Result<Self, ModelError> {
        let id = id.into();
        if !wcec.is_finite() || wcec < 0.0 {
            return Err(ModelError::InvalidCycles {
                task: id.index(),
                cycles: wcec,
            });
        }
        if period == 0 {
            return Err(ModelError::InvalidPeriod { task: id.index() });
        }
        Ok(Task {
            id,
            wcec,
            period,
            deadline: period,
            penalty: 0.0,
            domain: None,
        })
    }

    /// Returns a copy of this task **pinned** to the given power domain.
    ///
    /// A pinned task may only be placed on (and priced against) that one
    /// domain — the partitioned-multiprocessor reading of the model, where
    /// the assignment of tasks to processors is an input rather than a
    /// placement decision. Unpinned tasks (the default) are placed on the
    /// cheapest domain by the consumer.
    ///
    /// The index is interpreted by the consumer (e.g. the admission engine
    /// validates it against its domain count); the model layer only stores
    /// it.
    #[must_use]
    pub const fn with_domain(mut self, domain: usize) -> Self {
        self.domain = Some(domain);
        self
    }

    /// The power-domain pin, if any (see [`Task::with_domain`]).
    #[must_use]
    pub const fn domain(&self) -> Option<usize> {
        self.domain
    }

    /// Returns a copy with a **constrained deadline** `d ≤ p` (the default
    /// is the implicit deadline `d = p`).
    ///
    /// Constrained deadlines tighten feasibility from the utilization test
    /// to the processor-demand criterion and make non-constant (YDS-style)
    /// speed schedules optimal — see
    /// `feasibility::min_constant_speed` and the `yds` module of `edf-sim`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidDeadline`] if `deadline == 0` or
    /// `deadline > period`.
    pub fn with_deadline(mut self, deadline: u64) -> Result<Self, ModelError> {
        if deadline == 0 || deadline > self.period {
            return Err(ModelError::InvalidDeadline);
        }
        self.deadline = deadline;
        Ok(self)
    }

    /// Returns a copy of this task with the rejection penalty replaced.
    ///
    /// # Panics
    ///
    /// Panics if `penalty` is negative, NaN, or infinite; penalties come from
    /// workload generators or user configuration where a bad value is a
    /// programming error.
    #[must_use]
    pub fn with_penalty(mut self, penalty: f64) -> Self {
        assert!(
            penalty.is_finite() && penalty >= 0.0,
            "rejection penalty must be finite and non-negative, got {penalty}"
        );
        self.penalty = penalty;
        self
    }

    /// Returns a copy of this task with the worst-case execution cycles replaced.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCycles`] if `wcec` is negative, NaN, or infinite.
    pub fn with_wcec(mut self, wcec: f64) -> Result<Self, ModelError> {
        if !wcec.is_finite() || wcec < 0.0 {
            return Err(ModelError::InvalidCycles {
                task: self.id.index(),
                cycles: wcec,
            });
        }
        self.wcec = wcec;
        Ok(self)
    }

    /// The task identifier.
    #[must_use]
    pub const fn id(&self) -> TaskId {
        self.id
    }

    /// Worst-case execution cycles `cᵢ` per job.
    #[must_use]
    pub const fn wcec(&self) -> f64 {
        self.wcec
    }

    /// Period `pᵢ` in ticks.
    #[must_use]
    pub const fn period(&self) -> u64 {
        self.period
    }

    /// Relative deadline `dᵢ ≤ pᵢ` in ticks (defaults to the period).
    #[must_use]
    pub const fn deadline(&self) -> u64 {
        self.deadline
    }

    /// Whether the task has an implicit deadline (`dᵢ = pᵢ`).
    #[must_use]
    pub const fn is_implicit_deadline(&self) -> bool {
        self.deadline == self.period
    }

    /// Density `cᵢ / dᵢ`: the utilization generalisation used by
    /// constrained-deadline feasibility (`density ≥ utilization`, equality
    /// iff the deadline is implicit).
    #[must_use]
    pub fn density(&self) -> f64 {
        self.wcec / self.deadline as f64
    }

    /// Rejection penalty `vᵢ` per hyper-period.
    #[must_use]
    pub const fn penalty(&self) -> f64 {
        self.penalty
    }

    /// Utilization demand `uᵢ = cᵢ / pᵢ` in cycles per tick.
    ///
    /// This is the minimum constant speed that completes every job of the
    /// task exactly at its deadline.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcec / self.period as f64
    }

    /// Penalty density `vᵢ / uᵢ`: penalty per unit of demanded speed.
    ///
    /// The greedy heuristics in `reject-sched` order tasks by this quantity —
    /// a task with low penalty density is a cheap candidate for rejection
    /// because dropping it frees a lot of capacity per unit of penalty paid.
    ///
    /// Returns `f64::INFINITY` for zero-utilization tasks with positive
    /// penalty (they are free to accept), and `0.0` when both are zero.
    #[must_use]
    pub fn penalty_density(&self) -> f64 {
        let u = self.utilization();
        if u == 0.0 {
            if self.penalty == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.penalty / u
        }
    }

    /// Number of jobs the task releases in one hyper-period of length `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is not a multiple of the period (i.e. not a true
    /// hyper-period for this task).
    #[must_use]
    pub fn jobs_per_hyper_period(&self, l: u64) -> u64 {
        assert!(
            l.is_multiple_of(self.period),
            "{l} is not a hyper-period for task with period {}",
            self.period
        );
        l / self.period
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_implicit_deadline() {
            write!(
                f,
                "{}(c={}, p={}, v={})",
                self.id, self.wcec, self.period, self.penalty
            )
        } else {
            write!(
                f,
                "{}(c={}, p={}, d={}, v={})",
                self.id, self.wcec, self.period, self.deadline, self.penalty
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_cycles() {
        assert!(Task::new(0, f64::NAN, 5).is_err());
        assert!(Task::new(0, f64::INFINITY, 5).is_err());
        assert!(Task::new(0, -0.5, 5).is_err());
        assert!(Task::new(0, 0.0, 5).is_ok());
    }

    #[test]
    fn construction_validates_period() {
        assert!(matches!(
            Task::new(4, 1.0, 0),
            Err(ModelError::InvalidPeriod { task: 4 })
        ));
    }

    #[test]
    #[should_panic(expected = "rejection penalty")]
    fn with_penalty_rejects_negative() {
        let _ = Task::new(0, 1.0, 1).unwrap().with_penalty(-1.0);
    }

    #[test]
    fn utilization_and_density() {
        let t = Task::new(1, 2.0, 8).unwrap().with_penalty(1.0);
        assert!((t.utilization() - 0.25).abs() < 1e-12);
        assert!((t.penalty_density() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_utilization_density_edge_cases() {
        let free = Task::new(0, 0.0, 10).unwrap();
        assert_eq!(free.penalty_density(), 0.0);
        let valuable = Task::new(1, 0.0, 10).unwrap().with_penalty(5.0);
        assert_eq!(valuable.penalty_density(), f64::INFINITY);
    }

    #[test]
    fn jobs_per_hyper_period_counts() {
        let t = Task::new(0, 1.0, 4).unwrap();
        assert_eq!(t.jobs_per_hyper_period(12), 3);
    }

    #[test]
    #[should_panic(expected = "not a hyper-period")]
    fn jobs_per_hyper_period_rejects_non_multiple() {
        let t = Task::new(0, 1.0, 5).unwrap();
        let _ = t.jobs_per_hyper_period(12);
    }

    #[test]
    fn with_wcec_replaces_cycles() {
        let t = Task::new(0, 1.0, 5).unwrap().with_wcec(3.0).unwrap();
        assert_eq!(t.wcec(), 3.0);
        assert!(t.with_wcec(f64::NAN).is_err());
    }

    #[test]
    fn display_formats() {
        let t = Task::new(2, 1.5, 10).unwrap().with_penalty(0.5);
        assert_eq!(t.to_string(), "τ2(c=1.5, p=10, v=0.5)");
        let t = t.with_deadline(7).unwrap();
        assert_eq!(t.to_string(), "τ2(c=1.5, p=10, d=7, v=0.5)");
    }

    #[test]
    fn domain_pin_defaults_to_none() {
        let t = Task::new(0, 2.0, 10).unwrap();
        assert_eq!(t.domain(), None);
        let pinned = t.with_domain(3);
        assert_eq!(pinned.domain(), Some(3));
        // The pin participates in equality: a pinned task is not the
        // unpinned task (journal replay must preserve it).
        assert_ne!(t, pinned);
    }

    #[test]
    fn deadlines_default_to_period() {
        let t = Task::new(0, 2.0, 10).unwrap();
        assert_eq!(t.deadline(), 10);
        assert!(t.is_implicit_deadline());
        assert!((t.density() - t.utilization()).abs() < 1e-12);
    }

    #[test]
    fn constrained_deadline_validated() {
        let t = Task::new(0, 2.0, 10).unwrap();
        assert!(t.with_deadline(0).is_err());
        assert!(t.with_deadline(11).is_err());
        let c = t.with_deadline(5).unwrap();
        assert!(!c.is_implicit_deadline());
        assert!((c.density() - 0.4).abs() < 1e-12);
        assert!(c.density() > c.utilization());
    }
}
