//! # rt-model — periodic real-time task model
//!
//! Substrate crate for the `dvs-rejection` workspace: it defines the task and
//! job model shared by every scheduler, simulator, and experiment in the
//! reproduction of *"Energy-Efficient Real-Time Task Scheduling with Task
//! Rejection"* (DATE 2007).
//!
//! The model follows the system model used across the authors' papers:
//!
//! * A **periodic task** `τᵢ` is an infinite sequence of jobs characterised by
//!   its worst-case execution cycles `cᵢ` and period `pᵢ`; the relative
//!   deadline equals the period, and all tasks arrive at time 0.
//! * Workload is measured in **cycles**; the number of cycles executed in an
//!   interval is linear in processor speed, so execution *time* is
//!   `cᵢ / s` at speed `s`.
//! * The **hyper-period** `L` is the least common multiple of the periods; a
//!   feasible schedule for `(0, L]` repeats forever.
//! * Each task additionally carries a **rejection penalty** `vᵢ`: the cost
//!   (per hyper-period) of not admitting the task — the knob that the target
//!   paper adds to the classic energy-minimisation problem.
//!
//! Time is measured in integral **ticks** (so hyper-periods are exact);
//! cycles and penalties are non-negative reals.
//!
//! # Examples
//!
//! ```
//! use rt_model::{Task, TaskSet};
//!
//! # fn main() -> Result<(), rt_model::ModelError> {
//! let tasks = TaskSet::try_from_tasks(vec![
//!     Task::new(0, 1.0, 2)?.with_penalty(3.0),
//!     Task::new(1, 2.5, 5)?.with_penalty(1.0),
//! ])?;
//! assert_eq!(tasks.hyper_period(), 10);
//! assert!((tasks.utilization() - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod frame;
mod job;
mod task;
mod task_set;

pub mod feasibility;
pub mod generator;
pub mod io;
pub mod rng;
pub mod transform;

pub use error::ModelError;
pub use frame::{FrameInstance, FrameTask};
pub use job::{Job, JobIter};
pub use task::{Task, TaskId};
pub use task_set::TaskSet;

/// Greatest common divisor of two integers (Euclid).
///
/// ```
/// assert_eq!(rt_model::gcd(12, 18), 6);
/// assert_eq!(rt_model::gcd(0, 7), 7);
/// ```
#[must_use]
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple of two integers.
///
/// Saturates at `u64::MAX` on overflow; callers that need exact hyper-periods
/// should keep periods within a few orders of magnitude of each other (the
/// generators in [`generator`] draw periods from a harmonic-friendly set for
/// this reason).
///
/// ```
/// assert_eq!(rt_model::lcm(4, 6), 12);
/// assert_eq!(rt_model::lcm(2, 5), 10);
/// ```
#[must_use]
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    (a / g).saturating_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(48, 36), 12);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(3, 7), 21);
        assert_eq!(lcm(10, 4), 20);
        assert_eq!(lcm(0, 9), 0);
    }

    #[test]
    fn lcm_saturates_instead_of_overflowing() {
        assert_eq!(lcm(u64::MAX, u64::MAX - 1), u64::MAX);
    }
}
