use std::error::Error;
use std::fmt;

/// Error raised when constructing or validating model objects.
///
/// Every constructor in this crate validates its arguments (periods must be
/// positive, cycles and penalties finite and non-negative, task identifiers
/// unique within a set) and reports violations through this type.
///
/// # Examples
///
/// ```
/// use rt_model::{ModelError, Task};
///
/// let err = Task::new(0, -1.0, 10).unwrap_err();
/// assert!(matches!(err, ModelError::InvalidCycles { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// Worst-case execution cycles were negative, NaN, or infinite.
    InvalidCycles {
        /// Identifier of the offending task.
        task: usize,
        /// The rejected value.
        cycles: f64,
    },
    /// The period was zero (periods are strictly positive integers).
    InvalidPeriod {
        /// Identifier of the offending task.
        task: usize,
    },
    /// The rejection penalty was negative, NaN, or infinite.
    InvalidPenalty {
        /// Identifier of the offending task.
        task: usize,
        /// The rejected value.
        penalty: f64,
    },
    /// Two tasks in one set share the same identifier.
    DuplicateTaskId {
        /// The duplicated identifier.
        task: usize,
    },
    /// The frame deadline was zero.
    InvalidDeadline,
    /// A referenced task identifier does not exist in the set.
    UnknownTask {
        /// The missing identifier.
        task: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidCycles { task, cycles } => {
                write!(
                    f,
                    "task {task}: execution cycles {cycles} is not finite and non-negative"
                )
            }
            ModelError::InvalidPeriod { task } => {
                write!(f, "task {task}: period must be a positive number of ticks")
            }
            ModelError::InvalidPenalty { task, penalty } => {
                write!(
                    f,
                    "task {task}: rejection penalty {penalty} is not finite and non-negative"
                )
            }
            ModelError::DuplicateTaskId { task } => {
                write!(f, "duplicate task identifier {task} in task set")
            }
            ModelError::InvalidDeadline => write!(f, "frame deadline must be positive"),
            ModelError::UnknownTask { task } => write!(f, "unknown task identifier {task}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = ModelError::InvalidPeriod { task: 3 };
        let msg = e.to_string();
        assert!(msg.contains("task 3"));
        assert!(msg.starts_with(char::is_lowercase));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
