//! Vendored deterministic PRNG — zero external dependencies.
//!
//! The workspace must build and test **offline** (no crates.io access), so
//! instead of depending on the `rand` crate the generators use this small
//! xoshiro256\*\* implementation (Blackman & Vigna), seeded through a
//! SplitMix64 stream exactly as the reference implementation recommends.
//! Both algorithms are public domain; the Rust code here is a
//! straightforward ~60-line transcription.
//!
//! Determinism is a hard requirement of the experiment suite: every stream
//! is fully determined by its `u64` seed, on every platform, forever —
//! there is no global state and no OS entropy involved.
//!
//! # Examples
//!
//! ```
//! use rt_model::rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(42);
//! let mut b = Rng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_f64(0.5, 2.0);
//! assert!((0.5..2.0).contains(&x));
//! ```

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding and anywhere a cheap stateless avalanche of a counter
/// is needed.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256\*\* generator: fast, 256-bit state, passes BigCrush.
///
/// All draws are deterministic per seed; see the
/// [module documentation](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, so
    /// nearby seeds yield unrelated streams).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`; returns `lo` when the range is empty
    /// (`hi ≤ lo`), mirroring how the generators treat degenerate ranges.
    pub fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform index in `[0, n)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        let n = n as u64;
        // Unbiased: reject draws in the short final bucket.
        let zone = u64::MAX - u64::MAX.wrapping_rem(n);
        loop {
            let x = self.next_u64();
            if x < zone || zone == 0 {
                return (x % n) as usize;
            }
        }
    }

    /// Uniform draw in `[lo, hi)` over `u64`; returns `lo` for empty ranges.
    pub fn gen_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.gen_index((hi - lo) as usize) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn reference_vector() {
        // xoshiro256** seeded with SplitMix64(0): pin the stream so silent
        // algorithm changes are caught (they would invalidate recorded
        // experiment tables).
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::seed_from_u64(0);
        assert_eq!(first, (0..3).map(|_| r2.next_u64()).collect::<Vec<_>>());
        // SplitMix64 known-answer test (state 0 → first output).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = Rng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_f64(0.5, 2.5);
            assert!((0.5..2.5).contains(&x));
            let i = r.gen_index(7);
            assert!(i < 7);
            let u = r.gen_u64(5, 60);
            assert!((5..60).contains(&u));
        }
        assert_eq!(r.gen_f64(1.0, 1.0), 1.0);
        assert_eq!(r.gen_u64(9, 9), 9);
    }

    #[test]
    fn index_distribution_covers_all_buckets() {
        let mut r = Rng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_index(10)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "skewed: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_index_range_panics() {
        let _ = Rng::seed_from_u64(0).gen_index(0);
    }
}
