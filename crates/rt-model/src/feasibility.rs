//! EDF feasibility analysis for periodic task sets on a speed-bounded
//! processor.
//!
//! On a uniprocessor running EDF, an implicit-deadline periodic task set is
//! schedulable at constant speed `s` iff its utilization demand satisfies
//! `U = Σ cᵢ/pᵢ ≤ s` (Liu & Layland). This module provides
//!
//! * the utilization test [`is_feasible_at_speed`],
//! * the exact [`demand_bound`] function (processor demand criterion), which
//!   generalises the utilization test and lets the test suite cross-check the
//!   closed form against a first-principles computation, and
//! * [`min_feasible_speed`], the speed an ideal DVS processor must sustain.
//!
//! All quantities are in cycles and ticks; speeds in cycles per tick.

use crate::TaskSet;

/// Relative tolerance used when comparing utilizations against speed bounds.
///
/// Floating-point sums of `cᵢ/pᵢ` can exceed an exact bound by a few ULPs;
/// schedulability decisions treat overshoot below this tolerance as feasible.
pub const FEASIBILITY_TOLERANCE: f64 = 1e-9;

/// Whether `tasks` is EDF-schedulable at constant speed `speed`
/// (cycles per tick).
///
/// Uses the Liu–Layland utilization bound `U ≤ s`, exact for
/// implicit-deadline periodic tasks under EDF, with a relative tolerance of
/// [`FEASIBILITY_TOLERANCE`].
///
/// # Examples
///
/// ```
/// use rt_model::{feasibility, Task, TaskSet};
///
/// # fn main() -> Result<(), rt_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![Task::new(0, 3.0, 4)?])?;
/// assert!(feasibility::is_feasible_at_speed(&ts, 0.75));
/// assert!(!feasibility::is_feasible_at_speed(&ts, 0.5));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn is_feasible_at_speed(tasks: &TaskSet, speed: f64) -> bool {
    tasks.utilization() <= speed * (1.0 + FEASIBILITY_TOLERANCE)
}

/// Minimum constant speed at which `tasks` is EDF-schedulable: its total
/// utilization demand `U` (cycles per tick).
///
/// ```
/// use rt_model::{feasibility, Task, TaskSet};
///
/// # fn main() -> Result<(), rt_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::new(0, 1.0, 4)?,
///     Task::new(1, 1.0, 2)?,
/// ])?;
/// assert!((feasibility::min_feasible_speed(&ts) - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn min_feasible_speed(tasks: &TaskSet) -> f64 {
    tasks.utilization()
}

/// Processor demand `dbf(t)`: total cycles of all jobs that are both
/// released and due within `[0, t]`.
///
/// For arbitrary (constrained) deadlines `dᵢ ≤ pᵢ`,
/// `dbf(t) = Σᵢ (⌊(t − dᵢ)/pᵢ⌋ + 1)·cᵢ` over tasks with `dᵢ ≤ t`; for
/// implicit deadlines this reduces to `Σᵢ ⌊t/pᵢ⌋·cᵢ`. A set is feasible at
/// speed `s` iff `dbf(t) ≤ s·t` for all `t` up to the hyper-period; the
/// utilization test is the implicit-deadline specialisation, and the test
/// suite uses `demand_bound` to validate [`is_feasible_at_speed`] from
/// first principles.
#[must_use]
pub fn demand_bound(tasks: &TaskSet, t: u64) -> f64 {
    tasks
        .iter()
        .filter(|task| task.deadline() <= t)
        .map(|task| ((t - task.deadline()) / task.period() + 1) as f64 * task.wcec())
        .sum()
}

/// The absolute deadlines within one hyper-period, sorted and deduplicated
/// — the points where `dbf` steps, and hence the only candidates for a
/// binding demand constraint.
#[must_use]
pub fn deadlines_in_hyper_period(tasks: &TaskSet) -> Vec<u64> {
    let l = tasks.hyper_period();
    let mut deadlines: Vec<u64> = tasks
        .iter()
        .flat_map(|task| (0..l / task.period()).map(move |k| k * task.period() + task.deadline()))
        .collect();
    deadlines.sort_unstable();
    deadlines.dedup();
    deadlines
}

/// Exhaustive processor-demand feasibility check at speed `speed`:
/// verifies `dbf(t) ≤ s·t` at every absolute deadline `t` within one
/// hyper-period. Exact for constrained-deadline sets (where the `O(n)`
/// utilization test is only necessary, not sufficient).
#[must_use]
pub fn is_feasible_by_demand(tasks: &TaskSet, speed: f64) -> bool {
    deadlines_in_hyper_period(tasks)
        .into_iter()
        .all(|t| demand_bound(tasks, t) <= speed * t as f64 * (1.0 + FEASIBILITY_TOLERANCE))
}

/// Minimum **constant** speed at which the set is EDF-schedulable,
/// handling constrained deadlines: `max(U, max_t dbf(t)/t)` over the
/// deadlines of one hyper-period.
///
/// For implicit-deadline sets this equals the utilization `U`; constrained
/// deadlines can push it higher (and a non-constant YDS schedule can then
/// beat any constant speed energetically — see `edf-sim`'s `yds` module).
///
/// ```
/// use rt_model::{feasibility, Task, TaskSet};
///
/// # fn main() -> Result<(), rt_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![
///     Task::new(0, 2.0, 10)?.with_deadline(4)?,
/// ])?;
/// // dbf(4) = 2 cycles in 4 ticks → speed 0.5, though U is only 0.2.
/// assert!((feasibility::min_constant_speed(&ts) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn min_constant_speed(tasks: &TaskSet) -> f64 {
    let mut speed = tasks.utilization();
    for t in deadlines_in_hyper_period(tasks) {
        if t > 0 {
            speed = speed.max(demand_bound(tasks, t) / t as f64);
        }
    }
    speed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;

    fn set(parts: &[(f64, u64)]) -> TaskSet {
        TaskSet::try_from_tasks(
            parts
                .iter()
                .enumerate()
                .map(|(i, &(c, p))| Task::new(i, c, p).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn utilization_test_at_exact_boundary() {
        let ts = set(&[(1.0, 2), (2.5, 5)]); // U = 1.0
        assert!(is_feasible_at_speed(&ts, 1.0));
        assert!(!is_feasible_at_speed(&ts, 0.999));
    }

    #[test]
    fn demand_bound_steps_at_deadlines() {
        let ts = set(&[(2.0, 5)]);
        assert_eq!(demand_bound(&ts, 4), 0.0);
        assert_eq!(demand_bound(&ts, 5), 2.0);
        assert_eq!(demand_bound(&ts, 14), 4.0);
        assert_eq!(demand_bound(&ts, 15), 6.0);
    }

    #[test]
    fn demand_criterion_agrees_with_utilization_test() {
        let cases = [
            set(&[(1.0, 2), (2.5, 5)]),
            set(&[(3.0, 10), (4.0, 20), (5.0, 40)]),
            set(&[(9.0, 10)]),
        ];
        for ts in &cases {
            for &s in &[0.3, 0.5, 0.7, 0.9, 1.0, 1.2] {
                assert_eq!(
                    is_feasible_at_speed(ts, s),
                    is_feasible_by_demand(ts, s),
                    "disagreement for U={} at s={}",
                    ts.utilization(),
                    s
                );
            }
        }
    }

    #[test]
    fn empty_set_is_always_feasible() {
        let ts = TaskSet::new();
        assert!(is_feasible_at_speed(&ts, 0.0));
        assert!(is_feasible_by_demand(&ts, 0.0));
        assert_eq!(min_feasible_speed(&ts), 0.0);
    }

    #[test]
    fn constrained_deadline_demand() {
        let ts = TaskSet::try_from_tasks(vec![Task::new(0, 2.0, 10)
            .unwrap()
            .with_deadline(4)
            .unwrap()])
        .unwrap();
        assert_eq!(demand_bound(&ts, 3), 0.0);
        assert_eq!(demand_bound(&ts, 4), 2.0);
        assert_eq!(demand_bound(&ts, 13), 2.0);
        assert_eq!(demand_bound(&ts, 14), 4.0);
        // Utilization test would accept s = 0.2, demand criterion refuses.
        assert!(!is_feasible_by_demand(&ts, 0.2));
        assert!(is_feasible_by_demand(&ts, 0.5));
        assert!((min_constant_speed(&ts) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_constant_speed_equals_utilization_for_implicit() {
        let ts = set(&[(1.0, 2), (2.5, 5)]);
        assert!((min_constant_speed(&ts) - ts.utilization()).abs() < 1e-12);
    }

    #[test]
    fn constrained_deadlines_enumerated() {
        let ts = TaskSet::try_from_tasks(vec![
            Task::new(0, 1.0, 4).unwrap().with_deadline(3).unwrap(),
            Task::new(1, 1.0, 8).unwrap(),
        ])
        .unwrap();
        assert_eq!(deadlines_in_hyper_period(&ts), vec![3, 7, 8]);
    }

    #[test]
    fn tolerance_absorbs_float_noise() {
        // Sum of thirds does not hit 1.0 exactly; must still be feasible at 1.
        let ts = set(&[(1.0, 3), (1.0, 3), (1.0, 3)]);
        assert!(is_feasible_at_speed(&ts, ts.utilization()));
        assert!(is_feasible_at_speed(&ts, 1.0));
    }
}
