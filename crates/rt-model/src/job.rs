use std::fmt;

use crate::{Task, TaskId, TaskSet};

/// One instance (job) of a periodic task.
///
/// The `j`-th job of task `τᵢ` is released at `(j−1)·pᵢ` and must finish by
/// its absolute deadline `j·pᵢ` (all tasks arrive at time 0 in this model).
///
/// # Examples
///
/// ```
/// use rt_model::{Task, TaskSet};
///
/// # fn main() -> Result<(), rt_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![Task::new(0, 1.0, 4)?])?;
/// let jobs: Vec<_> = ts.jobs_in(8).collect();
/// assert_eq!(jobs.len(), 2);
/// assert_eq!(jobs[1].release(), 4);
/// assert_eq!(jobs[1].deadline(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    task: TaskId,
    index: u64,
    release: u64,
    deadline: u64,
    cycles: f64,
}

impl Job {
    /// Builds the `index`-th job (0-based) of `task`; the absolute deadline
    /// is `release + task.deadline()` (equals the next release for
    /// implicit-deadline tasks).
    #[must_use]
    pub fn nth_of(task: &Task, index: u64) -> Self {
        Job {
            task: task.id(),
            index,
            release: index * task.period(),
            deadline: index * task.period() + task.deadline(),
            cycles: task.wcec(),
        }
    }

    /// Identifier of the releasing task.
    #[must_use]
    pub const fn task(&self) -> TaskId {
        self.task
    }

    /// 0-based job index within its task.
    #[must_use]
    pub const fn index(&self) -> u64 {
        self.index
    }

    /// Release (arrival) time in ticks.
    #[must_use]
    pub const fn release(&self) -> u64 {
        self.release
    }

    /// Absolute deadline in ticks.
    #[must_use]
    pub const fn deadline(&self) -> u64 {
        self.deadline
    }

    /// Worst-case execution cycles of the job.
    #[must_use]
    pub const fn cycles(&self) -> f64 {
        self.cycles
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{}[{}→{}]",
            self.task, self.index, self.release, self.deadline
        )
    }
}

/// Iterator over the jobs a [`TaskSet`] releases in `[0, horizon)`.
///
/// Produced by [`TaskSet::jobs_in`]; yields jobs task-by-task (all jobs of
/// the first task, then the second, …). Use
/// [`TaskSet::hyper_period_jobs`] for a release-time-sorted vector.
#[derive(Debug, Clone)]
pub struct JobIter {
    tasks: Vec<Task>,
    horizon: u64,
    task_pos: usize,
    job_index: u64,
}

impl JobIter {
    pub(crate) fn new(set: &TaskSet, horizon: u64) -> Self {
        JobIter {
            tasks: set.as_slice().to_vec(),
            horizon,
            task_pos: 0,
            job_index: 0,
        }
    }
}

impl Iterator for JobIter {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        loop {
            let task = self.tasks.get(self.task_pos)?;
            let release = self.job_index * task.period();
            if release < self.horizon {
                let job = Job::nth_of(task, self.job_index);
                self.job_index += 1;
                return Some(job);
            }
            self.task_pos += 1;
            self.job_index = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;

    fn set() -> TaskSet {
        TaskSet::try_from_tasks(vec![
            Task::new(0, 1.0, 2).unwrap(),
            Task::new(1, 2.5, 5).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn nth_of_computes_window() {
        let t = Task::new(3, 2.0, 7).unwrap();
        let j = Job::nth_of(&t, 4);
        assert_eq!(j.release(), 28);
        assert_eq!(j.deadline(), 35);
        assert_eq!(j.cycles(), 2.0);
        assert_eq!(j.task(), TaskId::new(3));
    }

    #[test]
    fn iterator_counts_jobs_per_task() {
        let jobs: Vec<Job> = set().jobs_in(10).collect();
        let t0 = jobs.iter().filter(|j| j.task() == TaskId::new(0)).count();
        let t1 = jobs.iter().filter(|j| j.task() == TaskId::new(1)).count();
        assert_eq!(t0, 5);
        assert_eq!(t1, 2);
    }

    #[test]
    fn horizon_is_exclusive_of_boundary_release() {
        // τ0 releases at 0,2,4,6,8 — the release at 10 is outside [0,10).
        let releases: Vec<u64> = set()
            .jobs_in(10)
            .filter(|j| j.task() == TaskId::new(0))
            .map(|j| j.release())
            .collect();
        assert_eq!(releases, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn zero_horizon_yields_nothing() {
        assert_eq!(set().jobs_in(0).count(), 0);
    }

    #[test]
    fn empty_set_yields_nothing() {
        assert_eq!(TaskSet::new().jobs_in(100).count(), 0);
    }

    #[test]
    fn display_shows_window() {
        let t = Task::new(1, 1.0, 5).unwrap();
        assert_eq!(Job::nth_of(&t, 1).to_string(), "τ1#1[5→10]");
    }

    #[test]
    fn constrained_deadline_propagates_to_jobs() {
        let t = Task::new(0, 1.0, 10).unwrap().with_deadline(4).unwrap();
        let j = Job::nth_of(&t, 2);
        assert_eq!(j.release(), 20);
        assert_eq!(j.deadline(), 24);
    }
}
