use std::collections::HashSet;
use std::fmt;
use std::ops::Index;

use crate::{lcm, Job, JobIter, ModelError, Task, TaskId};

/// An ordered collection of periodic tasks with unique identifiers.
///
/// `TaskSet` is the unit the schedulers operate on: it knows its hyper-period,
/// total utilization demand, and total rejection penalty, and can enumerate
/// the jobs released in any interval (for the simulator).
///
/// # Examples
///
/// ```
/// use rt_model::{Task, TaskSet};
///
/// # fn main() -> Result<(), rt_model::ModelError> {
/// let ts: TaskSet = TaskSet::try_from_tasks(vec![
///     Task::new(0, 1.0, 2)?,
///     Task::new(1, 2.5, 5)?,
/// ])?;
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.hyper_period(), 10);
/// // 5 jobs of τ0 and 2 jobs of τ1 in one hyper-period
/// assert_eq!(ts.jobs_in_hyper_period().count(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates an empty task set.
    #[must_use]
    pub fn new() -> Self {
        TaskSet { tasks: Vec::new() }
    }

    /// Builds a task set from tasks, validating identifier uniqueness.
    ///
    /// # Errors
    ///
    /// [`ModelError::DuplicateTaskId`] if two tasks share an identifier.
    pub fn try_from_tasks(tasks: impl IntoIterator<Item = Task>) -> Result<Self, ModelError> {
        let tasks: Vec<Task> = tasks.into_iter().collect();
        let mut seen = HashSet::with_capacity(tasks.len());
        for t in &tasks {
            if !seen.insert(t.id()) {
                return Err(ModelError::DuplicateTaskId {
                    task: t.id().index(),
                });
            }
        }
        Ok(TaskSet { tasks })
    }

    /// Adds a task to the set.
    ///
    /// # Errors
    ///
    /// [`ModelError::DuplicateTaskId`] if the identifier is already present.
    pub fn push(&mut self, task: Task) -> Result<(), ModelError> {
        if self.tasks.iter().any(|t| t.id() == task.id()) {
            return Err(ModelError::DuplicateTaskId {
                task: task.id().index(),
            });
        }
        self.tasks.push(task);
        Ok(())
    }

    /// Number of tasks in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set contains no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over the tasks in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// The tasks as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Task] {
        &self.tasks
    }

    /// Looks a task up by identifier.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id() == id)
    }

    /// Hyper-period `L`: the least common multiple of all periods
    /// (`0` for an empty set).
    #[must_use]
    pub fn hyper_period(&self) -> u64 {
        self.tasks
            .iter()
            .map(Task::period)
            .fold(0, |acc, p| if acc == 0 { p } else { lcm(acc, p) })
    }

    /// Total utilization demand `U = Σ cᵢ/pᵢ` in cycles per tick.
    ///
    /// `U` is the minimum constant processor speed under which EDF meets all
    /// deadlines, so the set is feasible on a processor with maximum speed
    /// `s_max` iff `U ≤ s_max`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Total rejection penalty `Σ vᵢ` per hyper-period.
    #[must_use]
    pub fn total_penalty(&self) -> f64 {
        self.tasks.iter().map(Task::penalty).sum()
    }

    /// Total cycles demanded in one hyper-period: `L · U`.
    #[must_use]
    pub fn cycles_per_hyper_period(&self) -> f64 {
        let l = self.hyper_period();
        self.tasks
            .iter()
            .map(|t| t.wcec() * (l / t.period()) as f64)
            .sum()
    }

    /// Returns the sub-set of tasks whose identifiers are in `ids`,
    /// preserving this set's order.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownTask`] if some identifier is not in the set.
    pub fn subset(&self, ids: &[TaskId]) -> Result<TaskSet, ModelError> {
        let wanted: HashSet<TaskId> = ids.iter().copied().collect();
        for id in &wanted {
            if self.get(*id).is_none() {
                return Err(ModelError::UnknownTask { task: id.index() });
            }
        }
        Ok(TaskSet {
            tasks: self
                .tasks
                .iter()
                .filter(|t| wanted.contains(&t.id()))
                .copied()
                .collect(),
        })
    }

    /// Removes a task by identifier, returning it if present.
    pub fn remove(&mut self, id: TaskId) -> Option<Task> {
        let pos = self.tasks.iter().position(|t| t.id() == id)?;
        Some(self.tasks.remove(pos))
    }

    /// Merges another set into this one.
    ///
    /// # Errors
    ///
    /// [`ModelError::DuplicateTaskId`] on the first identifier collision
    /// (this set keeps the tasks merged before the collision).
    pub fn merge(&mut self, other: TaskSet) -> Result<(), ModelError> {
        for t in other {
            self.push(t)?;
        }
        Ok(())
    }

    /// Splits the set into `(selected, rest)` according to a predicate.
    #[must_use]
    pub fn partition(&self, mut pred: impl FnMut(&Task) -> bool) -> (TaskSet, TaskSet) {
        let (a, b): (Vec<Task>, Vec<Task>) = self.tasks.iter().partition(|t| pred(t));
        (TaskSet { tasks: a }, TaskSet { tasks: b })
    }

    /// Returns the tasks sorted by a key, leaving the set untouched.
    #[must_use]
    pub fn sorted_by(&self, compare: impl FnMut(&Task, &Task) -> std::cmp::Ordering) -> Vec<Task> {
        let mut v = self.tasks.clone();
        v.sort_by(compare);
        v
    }

    /// Enumerates every job released in `[0, horizon)` in release order
    /// (ties broken by task order).
    ///
    /// Each job's absolute deadline is `release + period`, which may lie past
    /// the horizon; the simulator decides how to treat the boundary.
    #[must_use]
    pub fn jobs_in(&self, horizon: u64) -> JobIter {
        JobIter::new(self, horizon)
    }

    /// Enumerates every job of one hyper-period, i.e. `jobs_in(hyper_period())`.
    #[must_use]
    pub fn jobs_in_hyper_period(&self) -> JobIter {
        self.jobs_in(self.hyper_period())
    }

    /// Collects all jobs of one hyper-period into a vector sorted by release
    /// time (ties by task id).
    #[must_use]
    pub fn hyper_period_jobs(&self) -> Vec<Job> {
        let mut jobs: Vec<Job> = self.jobs_in_hyper_period().collect();
        jobs.sort_by(|a, b| {
            a.release()
                .cmp(&b.release())
                .then(a.task().index().cmp(&b.task().index()))
        });
        jobs
    }
}

impl Index<usize> for TaskSet {
    type Output = Task;

    fn index(&self, index: usize) -> &Task {
        &self.tasks[index]
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

impl IntoIterator for TaskSet {
    type Item = Task;
    type IntoIter = std::vec::IntoIter<Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> TaskSet {
        TaskSet::try_from_tasks(vec![
            Task::new(0, 1.0, 2).unwrap().with_penalty(3.0),
            Task::new(1, 2.5, 5).unwrap().with_penalty(1.0),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_ids_rejected() {
        let err = TaskSet::try_from_tasks(vec![
            Task::new(7, 1.0, 2).unwrap(),
            Task::new(7, 1.0, 3).unwrap(),
        ])
        .unwrap_err();
        assert_eq!(err, ModelError::DuplicateTaskId { task: 7 });
    }

    #[test]
    fn push_checks_duplicates() {
        let mut ts = example();
        assert!(ts.push(Task::new(0, 1.0, 4).unwrap()).is_err());
        assert!(ts.push(Task::new(2, 1.0, 4).unwrap()).is_ok());
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn hyper_period_is_lcm_of_periods() {
        assert_eq!(example().hyper_period(), 10);
        assert_eq!(TaskSet::new().hyper_period(), 0);
    }

    #[test]
    fn utilization_and_penalty_totals() {
        let ts = example();
        assert!((ts.utilization() - 1.0).abs() < 1e-12);
        assert!((ts.total_penalty() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_per_hyper_period_counts_all_jobs() {
        // τ0: 5 jobs × 1.0 cycles; τ1: 2 jobs × 2.5 cycles → 10 cycles
        assert!((example().cycles_per_hyper_period() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn subset_preserves_order_and_validates() {
        let ts = example();
        let sub = ts.subset(&[TaskId::new(1)]).unwrap();
        assert_eq!(sub.len(), 1);
        assert_eq!(sub[0].id(), TaskId::new(1));
        assert!(ts.subset(&[TaskId::new(9)]).is_err());
    }

    #[test]
    fn partition_splits() {
        let (heavy, light) = example().partition(|t| t.utilization() >= 0.5);
        assert_eq!(heavy.len(), 2); // both are exactly 0.5
        assert_eq!(light.len(), 0);
    }

    #[test]
    fn hyper_period_jobs_sorted_and_complete() {
        let jobs = example().hyper_period_jobs();
        assert_eq!(jobs.len(), 7);
        assert!(jobs.windows(2).all(|w| w[0].release() <= w[1].release()));
        // First job of each task released at 0.
        assert_eq!(jobs[0].release(), 0);
        assert_eq!(jobs[1].release(), 0);
    }

    #[test]
    fn get_by_id() {
        let ts = example();
        assert_eq!(ts.get(TaskId::new(1)).unwrap().period(), 5);
        assert!(ts.get(TaskId::new(3)).is_none());
    }

    #[test]
    fn remove_and_merge() {
        let mut ts = example();
        let t = ts.remove(TaskId::new(0)).unwrap();
        assert_eq!(t.period(), 2);
        assert_eq!(ts.len(), 1);
        assert!(ts.remove(TaskId::new(0)).is_none());

        let other = TaskSet::try_from_tasks(vec![
            Task::new(0, 1.0, 4).unwrap(),
            Task::new(2, 1.0, 8).unwrap(),
        ])
        .unwrap();
        ts.merge(other).unwrap();
        assert_eq!(ts.len(), 3);
        // Colliding merge fails on the duplicate.
        let dup = TaskSet::try_from_tasks(vec![Task::new(2, 1.0, 8).unwrap()]).unwrap();
        assert!(ts.merge(dup).is_err());
    }

    #[test]
    fn display_lists_tasks() {
        let s = example().to_string();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("τ0") && s.contains("τ1"));
    }
}
