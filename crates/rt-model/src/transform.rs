//! Task-set transformations used by parameter sweeps.
//!
//! The evaluation repeatedly derives families of instances from one base
//! workload — scaling demand, scaling penalties, shrinking deadlines. These
//! helpers centralise those derivations (identifiers and periods are always
//! preserved, so results across the family are directly comparable).

use crate::{ModelError, Task, TaskSet};

/// Scales every task's execution cycles by `factor ≥ 0` (demand scaling:
/// the utilization of each task scales linearly).
///
/// # Errors
///
/// [`ModelError::InvalidCycles`] if `factor` is negative or not finite.
///
/// # Examples
///
/// ```
/// use rt_model::{transform, Task, TaskSet};
///
/// # fn main() -> Result<(), rt_model::ModelError> {
/// let ts = TaskSet::try_from_tasks(vec![Task::new(0, 2.0, 10)?])?;
/// let heavier = transform::scale_load(&ts, 1.5)?;
/// assert!((heavier.utilization() - 0.3).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn scale_load(tasks: &TaskSet, factor: f64) -> Result<TaskSet, ModelError> {
    if !factor.is_finite() || factor < 0.0 {
        return Err(ModelError::InvalidCycles {
            task: usize::MAX,
            cycles: factor,
        });
    }
    rebuild(tasks, |t| {
        Task::new(t.id(), t.wcec() * factor, t.period())?
            .with_deadline(t.deadline())
            .map(|x| x.with_penalty(t.penalty()))
    })
}

/// Scales every task's rejection penalty by `factor ≥ 0`.
///
/// # Errors
///
/// [`ModelError::InvalidPenalty`] if `factor` is negative or not finite.
pub fn scale_penalties(tasks: &TaskSet, factor: f64) -> Result<TaskSet, ModelError> {
    if !factor.is_finite() || factor < 0.0 {
        return Err(ModelError::InvalidPenalty {
            task: usize::MAX,
            penalty: factor,
        });
    }
    rebuild(tasks, |t| {
        Task::new(t.id(), t.wcec(), t.period())?
            .with_deadline(t.deadline())
            .map(|x| x.with_penalty(t.penalty() * factor))
    })
}

/// Shrinks every task's relative deadline to `max(1, round(δ·dᵢ))` for
/// `δ ∈ (0, 1]` — the deadline-tightening sweep of experiment E4.
///
/// # Errors
///
/// [`ModelError::InvalidDeadline`] if `δ` is not in `(0, 1]`.
pub fn shrink_deadlines(tasks: &TaskSet, delta: f64) -> Result<TaskSet, ModelError> {
    if !delta.is_finite() || delta <= 0.0 || delta > 1.0 {
        return Err(ModelError::InvalidDeadline);
    }
    rebuild(tasks, |t| {
        let d = ((t.deadline() as f64 * delta).round() as u64).clamp(1, t.period());
        Task::new(t.id(), t.wcec(), t.period())?
            .with_deadline(d)
            .map(|x| x.with_penalty(t.penalty()))
    })
}

fn rebuild(
    tasks: &TaskSet,
    f: impl FnMut(&Task) -> Result<Task, ModelError>,
) -> Result<TaskSet, ModelError> {
    TaskSet::try_from_tasks(tasks.iter().map(f).collect::<Result<Vec<_>, _>>()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TaskSet {
        TaskSet::try_from_tasks(vec![
            Task::new(0, 2.0, 10).unwrap().with_penalty(3.0),
            Task::new(1, 4.0, 20)
                .unwrap()
                .with_deadline(12)
                .unwrap()
                .with_penalty(5.0),
        ])
        .unwrap()
    }

    #[test]
    fn load_scaling_preserves_structure() {
        let ts = scale_load(&base(), 2.0).unwrap();
        assert!((ts.utilization() - 2.0 * base().utilization()).abs() < 1e-12);
        assert_eq!(ts[1].deadline(), 12);
        assert_eq!(ts[1].penalty(), 5.0);
        assert!(scale_load(&base(), -1.0).is_err());
        assert!(scale_load(&base(), f64::NAN).is_err());
    }

    #[test]
    fn penalty_scaling_preserves_demand() {
        let ts = scale_penalties(&base(), 0.5).unwrap();
        assert!((ts.total_penalty() - 4.0).abs() < 1e-12);
        assert!((ts.utilization() - base().utilization()).abs() < 1e-12);
        assert!(scale_penalties(&base(), -0.1).is_err());
    }

    #[test]
    fn deadline_shrinking_clamps_and_validates() {
        let ts = shrink_deadlines(&base(), 0.5).unwrap();
        assert_eq!(ts[0].deadline(), 5);
        assert_eq!(ts[1].deadline(), 6);
        let tiny = shrink_deadlines(&base(), 0.01).unwrap();
        assert_eq!(tiny[0].deadline(), 1); // clamped to ≥ 1
        assert!(shrink_deadlines(&base(), 0.0).is_err());
        assert!(shrink_deadlines(&base(), 1.5).is_err());
        // δ = 1 is the identity.
        assert_eq!(shrink_deadlines(&base(), 1.0).unwrap(), base());
    }

    #[test]
    fn zero_factor_is_allowed_for_load_and_penalty() {
        let no_work = scale_load(&base(), 0.0).unwrap();
        assert_eq!(no_work.utilization(), 0.0);
        let free = scale_penalties(&base(), 0.0).unwrap();
        assert_eq!(free.total_penalty(), 0.0);
    }
}
