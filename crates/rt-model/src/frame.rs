use std::fmt;

use crate::{ModelError, Task, TaskId, TaskSet};

/// A task of a **frame-based** task set: every task arrives at time 0 and
/// shares one common deadline `D` (the frame length).
///
/// Frame-based sets are the model the authors use for one-shot workloads
/// (e.g. a frame of a multimedia pipeline): the frame repeats, but within a
/// frame each task runs exactly once. A frame-based task is the special case
/// of a periodic task with `pᵢ = D`, and [`FrameInstance::to_task_set`]
/// performs exactly that embedding so all periodic-task machinery applies.
///
/// # Examples
///
/// ```
/// use rt_model::{FrameInstance, FrameTask};
///
/// # fn main() -> Result<(), rt_model::ModelError> {
/// let frame = FrameInstance::new(100, vec![
///     FrameTask::new(0, 30.0)?.with_penalty(2.0),
///     FrameTask::new(1, 50.0)?.with_penalty(5.0),
/// ])?;
/// assert_eq!(frame.deadline(), 100);
/// assert!((frame.total_cycles() - 80.0).abs() < 1e-12);
/// let periodic = frame.to_task_set()?;
/// assert_eq!(periodic.hyper_period(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameTask {
    id: TaskId,
    wcec: f64,
    penalty: f64,
}

impl FrameTask {
    /// Creates a frame task with the given execution cycles.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidCycles`] if `wcec` is negative, NaN, or infinite.
    pub fn new(id: impl Into<TaskId>, wcec: f64) -> Result<Self, ModelError> {
        let id = id.into();
        if !wcec.is_finite() || wcec < 0.0 {
            return Err(ModelError::InvalidCycles {
                task: id.index(),
                cycles: wcec,
            });
        }
        Ok(FrameTask {
            id,
            wcec,
            penalty: 0.0,
        })
    }

    /// Returns a copy with the rejection penalty replaced.
    ///
    /// # Panics
    ///
    /// Panics if `penalty` is negative, NaN, or infinite.
    #[must_use]
    pub fn with_penalty(mut self, penalty: f64) -> Self {
        assert!(
            penalty.is_finite() && penalty >= 0.0,
            "rejection penalty must be finite and non-negative, got {penalty}"
        );
        self.penalty = penalty;
        self
    }

    /// The task identifier.
    #[must_use]
    pub const fn id(&self) -> TaskId {
        self.id
    }

    /// Worst-case execution cycles of the (single) job per frame.
    #[must_use]
    pub const fn wcec(&self) -> f64 {
        self.wcec
    }

    /// Rejection penalty per frame.
    #[must_use]
    pub const fn penalty(&self) -> f64 {
        self.penalty
    }
}

impl fmt::Display for FrameTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(c={}, v={})", self.id, self.wcec, self.penalty)
    }
}

/// A frame-based task set: tasks sharing a common deadline `D`.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameInstance {
    deadline: u64,
    tasks: Vec<FrameTask>,
}

impl FrameInstance {
    /// Creates a frame instance with common deadline `deadline` (ticks).
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidDeadline`] if `deadline == 0`.
    /// * [`ModelError::DuplicateTaskId`] if two tasks share an identifier.
    pub fn new(
        deadline: u64,
        tasks: impl IntoIterator<Item = FrameTask>,
    ) -> Result<Self, ModelError> {
        if deadline == 0 {
            return Err(ModelError::InvalidDeadline);
        }
        let tasks: Vec<FrameTask> = tasks.into_iter().collect();
        let mut seen = std::collections::HashSet::with_capacity(tasks.len());
        for t in &tasks {
            if !seen.insert(t.id()) {
                return Err(ModelError::DuplicateTaskId {
                    task: t.id().index(),
                });
            }
        }
        Ok(FrameInstance { deadline, tasks })
    }

    /// The common deadline `D` in ticks.
    #[must_use]
    pub const fn deadline(&self) -> u64 {
        self.deadline
    }

    /// The frame tasks.
    #[must_use]
    pub fn tasks(&self) -> &[FrameTask] {
        &self.tasks
    }

    /// Number of tasks in the frame.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the frame holds no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total cycles demanded per frame: `Σ cᵢ`.
    #[must_use]
    pub fn total_cycles(&self) -> f64 {
        self.tasks.iter().map(FrameTask::wcec).sum()
    }

    /// Total rejection penalty per frame: `Σ vᵢ`.
    #[must_use]
    pub fn total_penalty(&self) -> f64 {
        self.tasks.iter().map(FrameTask::penalty).sum()
    }

    /// Minimum constant speed that completes the whole frame by `D`:
    /// `Σ cᵢ / D`.
    #[must_use]
    pub fn required_speed(&self) -> f64 {
        self.total_cycles() / self.deadline as f64
    }

    /// Embeds the frame into the periodic model by giving every task the
    /// period `D` — the two views demand identical speed schedules, so all
    /// periodic-task algorithms apply unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from task construction (cannot occur for a
    /// validated frame; kept for API uniformity).
    pub fn to_task_set(&self) -> Result<TaskSet, ModelError> {
        TaskSet::try_from_tasks(
            self.tasks
                .iter()
                .map(|t| {
                    Task::new(t.id(), t.wcec(), self.deadline).map(|p| p.with_penalty(t.penalty()))
                })
                .collect::<Result<Vec<_>, _>>()?,
        )
    }
}

impl fmt::Display for FrameInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame(D={}) {{", self.deadline)?;
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> FrameInstance {
        FrameInstance::new(
            10,
            vec![
                FrameTask::new(0, 4.0).unwrap().with_penalty(1.0),
                FrameTask::new(1, 8.0).unwrap().with_penalty(2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn zero_deadline_rejected() {
        assert_eq!(
            FrameInstance::new(0, vec![]).unwrap_err(),
            ModelError::InvalidDeadline
        );
    }

    #[test]
    fn duplicate_ids_rejected() {
        let err = FrameInstance::new(
            5,
            vec![
                FrameTask::new(2, 1.0).unwrap(),
                FrameTask::new(2, 2.0).unwrap(),
            ],
        )
        .unwrap_err();
        assert_eq!(err, ModelError::DuplicateTaskId { task: 2 });
    }

    #[test]
    fn totals() {
        let f = frame();
        assert!((f.total_cycles() - 12.0).abs() < 1e-12);
        assert!((f.total_penalty() - 3.0).abs() < 1e-12);
        assert!((f.required_speed() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn embedding_matches_utilizations() {
        let f = frame();
        let ts = f.to_task_set().unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.hyper_period(), 10);
        assert!((ts.utilization() - f.required_speed()).abs() < 1e-12);
        assert!((ts.total_penalty() - f.total_penalty()).abs() < 1e-12);
    }

    #[test]
    fn invalid_cycles_rejected() {
        assert!(FrameTask::new(0, f64::NAN).is_err());
        assert!(FrameTask::new(0, -1.0).is_err());
    }

    #[test]
    fn display_shows_frame() {
        let s = frame().to_string();
        assert!(s.starts_with("frame(D=10)"));
        assert!(s.contains("τ1"));
    }
}
