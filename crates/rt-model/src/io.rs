//! Plain-text task-set format: load and save workloads.
//!
//! One task per line, whitespace-separated columns:
//!
//! ```text
//! # id  cycles  period  deadline  penalty     ("-" = implicit deadline)
//! 0     30.0    100     -         2.5
//! 1     45.0    100     60        5.0
//! ```
//!
//! Lines starting with `#` (and blank lines) are ignored. This is the
//! interchange format of the `dvs-reject` command-line tool.
//!
//! The module also defines the **event-trace format** consumed by the
//! online admission subsystem (`dvs-admit`): a timestamped stream of
//! arrivals, departures, and re-optimization ticks, one event per line:
//!
//! ```text
//! # at     kind    id  cycles  period  deadline  penalty  [domain]
//! 0.0      arrive  0   30.0    100     -         2.5
//! 2.0      arrive  1   45.0    100     60        5.0      2
//! 5.5      depart  0
//! 10       tick
//! ```
//!
//! The optional trailing `domain` column on `arrive` lines pins the task
//! to one power domain ([`Task::with_domain`]); it is omitted (not `-`)
//! for unpinned tasks so pre-existing traces remain byte-identical.
//!
//! See [`EventRecord`], [`parse_event_trace`], and [`load_event_trace`].
//!
//! # Examples
//!
//! ```
//! use rt_model::io::{format_task_set, parse_task_set};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "0 30.0 100 - 2.5\n1 45.0 100 60 5.0\n";
//! let tasks = parse_task_set(text)?;
//! assert_eq!(tasks.len(), 2);
//! assert_eq!(tasks[1].deadline(), 60);
//! let round_trip = parse_task_set(&format_task_set(&tasks))?;
//! assert_eq!(tasks, round_trip);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::{ModelError, Task, TaskId, TaskSet};

/// Error raised when parsing the plain-text task-set format.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseTaskSetError {
    /// A line did not have exactly 5 columns.
    BadColumnCount {
        /// 1-based line number.
        line: usize,
        /// Number of columns found.
        found: usize,
    },
    /// A field failed to parse as a number.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: &'static str,
    },
    /// The parsed values violated a model invariant.
    Model {
        /// 1-based line number.
        line: usize,
        /// The underlying violation.
        source: ModelError,
    },
}

impl fmt::Display for ParseTaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTaskSetError::BadColumnCount { line, found } => write!(
                f,
                "line {line}: expected 5 columns (id cycles period deadline penalty), found {found}"
            ),
            ParseTaskSetError::BadField { line, column } => {
                write!(f, "line {line}: cannot parse column {column}")
            }
            ParseTaskSetError::Model { line, source } => {
                write!(f, "line {line}: {source}")
            }
        }
    }
}

impl Error for ParseTaskSetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTaskSetError::Model { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Error raised when loading or saving a task-set file: either the
/// filesystem failed or the contents did not parse. Both variants carry the
/// offending path so callers can report it without extra bookkeeping.
#[derive(Debug)]
#[non_exhaustive]
pub enum LoadTaskSetError {
    /// Reading or writing the file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file contents are not a valid task set.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// The underlying parse error (line/column detail).
        source: ParseTaskSetError,
    },
}

impl fmt::Display for LoadTaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadTaskSetError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            LoadTaskSetError::Parse { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl Error for LoadTaskSetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadTaskSetError::Io { source, .. } => Some(source),
            LoadTaskSetError::Parse { source, .. } => Some(source),
        }
    }
}

/// Reads and parses a task-set file in the plain-text format described in
/// the [module documentation](self).
///
/// # Errors
///
/// [`LoadTaskSetError`] naming the path: [`LoadTaskSetError::Io`] when the
/// file cannot be read, [`LoadTaskSetError::Parse`] (with line/column
/// detail) when its contents are malformed.
pub fn load_task_set<P: AsRef<Path>>(path: P) -> Result<TaskSet, LoadTaskSetError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|source| LoadTaskSetError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    parse_task_set(&text).map_err(|source| LoadTaskSetError::Parse {
        path: path.to_path_buf(),
        source,
    })
}

/// Writes a task set to `path` in the plain-text format; the file
/// round-trips through [`load_task_set`].
///
/// # Errors
///
/// [`LoadTaskSetError::Io`] when the file cannot be written.
pub fn save_task_set<P: AsRef<Path>>(path: P, tasks: &TaskSet) -> Result<(), LoadTaskSetError> {
    let path = path.as_ref();
    std::fs::write(path, format_task_set(tasks)).map_err(|source| LoadTaskSetError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Parses the plain-text task-set format described in the
/// [module documentation](self).
///
/// # Errors
///
/// [`ParseTaskSetError`] pinpointing the offending line and column.
pub fn parse_task_set(text: &str) -> Result<TaskSet, ParseTaskSetError> {
    let mut tasks = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split_whitespace().collect();
        if cols.len() != 5 {
            return Err(ParseTaskSetError::BadColumnCount {
                line: line_no,
                found: cols.len(),
            });
        }
        let id: usize = cols[0].parse().map_err(|_| ParseTaskSetError::BadField {
            line: line_no,
            column: "id",
        })?;
        let cycles: f64 = cols[1].parse().map_err(|_| ParseTaskSetError::BadField {
            line: line_no,
            column: "cycles",
        })?;
        let period: u64 = cols[2].parse().map_err(|_| ParseTaskSetError::BadField {
            line: line_no,
            column: "period",
        })?;
        let penalty: f64 = cols[4].parse().map_err(|_| ParseTaskSetError::BadField {
            line: line_no,
            column: "penalty",
        })?;
        if !penalty.is_finite() || penalty < 0.0 {
            return Err(ParseTaskSetError::Model {
                line: line_no,
                source: ModelError::InvalidPenalty { task: id, penalty },
            });
        }
        let mut task = Task::new(id, cycles, period)
            .map_err(|source| ParseTaskSetError::Model {
                line: line_no,
                source,
            })?
            .with_penalty(penalty);
        if cols[3] != "-" {
            let deadline: u64 = cols[3].parse().map_err(|_| ParseTaskSetError::BadField {
                line: line_no,
                column: "deadline",
            })?;
            task = task
                .with_deadline(deadline)
                .map_err(|source| ParseTaskSetError::Model {
                    line: line_no,
                    source,
                })?;
        }
        tasks.push(task);
    }
    TaskSet::try_from_tasks(tasks).map_err(|source| ParseTaskSetError::Model { line: 0, source })
}

/// Formats a task set in the plain-text format (with a header comment);
/// the output round-trips through [`parse_task_set`].
#[must_use]
pub fn format_task_set(tasks: &TaskSet) -> String {
    let mut out = String::from("# id cycles period deadline penalty\n");
    for t in tasks.iter() {
        let deadline = if t.is_implicit_deadline() {
            "-".to_string()
        } else {
            t.deadline().to_string()
        };
        out.push_str(&format!(
            "{} {} {} {} {}\n",
            t.id().index(),
            t.wcec(),
            t.period(),
            deadline,
            t.penalty()
        ));
    }
    out
}

/// One event of a timestamped arrival stream.
///
/// The variants mirror what an online admission controller observes: a
/// task arriving (with its full parameters — the controller has no prior
/// knowledge of it), a task leaving the system (whether it was served or
/// not), and a periodic re-optimization tick.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A task enters the system and requests admission.
    Arrive(Task),
    /// The task with this identifier leaves the system.
    Depart(TaskId),
    /// A periodic housekeeping tick (re-optimization opportunity).
    Tick,
}

impl EventKind {
    /// Short stable label (`"arrive"`, `"depart"`, `"tick"`), the keyword
    /// used by the trace format.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Arrive(_) => "arrive",
            EventKind::Depart(_) => "depart",
            EventKind::Tick => "tick",
        }
    }
}

/// A timestamped [`EventKind`]: one record of an event trace.
///
/// Timestamps are in ticks (same unit as task periods) and must be finite
/// and non-negative; the parser enforces that, while monotonicity is the
/// *consumer's* contract (the admission engine rejects time regressions).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event timestamp in ticks.
    pub at: f64,
    /// What happened.
    pub kind: EventKind,
}

impl EventRecord {
    /// Creates a record.
    #[must_use]
    pub fn new(at: f64, kind: EventKind) -> Self {
        EventRecord { at, kind }
    }
}

/// Error raised when parsing the event-trace format.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseEventTraceError {
    /// A line had the wrong number of columns for its event kind.
    BadColumnCount {
        /// 1-based line number.
        line: usize,
        /// Number of columns found.
        found: usize,
        /// Number of columns the event kind requires.
        expected: usize,
    },
    /// The event-kind keyword was not `arrive`, `depart`, or `tick`.
    BadKind {
        /// 1-based line number.
        line: usize,
        /// The offending keyword.
        kind: String,
    },
    /// A field failed to parse or violated a range constraint.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: &'static str,
    },
    /// The parsed task violated a model invariant.
    Model {
        /// 1-based line number.
        line: usize,
        /// The underlying violation.
        source: ModelError,
    },
}

impl fmt::Display for ParseEventTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseEventTraceError::BadColumnCount {
                line,
                found,
                expected,
            } => write!(f, "line {line}: expected {expected} columns, found {found}"),
            ParseEventTraceError::BadKind { line, kind } => {
                write!(
                    f,
                    "line {line}: unknown event kind {kind:?} (want arrive|depart|tick)"
                )
            }
            ParseEventTraceError::BadField { line, column } => {
                write!(f, "line {line}: cannot parse column {column}")
            }
            ParseEventTraceError::Model { line, source } => {
                write!(f, "line {line}: {source}")
            }
        }
    }
}

impl Error for ParseEventTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseEventTraceError::Model { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Error raised when loading or saving an event-trace file, mirroring
/// [`LoadTaskSetError`]: filesystem failure or malformed contents, both
/// carrying the offending path.
#[derive(Debug)]
#[non_exhaustive]
pub enum LoadEventTraceError {
    /// Reading or writing the file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file contents are not a valid event trace.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// The underlying parse error (line/column detail).
        source: ParseEventTraceError,
    },
}

impl fmt::Display for LoadEventTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadEventTraceError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            LoadEventTraceError::Parse { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl Error for LoadEventTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadEventTraceError::Io { source, .. } => Some(source),
            LoadEventTraceError::Parse { source, .. } => Some(source),
        }
    }
}

/// Reads and parses an event-trace file in the format described in the
/// [module documentation](self).
///
/// # Errors
///
/// [`LoadEventTraceError`] naming the path: [`LoadEventTraceError::Io`]
/// when the file cannot be read, [`LoadEventTraceError::Parse`] (with
/// line/column detail) when its contents are malformed.
pub fn load_event_trace<P: AsRef<Path>>(path: P) -> Result<Vec<EventRecord>, LoadEventTraceError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|source| LoadEventTraceError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    parse_event_trace(&text).map_err(|source| LoadEventTraceError::Parse {
        path: path.to_path_buf(),
        source,
    })
}

/// Writes an event trace to `path`; the file round-trips through
/// [`load_event_trace`].
///
/// # Errors
///
/// [`LoadEventTraceError::Io`] when the file cannot be written.
pub fn save_event_trace<P: AsRef<Path>>(
    path: P,
    events: &[EventRecord],
) -> Result<(), LoadEventTraceError> {
    let path = path.as_ref();
    std::fs::write(path, format_event_trace(events)).map_err(|source| LoadEventTraceError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Parses the event-trace format described in the
/// [module documentation](self).
///
/// # Errors
///
/// [`ParseEventTraceError`] pinpointing the offending line and column.
pub fn parse_event_trace(text: &str) -> Result<Vec<EventRecord>, ParseEventTraceError> {
    let mut events = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        events.push(parse_event_cols(line, trimmed)?);
    }
    Ok(events)
}

/// Parses a single event line (no comments or blanks). Errors report the
/// offending column with line number 1 — use [`parse_event_trace`] for
/// whole files. This is the record-level entry point for consumers that
/// frame events individually, such as the admission server's write-ahead
/// journal.
///
/// # Errors
///
/// [`ParseEventTraceError`] naming the offending column.
pub fn parse_event_line(line: &str) -> Result<EventRecord, ParseEventTraceError> {
    parse_event_cols(1, line.trim())
}

fn parse_event_cols(line: usize, trimmed: &str) -> Result<EventRecord, ParseEventTraceError> {
    let cols: Vec<&str> = trimmed.split_whitespace().collect();
    if cols.len() < 2 {
        return Err(ParseEventTraceError::BadColumnCount {
            line,
            found: cols.len(),
            expected: 2,
        });
    }
    let at: f64 = cols[0]
        .parse()
        .ok()
        .filter(|t: &f64| t.is_finite() && *t >= 0.0)
        .ok_or(ParseEventTraceError::BadField { line, column: "at" })?;
    let kind = match cols[1] {
        "arrive" => {
            // 7 columns for an unpinned arrival; an optional 8th column
            // pins the task to a power domain (see `Task::with_domain`).
            if cols.len() != 7 && cols.len() != 8 {
                return Err(ParseEventTraceError::BadColumnCount {
                    line,
                    found: cols.len(),
                    expected: 7,
                });
            }
            let id: usize = cols[2]
                .parse()
                .map_err(|_| ParseEventTraceError::BadField { line, column: "id" })?;
            let cycles: f64 = cols[3]
                .parse()
                .map_err(|_| ParseEventTraceError::BadField {
                    line,
                    column: "cycles",
                })?;
            let period: u64 = cols[4]
                .parse()
                .map_err(|_| ParseEventTraceError::BadField {
                    line,
                    column: "period",
                })?;
            let penalty: f64 = cols[6]
                .parse()
                .map_err(|_| ParseEventTraceError::BadField {
                    line,
                    column: "penalty",
                })?;
            if !penalty.is_finite() || penalty < 0.0 {
                return Err(ParseEventTraceError::Model {
                    line,
                    source: ModelError::InvalidPenalty { task: id, penalty },
                });
            }
            let mut task = Task::new(id, cycles, period)
                .map_err(|source| ParseEventTraceError::Model { line, source })?
                .with_penalty(penalty);
            if cols[5] != "-" {
                let deadline: u64 =
                    cols[5]
                        .parse()
                        .map_err(|_| ParseEventTraceError::BadField {
                            line,
                            column: "deadline",
                        })?;
                task = task
                    .with_deadline(deadline)
                    .map_err(|source| ParseEventTraceError::Model { line, source })?;
            }
            if let Some(&col) = cols.get(7) {
                if col != "-" {
                    let domain: usize =
                        col.parse().map_err(|_| ParseEventTraceError::BadField {
                            line,
                            column: "domain",
                        })?;
                    task = task.with_domain(domain);
                }
            }
            EventKind::Arrive(task)
        }
        "depart" => {
            if cols.len() != 3 {
                return Err(ParseEventTraceError::BadColumnCount {
                    line,
                    found: cols.len(),
                    expected: 3,
                });
            }
            let id: usize = cols[2]
                .parse()
                .map_err(|_| ParseEventTraceError::BadField { line, column: "id" })?;
            EventKind::Depart(TaskId::new(id))
        }
        "tick" => {
            if cols.len() != 2 {
                return Err(ParseEventTraceError::BadColumnCount {
                    line,
                    found: cols.len(),
                    expected: 2,
                });
            }
            EventKind::Tick
        }
        other => {
            return Err(ParseEventTraceError::BadKind {
                line,
                kind: other.to_string(),
            })
        }
    };
    Ok(EventRecord::new(at, kind))
}

/// Formats an event trace (with a header comment); the output round-trips
/// through [`parse_event_trace`].
#[must_use]
pub fn format_event_trace(events: &[EventRecord]) -> String {
    let mut out = String::from("# at kind id cycles period deadline penalty\n");
    for e in events {
        out.push_str(&format_event(e));
        out.push('\n');
    }
    out
}

/// Formats one event as a single trace line (no trailing newline). The
/// output round-trips exactly through [`parse_event_line`]: floating-point
/// fields use Rust's shortest round-trip `Display`, so the parsed record
/// is bit-identical to the original — the property the admission server's
/// write-ahead journal relies on for deterministic replay.
#[must_use]
pub fn format_event(e: &EventRecord) -> String {
    match &e.kind {
        EventKind::Arrive(t) => {
            let deadline = if t.is_implicit_deadline() {
                "-".to_string()
            } else {
                t.deadline().to_string()
            };
            match t.domain() {
                // The pin column is only emitted when present so that
                // unpinned traces (and every journal written before the
                // column existed) keep their byte-exact format.
                Some(d) => format!(
                    "{} arrive {} {} {} {} {} {}",
                    e.at,
                    t.id().index(),
                    t.wcec(),
                    t.period(),
                    deadline,
                    t.penalty(),
                    d
                ),
                None => format!(
                    "{} arrive {} {} {} {} {}",
                    e.at,
                    t.id().index(),
                    t.wcec(),
                    t.period(),
                    deadline,
                    t.penalty()
                ),
            }
        }
        EventKind::Depart(id) => format!("{} depart {}", e.at, id.index()),
        EventKind::Tick => format!("{} tick", e.at),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# header\n\n0 1.0 10 - 0.5\n  # indented comment\n1 2.0 20 15 1.5\n";
        let ts = parse_task_set(text).unwrap();
        assert_eq!(ts.len(), 2);
        assert!(ts[0].is_implicit_deadline());
        assert_eq!(ts[1].deadline(), 15);
    }

    #[test]
    fn column_count_errors_name_the_line() {
        let err = parse_task_set("0 1.0 10 -\n").unwrap_err();
        assert_eq!(err, ParseTaskSetError::BadColumnCount { line: 1, found: 4 });
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn field_errors_name_the_column() {
        let err = parse_task_set("0 abc 10 - 1.0\n").unwrap_err();
        assert_eq!(
            err,
            ParseTaskSetError::BadField {
                line: 1,
                column: "cycles"
            }
        );
        let err = parse_task_set("0 1.0 10 x 1.0\n").unwrap_err();
        assert_eq!(
            err,
            ParseTaskSetError::BadField {
                line: 1,
                column: "deadline"
            }
        );
    }

    #[test]
    fn model_violations_propagate() {
        // deadline > period
        let err = parse_task_set("0 1.0 10 12 1.0\n").unwrap_err();
        assert!(matches!(err, ParseTaskSetError::Model { line: 1, .. }));
        // negative penalty
        let err = parse_task_set("0 1.0 10 - -1.0\n").unwrap_err();
        assert!(matches!(err, ParseTaskSetError::Model { line: 1, .. }));
        // duplicate ids
        let err = parse_task_set("0 1.0 10 - 1.0\n0 2.0 10 - 1.0\n").unwrap_err();
        assert!(matches!(err, ParseTaskSetError::Model { .. }));
    }

    #[test]
    fn round_trip_preserves_everything() {
        let text = "0 1.5 10 - 0.25\n3 2.0 20 15 1.5\n7 0.0 5 - 0.0\n";
        let ts = parse_task_set(text).unwrap();
        let again = parse_task_set(&format_task_set(&ts)).unwrap();
        assert_eq!(ts, again);
    }

    #[test]
    fn load_reports_missing_file_as_io_error() {
        let err = load_task_set("/nonexistent/task_set_io_test.txt").unwrap_err();
        assert!(matches!(err, LoadTaskSetError::Io { .. }));
        assert!(err.to_string().contains("task_set_io_test.txt"));
    }

    #[test]
    fn save_then_load_round_trips() {
        let ts = parse_task_set("0 1.5 10 - 0.25\n1 2.0 20 15 1.5\n").unwrap();
        let dir = std::env::temp_dir().join("rt_model_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tasks.txt");
        save_task_set(&path, &ts).unwrap();
        let again = load_task_set(&path).unwrap();
        let _ = std::fs::remove_dir_all(dir);
        assert_eq!(ts, again);
    }

    #[test]
    fn load_reports_parse_errors_with_path_and_line() {
        let dir = std::env::temp_dir().join("rt_model_io_parse_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "0 1.0 10 - 1.0\nbroken line\n").unwrap();
        let err = load_task_set(&path).unwrap_err();
        let _ = std::fs::remove_dir_all(dir);
        assert!(matches!(err, LoadTaskSetError::Parse { .. }));
        let msg = err.to_string();
        assert!(msg.contains("bad.txt") && msg.contains("line 2"), "{msg}");
    }

    fn sample_trace() -> Vec<EventRecord> {
        vec![
            EventRecord::new(
                0.0,
                EventKind::Arrive(Task::new(0, 30.0, 100).unwrap().with_penalty(2.5)),
            ),
            EventRecord::new(
                1.5,
                EventKind::Arrive(
                    Task::new(1, 45.0, 100)
                        .unwrap()
                        .with_penalty(5.0)
                        .with_deadline(60)
                        .unwrap(),
                ),
            ),
            EventRecord::new(10.0, EventKind::Tick),
            EventRecord::new(12.25, EventKind::Depart(TaskId::new(0))),
        ]
    }

    #[test]
    fn event_trace_round_trips() {
        let trace = sample_trace();
        let again = parse_event_trace(&format_event_trace(&trace)).unwrap();
        assert_eq!(trace, again);
    }

    #[test]
    fn single_event_lines_round_trip_bit_exactly() {
        // Awkward floats must survive format → parse with identical bits:
        // the admission journal replays these records and compares
        // decision logs bit-for-bit.
        let awkward = [0.1 + 0.2, 1.0 / 3.0, 4000.0 * (2.0_f64).sqrt(), 1e-12];
        for (i, &at) in awkward.iter().enumerate() {
            let t = Task::new(i, at * 7.0, 1000).unwrap().with_penalty(at * 3.0);
            for e in [
                EventRecord::new(at, EventKind::Arrive(t)),
                EventRecord::new(at, EventKind::Depart(t.id())),
                EventRecord::new(at, EventKind::Tick),
            ] {
                let again = parse_event_line(&format_event(&e)).unwrap();
                assert_eq!(again.at.to_bits(), e.at.to_bits());
                assert_eq!(again, e);
            }
        }
        // Errors surface per-line, without a trace context.
        assert!(parse_event_line("").is_err());
        assert!(parse_event_line("0 vanish 1").is_err());
    }

    #[test]
    fn pinned_arrivals_round_trip_with_domain_column() {
        let t = Task::new(9, 12.5, 1000).unwrap().with_penalty(3.25);
        for task in [t, t.with_domain(0), t.with_domain(7)] {
            let e = EventRecord::new(0.1 + 0.2, EventKind::Arrive(task));
            let line = format_event(&e);
            let cols = line.split_whitespace().count();
            assert_eq!(cols, if task.domain().is_some() { 8 } else { 7 });
            let again = parse_event_line(&line).unwrap();
            assert_eq!(again, e);
            match again.kind {
                EventKind::Arrive(p) => assert_eq!(p.domain(), task.domain()),
                _ => unreachable!(),
            }
        }
        // An explicit "-" in the 8th column also reads as unpinned.
        let again = parse_event_line("0 arrive 9 12.5 1000 - 3.25 -").unwrap();
        assert!(matches!(again.kind, EventKind::Arrive(p) if p.domain().is_none()));
        // A non-numeric pin names the column.
        let err = parse_event_line("0 arrive 9 12.5 1000 - 3.25 x").unwrap_err();
        assert_eq!(
            err,
            ParseEventTraceError::BadField {
                line: 1,
                column: "domain"
            }
        );
    }

    #[test]
    fn event_trace_parses_comments_and_blanks() {
        let text = "# header\n\n0 arrive 3 1.0 10 - 0.5\n\n5 tick\n # trailing\n";
        let trace = parse_event_trace(text).unwrap();
        assert_eq!(trace.len(), 2);
        assert!(matches!(&trace[0].kind, EventKind::Arrive(t) if t.id() == TaskId::new(3)));
        assert_eq!(trace[1].kind, EventKind::Tick);
        assert_eq!(trace[0].kind.label(), "arrive");
    }

    #[test]
    fn event_trace_errors_name_line_and_column() {
        let err = parse_event_trace("0 arrive 0 1.0 10 -\n").unwrap_err();
        assert_eq!(
            err,
            ParseEventTraceError::BadColumnCount {
                line: 1,
                found: 6,
                expected: 7
            }
        );
        let err = parse_event_trace("x tick\n").unwrap_err();
        assert_eq!(
            err,
            ParseEventTraceError::BadField {
                line: 1,
                column: "at"
            }
        );
        let err = parse_event_trace("-1 tick\n").unwrap_err();
        assert_eq!(
            err,
            ParseEventTraceError::BadField {
                line: 1,
                column: "at"
            }
        );
        let err = parse_event_trace("0 vanish 3\n").unwrap_err();
        assert!(matches!(err, ParseEventTraceError::BadKind { line: 1, .. }));
        assert!(err.to_string().contains("vanish"));
        // deadline > period is a model violation with the line number.
        let err = parse_event_trace("0 arrive 0 1.0 10 12 1.0\n").unwrap_err();
        assert!(matches!(err, ParseEventTraceError::Model { line: 1, .. }));
    }

    #[test]
    fn event_trace_save_then_load_round_trips() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join("rt_model_io_event_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.events");
        save_event_trace(&path, &trace).unwrap();
        let again = load_event_trace(&path).unwrap();
        let _ = std::fs::remove_dir_all(dir);
        assert_eq!(trace, again);
    }

    #[test]
    fn event_trace_load_reports_missing_file_as_io_error() {
        let err = load_event_trace("/nonexistent/event_trace_io_test.events").unwrap_err();
        assert!(matches!(err, LoadEventTraceError::Io { .. }));
        assert!(err.to_string().contains("event_trace_io_test.events"));
    }

    #[test]
    fn event_trace_load_reports_parse_errors_with_path_and_line() {
        let dir = std::env::temp_dir().join("rt_model_io_event_trace_parse_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.events");
        std::fs::write(&path, "0 tick\nbroken\n").unwrap();
        let err = load_event_trace(&path).unwrap_err();
        let _ = std::fs::remove_dir_all(dir);
        assert!(matches!(err, LoadEventTraceError::Parse { .. }));
        let msg = err.to_string();
        assert!(
            msg.contains("bad.events") && msg.contains("line 2"),
            "{msg}"
        );
    }
}
