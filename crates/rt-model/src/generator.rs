//! Synthetic workload generation.
//!
//! The evaluation methodology of the target paper's research line uses
//! synthetic periodic task sets: per-task utilizations drawn by
//! **UUniFast** (Bini & Buttazzo) to hit a prescribed total demand, periods
//! drawn from a harmonic-friendly set (so hyper-periods stay small and
//! exact), and rejection penalties drawn from a configurable model.
//!
//! Generation is fully deterministic given a seed, so every experiment in
//! `bench-suite` is reproducible.
//!
//! # Examples
//!
//! ```
//! use rt_model::generator::{PenaltyModel, WorkloadSpec};
//!
//! # fn main() -> Result<(), rt_model::ModelError> {
//! let ts = WorkloadSpec::new(8, 1.6)          // 8 tasks, total demand 1.6 (overload)
//!     .penalty_model(PenaltyModel::UtilizationProportional { scale: 2.0, jitter: 0.5 })
//!     .seed(42)
//!     .generate()?;
//! assert_eq!(ts.len(), 8);
//! assert!((ts.utilization() - 1.6).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

use crate::rng::Rng;
use crate::{FrameInstance, FrameTask, ModelError, Task, TaskSet};

/// Periods are drawn from this harmonic-friendly set by default; its LCM is
/// 6000 ticks, so hyper-periods remain exact and job counts stay small.
pub const DEFAULT_PERIOD_SET: &[u64] = &[10, 20, 25, 40, 50, 100, 125, 200, 250, 500, 1000];

/// How rejection penalties `vᵢ` are assigned to generated tasks.
///
/// Penalties are *per hyper-period*, so models that should be commensurable
/// with energy scale with the hyper-period length `L` (energy over a
/// hyper-period is `L·U·P(s)/s`, i.e. also linear in `L`).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PenaltyModel {
    /// `vᵢ ~ Uniform[lo, hi] · L` — penalties unrelated to the task's demand.
    Uniform {
        /// Lower bound of the per-tick penalty rate.
        lo: f64,
        /// Upper bound of the per-tick penalty rate.
        hi: f64,
    },
    /// `vᵢ = scale · uᵢ · L · Uniform[1−jitter, 1+jitter]` — heavy tasks are
    /// also valuable tasks. With `scale ≈ P(s_max)/s_max` the penalty of a
    /// task is comparable to the energy it costs to run, placing instances in
    /// the interesting regime where rejection decisions are non-trivial.
    UtilizationProportional {
        /// Penalty per unit of utilization per tick.
        scale: f64,
        /// Relative jitter in `[0, 1)` applied multiplicatively.
        jitter: f64,
    },
    /// `vᵢ = scale · (u_max − uᵢ + u_min) · L · Uniform[1−jitter, 1+jitter]`
    /// — *adversarial*: heavy tasks are cheap to reject and light tasks are
    /// precious. Density-greedy heuristics are expected to do well here;
    /// the inverse regime stresses them elsewhere.
    InverseUtilization {
        /// Penalty rate multiplier.
        scale: f64,
        /// Relative jitter in `[0, 1)`.
        jitter: f64,
    },
}

impl Default for PenaltyModel {
    fn default() -> Self {
        PenaltyModel::UtilizationProportional {
            scale: 1.5,
            jitter: 0.5,
        }
    }
}

/// Builder describing a synthetic periodic workload.
///
/// See the [module documentation](self) for an example.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    n: usize,
    total_utilization: f64,
    periods: Vec<u64>,
    penalty_model: PenaltyModel,
    max_task_utilization: f64,
    seed: u64,
}

impl WorkloadSpec {
    /// Creates a spec for `n` tasks with the given total utilization demand
    /// (cycles per tick; values above the processor's `s_max` model
    /// overload).
    ///
    /// Defaults: periods from [`DEFAULT_PERIOD_SET`], the default
    /// [`PenaltyModel`], no per-task utilization cap, seed 0.
    #[must_use]
    pub fn new(n: usize, total_utilization: f64) -> Self {
        WorkloadSpec {
            n,
            total_utilization,
            periods: DEFAULT_PERIOD_SET.to_vec(),
            penalty_model: PenaltyModel::default(),
            max_task_utilization: f64::INFINITY,
            seed: 0,
        }
    }

    /// Replaces the candidate period set (ticks).
    ///
    /// # Panics
    ///
    /// Panics if `periods` is empty or contains 0.
    #[must_use]
    pub fn periods(mut self, periods: impl Into<Vec<u64>>) -> Self {
        let periods = periods.into();
        assert!(!periods.is_empty(), "period set must not be empty");
        assert!(periods.iter().all(|&p| p > 0), "periods must be positive");
        self.periods = periods;
        self
    }

    /// Replaces the penalty model.
    #[must_use]
    pub fn penalty_model(mut self, model: PenaltyModel) -> Self {
        self.penalty_model = model;
        self
    }

    /// Caps each task's individual utilization (UUniFast-discard): vectors
    /// with any `uᵢ > cap` are redrawn.
    ///
    /// # Panics
    ///
    /// Panics if the cap makes the target total unreachable
    /// (`cap · n < total_utilization`).
    #[must_use]
    pub fn max_task_utilization(mut self, cap: f64) -> Self {
        assert!(
            cap * self.n as f64 >= self.total_utilization,
            "cap {cap} × {} tasks cannot reach total utilization {}",
            self.n,
            self.total_utilization
        );
        self.max_task_utilization = cap;
        self
    }

    /// Sets the RNG seed (generation is deterministic per seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the periodic task set.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from task construction (cannot occur for
    /// valid specs; kept for API uniformity).
    pub fn generate(&self) -> Result<TaskSet, ModelError> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let utils = uunifast_discard(
            &mut rng,
            self.n,
            self.total_utilization,
            self.max_task_utilization,
        );
        let mut tasks = Vec::with_capacity(self.n);
        for (i, &u) in utils.iter().enumerate() {
            let period = self.periods[rng.gen_index(self.periods.len())];
            tasks.push(Task::new(i, u * period as f64, period)?);
        }
        let set = TaskSet::try_from_tasks(tasks)?;
        Ok(self.assign_penalties(&mut rng, set))
    }

    fn assign_penalties(&self, rng: &mut Rng, set: TaskSet) -> TaskSet {
        let l = set.hyper_period().max(1) as f64;
        let u_min = set
            .iter()
            .map(Task::utilization)
            .fold(f64::INFINITY, f64::min);
        let u_max = set.iter().map(Task::utilization).fold(0.0, f64::max);
        let tasks: Vec<Task> = set
            .into_iter()
            .map(|t| {
                let v = match self.penalty_model {
                    PenaltyModel::Uniform { lo, hi } => {
                        let rate = rng.gen_f64(lo, hi);
                        rate * l
                    }
                    PenaltyModel::UtilizationProportional { scale, jitter } => {
                        scale * t.utilization() * l * jitter_factor(rng, jitter)
                    }
                    PenaltyModel::InverseUtilization { scale, jitter } => {
                        scale
                            * (u_max - t.utilization() + u_min).max(0.0)
                            * l
                            * jitter_factor(rng, jitter)
                    }
                };
                t.with_penalty(v.max(0.0))
            })
            .collect();
        TaskSet::try_from_tasks(tasks).expect("identifiers unchanged")
    }

    /// Generates a frame-based instance with the same machinery: tasks get a
    /// common deadline `deadline` and cycles `uᵢ · deadline`.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from construction.
    pub fn generate_frame(&self, deadline: u64) -> Result<FrameInstance, ModelError> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let utils = uunifast_discard(
            &mut rng,
            self.n,
            self.total_utilization,
            self.max_task_utilization,
        );
        let d = deadline as f64;
        let u_min = utils.iter().copied().fold(f64::INFINITY, f64::min);
        let u_max = utils.iter().copied().fold(0.0, f64::max);
        let mut tasks = Vec::with_capacity(self.n);
        for (i, &u) in utils.iter().enumerate() {
            let v = match self.penalty_model {
                PenaltyModel::Uniform { lo, hi } => rng.gen_f64(lo, hi) * d,
                PenaltyModel::UtilizationProportional { scale, jitter } => {
                    scale * u * d * jitter_factor(&mut rng, jitter)
                }
                PenaltyModel::InverseUtilization { scale, jitter } => {
                    scale * (u_max - u + u_min).max(0.0) * d * jitter_factor(&mut rng, jitter)
                }
            };
            tasks.push(FrameTask::new(i, u * d)?.with_penalty(v.max(0.0)));
        }
        FrameInstance::new(deadline, tasks)
    }
}

fn jitter_factor(rng: &mut Rng, jitter: f64) -> f64 {
    if jitter > 0.0 {
        rng.gen_f64(1.0 - jitter, 1.0 + jitter)
    } else {
        1.0
    }
}

/// UUniFast (Bini & Buttazzo 2005): draws `n` non-negative utilizations that
/// sum exactly (up to floating point) to `total`, uniformly over the simplex.
///
/// # Panics
///
/// Panics if `n == 0` and `total > 0`, or if `total` is negative/non-finite.
#[must_use]
pub fn uunifast(rng: &mut Rng, n: usize, total: f64) -> Vec<f64> {
    assert!(
        total.is_finite() && total >= 0.0,
        "total utilization must be finite and non-negative"
    );
    if n == 0 {
        assert!(
            total == 0.0,
            "cannot distribute positive utilization over zero tasks"
        );
        return Vec::new();
    }
    let mut utils = Vec::with_capacity(n);
    let mut remaining = total;
    for i in 1..n {
        let exp = 1.0 / (n - i) as f64;
        let next = remaining * rng.next_f64().powf(exp);
        utils.push(remaining - next);
        remaining = next;
    }
    utils.push(remaining);
    utils
}

/// UUniFast with discard: redraws until every utilization is `≤ cap`
/// (at most 10 000 attempts, then the offending values are clamped by
/// redistributing the excess — a deterministic fallback so generation always
/// terminates).
#[must_use]
pub fn uunifast_discard(rng: &mut Rng, n: usize, total: f64, cap: f64) -> Vec<f64> {
    if !cap.is_finite() {
        return uunifast(rng, n, total);
    }
    for _ in 0..10_000 {
        let utils = uunifast(rng, n, total);
        if utils.iter().all(|&u| u <= cap) {
            return utils;
        }
    }
    // Fallback: clamp to cap and spread the excess over unsaturated tasks.
    let mut utils = uunifast(rng, n, total);
    for _ in 0..n {
        let mut excess = 0.0;
        for u in utils.iter_mut() {
            if *u > cap {
                excess += *u - cap;
                *u = cap;
            }
        }
        if excess <= 1e-12 {
            break;
        }
        let slack: f64 = utils.iter().map(|&u| cap - u).sum();
        if slack <= 0.0 {
            break;
        }
        let utils_snapshot = utils.clone();
        for (u, &orig) in utils.iter_mut().zip(&utils_snapshot) {
            *u += excess * (cap - orig) / slack;
        }
    }
    utils
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uunifast_sums_to_total() {
        let mut rng = Rng::seed_from_u64(1);
        for &total in &[0.5, 1.0, 2.7] {
            for &n in &[1usize, 2, 5, 20] {
                let u = uunifast(&mut rng, n, total);
                assert_eq!(u.len(), n);
                let sum: f64 = u.iter().sum();
                assert!((sum - total).abs() < 1e-9, "sum {sum} != {total}");
                assert!(u.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn uunifast_discard_respects_cap() {
        let mut rng = Rng::seed_from_u64(2);
        let u = uunifast_discard(&mut rng, 10, 3.0, 0.5);
        let sum: f64 = u.iter().sum();
        assert!((sum - 3.0).abs() < 1e-9);
        assert!(u.iter().all(|&x| x <= 0.5 + 1e-9));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = WorkloadSpec::new(6, 1.2).seed(7);
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a, b);
        let c = WorkloadSpec::new(6, 1.2).seed(8).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_set_hits_target_utilization() {
        let ts = WorkloadSpec::new(12, 2.4).seed(3).generate().unwrap();
        assert_eq!(ts.len(), 12);
        assert!((ts.utilization() - 2.4).abs() < 1e-9);
        assert!(ts.hyper_period() > 0);
    }

    #[test]
    fn penalties_are_positive_under_all_models() {
        for model in [
            PenaltyModel::Uniform { lo: 0.1, hi: 1.0 },
            PenaltyModel::UtilizationProportional {
                scale: 2.0,
                jitter: 0.3,
            },
            PenaltyModel::InverseUtilization {
                scale: 2.0,
                jitter: 0.3,
            },
        ] {
            let ts = WorkloadSpec::new(8, 1.5)
                .penalty_model(model)
                .seed(11)
                .generate()
                .unwrap();
            assert!(ts
                .iter()
                .all(|t| t.penalty() >= 0.0 && t.penalty().is_finite()));
            assert!(ts.total_penalty() > 0.0);
        }
    }

    #[test]
    fn inverse_model_orders_penalties_against_utilization() {
        let ts = WorkloadSpec::new(16, 2.0)
            .penalty_model(PenaltyModel::InverseUtilization {
                scale: 1.0,
                jitter: 0.0,
            })
            .seed(5)
            .generate()
            .unwrap();
        let mut tasks: Vec<_> = ts.iter().collect();
        tasks.sort_by(|a, b| a.utilization().partial_cmp(&b.utilization()).unwrap());
        // With zero jitter, penalties must be non-increasing in utilization.
        for w in tasks.windows(2) {
            assert!(w[0].penalty() >= w[1].penalty() - 1e-9);
        }
    }

    #[test]
    fn frame_generation_matches_spec() {
        let f = WorkloadSpec::new(5, 0.9)
            .seed(4)
            .generate_frame(200)
            .unwrap();
        assert_eq!(f.len(), 5);
        assert!((f.required_speed() - 0.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot reach total utilization")]
    fn impossible_cap_panics() {
        let _ = WorkloadSpec::new(4, 2.0).max_task_utilization(0.4);
    }

    #[test]
    fn custom_period_set_is_used() {
        let ts = WorkloadSpec::new(10, 1.0)
            .periods(vec![8u64, 16])
            .seed(9)
            .generate()
            .unwrap();
        assert!(ts.iter().all(|t| t.period() == 8 || t.period() == 16));
        assert!(ts.hyper_period() <= 16);
    }
}
