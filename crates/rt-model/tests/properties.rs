//! Randomized property tests for the task model.
//!
//! Formerly expressed with `proptest`; rewritten on the vendored
//! [`rt_model::rng::Rng`] so the suite runs fully offline. Each property is
//! checked over a deterministic batch of randomized cases.

use rt_model::generator::{uunifast, uunifast_discard};
use rt_model::rng::Rng;
use rt_model::{feasibility, gcd, lcm, Task, TaskSet};

const CASES: u64 = 64;

/// Periods from a divisor-friendly set so hyper-periods stay ≤ 48 and
/// whole-hyper-period analyses (demand criterion) remain cheap.
fn random_task_set(rng: &mut Rng) -> TaskSet {
    const PERIODS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 48];
    let n = 1 + rng.gen_index(11);
    TaskSet::try_from_tasks((0..n).map(|i| {
        let c = rng.gen_f64(0.0, 5.0);
        let p = PERIODS[rng.gen_index(PERIODS.len())];
        let v = rng.gen_f64(0.0, 10.0);
        Task::new(i, c, p).unwrap().with_penalty(v)
    }))
    .unwrap()
}

#[test]
fn gcd_divides_both() {
    let mut rng = Rng::seed_from_u64(1);
    for _ in 0..CASES {
        let a = rng.gen_u64(1, 10_000);
        let b = rng.gen_u64(1, 10_000);
        let g = gcd(a, b);
        assert!(g > 0);
        assert_eq!(a % g, 0);
        assert_eq!(b % g, 0);
    }
}

#[test]
fn lcm_is_common_multiple() {
    let mut rng = Rng::seed_from_u64(2);
    for _ in 0..CASES {
        let a = rng.gen_u64(1, 1_000);
        let b = rng.gen_u64(1, 1_000);
        let l = lcm(a, b);
        assert_eq!(l % a, 0);
        assert_eq!(l % b, 0);
        assert_eq!(l * gcd(a, b), a * b);
    }
}

#[test]
fn hyper_period_divisible_by_every_period() {
    let mut rng = Rng::seed_from_u64(3);
    for _ in 0..CASES {
        let ts = random_task_set(&mut rng);
        let l = ts.hyper_period();
        for t in ts.iter() {
            assert_eq!(l % t.period(), 0);
        }
    }
}

#[test]
fn utilization_is_sum_of_parts() {
    let mut rng = Rng::seed_from_u64(4);
    for _ in 0..CASES {
        let ts = random_task_set(&mut rng);
        let direct: f64 = ts.iter().map(Task::utilization).sum();
        assert!((ts.utilization() - direct).abs() < 1e-9);
    }
}

#[test]
fn job_count_matches_ceiling_formula() {
    let mut rng = Rng::seed_from_u64(5);
    for _ in 0..CASES {
        let ts = random_task_set(&mut rng);
        let horizon = rng.gen_u64(1, 500);
        let count = ts.jobs_in(horizon).count() as u64;
        let expect: u64 = ts.iter().map(|t| horizon.div_ceil(t.period())).sum();
        assert_eq!(count, expect);
    }
}

#[test]
fn jobs_meet_their_window_invariants() {
    let mut rng = Rng::seed_from_u64(6);
    for _ in 0..CASES {
        let ts = random_task_set(&mut rng);
        for job in ts.jobs_in_hyper_period() {
            assert_eq!(
                job.deadline() - job.release(),
                ts.get(job.task()).unwrap().period()
            );
            assert!(job.release() < ts.hyper_period());
        }
    }
}

#[test]
fn uunifast_sums_and_is_non_negative() {
    let mut rng = Rng::seed_from_u64(7);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let n = 1 + rng.gen_index(39);
        let total = rng.gen_f64(0.0, 8.0);
        let mut stream = Rng::seed_from_u64(seed);
        let u = uunifast(&mut stream, n, total);
        assert_eq!(u.len(), n);
        assert!(u.iter().all(|&x| x >= 0.0));
        let sum: f64 = u.iter().sum();
        assert!((sum - total).abs() < 1e-8 * total.max(1.0));
    }
}

#[test]
fn uunifast_discard_caps_each_item() {
    let mut rng = Rng::seed_from_u64(8);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let n = 2 + rng.gen_index(18);
        let total = 0.8 * n as f64 * 0.5;
        let mut stream = Rng::seed_from_u64(seed);
        let u = uunifast_discard(&mut stream, n, total, 0.5);
        assert!(u.iter().all(|&x| x <= 0.5 + 1e-6));
        let sum: f64 = u.iter().sum();
        assert!((sum - total).abs() < 1e-6 * total.max(1.0));
    }
}

#[test]
fn demand_criterion_agrees_with_utilization_test() {
    let mut rng = Rng::seed_from_u64(9);
    for _ in 0..CASES {
        let ts = random_task_set(&mut rng);
        let speed = rng.gen_f64(0.05, 4.0);
        // Exact for implicit-deadline periodic sets; allow disagreement only
        // within the float tolerance band around U == s.
        let u = ts.utilization();
        if (u - speed).abs() > 1e-6 * u.max(1.0) {
            assert_eq!(
                feasibility::is_feasible_at_speed(&ts, speed),
                feasibility::is_feasible_by_demand(&ts, speed)
            );
        }
    }
}

#[test]
fn demand_bound_is_monotone() {
    let mut rng = Rng::seed_from_u64(10);
    for _ in 0..CASES {
        let ts = random_task_set(&mut rng);
        let a = rng.gen_u64(0, 300);
        let b = rng.gen_u64(0, 300);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(feasibility::demand_bound(&ts, lo) <= feasibility::demand_bound(&ts, hi) + 1e-9);
    }
}

#[test]
fn subset_preserves_membership() {
    let mut rng = Rng::seed_from_u64(11);
    for _ in 0..CASES {
        let ts = random_task_set(&mut rng);
        let ids: Vec<_> = ts.iter().map(Task::id).step_by(2).collect();
        let sub = ts.subset(&ids).unwrap();
        assert_eq!(sub.len(), ids.len());
        for id in ids {
            assert!(sub.get(id).is_some());
        }
    }
}
