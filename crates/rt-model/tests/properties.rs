//! Property-based tests for the task model.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt_model::generator::{uunifast, uunifast_discard};
use rt_model::{feasibility, gcd, lcm, Task, TaskSet};

fn arb_task_set() -> impl Strategy<Value = TaskSet> {
    // Periods from a divisor-friendly set so hyper-periods stay ≤ 48 and
    // whole-hyper-period analyses (demand criterion) remain cheap.
    let period = prop::sample::select(vec![1u64, 2, 3, 4, 6, 8, 12, 16, 24, 48]);
    prop::collection::vec((0.0f64..5.0, period, 0.0f64..10.0), 1..12).prop_map(|parts| {
        TaskSet::try_from_tasks(
            parts
                .iter()
                .enumerate()
                .map(|(i, &(c, p, v))| Task::new(i, c, p).unwrap().with_penalty(v)),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gcd_divides_both(a in 1u64..10_000, b in 1u64..10_000) {
        let g = gcd(a, b);
        prop_assert!(g > 0);
        prop_assert_eq!(a % g, 0);
        prop_assert_eq!(b % g, 0);
    }

    #[test]
    fn lcm_is_common_multiple(a in 1u64..1_000, b in 1u64..1_000) {
        let l = lcm(a, b);
        prop_assert_eq!(l % a, 0);
        prop_assert_eq!(l % b, 0);
        prop_assert_eq!(l * gcd(a, b), a * b);
    }

    #[test]
    fn hyper_period_divisible_by_every_period(ts in arb_task_set()) {
        let l = ts.hyper_period();
        for t in ts.iter() {
            prop_assert_eq!(l % t.period(), 0);
        }
    }

    #[test]
    fn utilization_is_sum_of_parts(ts in arb_task_set()) {
        let direct: f64 = ts.iter().map(Task::utilization).sum();
        prop_assert!((ts.utilization() - direct).abs() < 1e-9);
    }

    #[test]
    fn job_count_matches_ceiling_formula(ts in arb_task_set(), horizon in 1u64..500) {
        let count = ts.jobs_in(horizon).count() as u64;
        let expect: u64 = ts.iter().map(|t| horizon.div_ceil(t.period())).sum();
        prop_assert_eq!(count, expect);
    }

    #[test]
    fn jobs_meet_their_window_invariants(ts in arb_task_set()) {
        for job in ts.jobs_in_hyper_period() {
            prop_assert_eq!(job.deadline() - job.release(),
                            ts.get(job.task()).unwrap().period());
            prop_assert!(job.release() < ts.hyper_period());
        }
    }

    #[test]
    fn uunifast_sums_and_is_non_negative(seed in any::<u64>(), n in 1usize..40, total in 0.0f64..8.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = uunifast(&mut rng, n, total);
        prop_assert_eq!(u.len(), n);
        prop_assert!(u.iter().all(|&x| x >= 0.0));
        let sum: f64 = u.iter().sum();
        prop_assert!((sum - total).abs() < 1e-8 * total.max(1.0));
    }

    #[test]
    fn uunifast_discard_caps_each_item(seed in any::<u64>(), n in 2usize..20) {
        let total = 0.8 * n as f64 * 0.5;
        let mut rng = StdRng::seed_from_u64(seed);
        let u = uunifast_discard(&mut rng, n, total, 0.5);
        prop_assert!(u.iter().all(|&x| x <= 0.5 + 1e-6));
        let sum: f64 = u.iter().sum();
        prop_assert!((sum - total).abs() < 1e-6 * total.max(1.0));
    }

    #[test]
    fn demand_criterion_agrees_with_utilization_test(ts in arb_task_set(), speed in 0.05f64..4.0) {
        // Exact for implicit-deadline periodic sets; allow disagreement only
        // within the float tolerance band around U == s.
        let u = ts.utilization();
        if (u - speed).abs() > 1e-6 * u.max(1.0) {
            prop_assert_eq!(
                feasibility::is_feasible_at_speed(&ts, speed),
                feasibility::is_feasible_by_demand(&ts, speed)
            );
        }
    }

    #[test]
    fn demand_bound_is_monotone(ts in arb_task_set(), a in 0u64..300, b in 0u64..300) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(feasibility::demand_bound(&ts, lo) <= feasibility::demand_bound(&ts, hi) + 1e-9);
    }

    #[test]
    fn subset_preserves_membership(ts in arb_task_set()) {
        let ids: Vec<_> = ts.iter().map(Task::id).step_by(2).collect();
        let sub = ts.subset(&ids).unwrap();
        prop_assert_eq!(sub.len(), ids.len());
        for id in ids {
            prop_assert!(sub.get(id).is_some());
        }
    }
}
