use std::fmt;

/// A share of (steady-state) time spent executing at one speed.
///
/// Fractions are per tick of wall-clock time: a segment `(s, f)` means the
/// processor runs at speed `s` for a fraction `f` of every tick, delivering
/// `s·f` cycles per tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedSegment {
    /// Adopted speed (cycles per tick).
    pub speed: f64,
    /// Fraction of wall-clock time spent at this speed, in `[0, 1]`.
    pub fraction: f64,
}

impl SpeedSegment {
    /// Cycles delivered per tick by this segment: `speed · fraction`.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.speed * self.fraction
    }
}

impl fmt::Display for SpeedSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}@{:.4}", self.speed, self.fraction)
    }
}

/// A minimum-energy steady-state execution plan for a utilization demand.
///
/// Produced by [`Processor::plan`](crate::Processor::plan). The plan says at
/// which speed(s) the processor runs, which share of time it idles, and the
/// resulting energy rate (energy per tick). Multiplying the rate by an
/// interval length gives the energy of serving the demand over that
/// interval — in particular `energy_rate() · L` is the per-hyper-period
/// energy `E*(U)` used throughout the rejection algorithms.
///
/// # Examples
///
/// ```
/// use dvs_power::{PowerFunction, Processor, SpeedDomain};
///
/// # fn main() -> Result<(), dvs_power::PowerError> {
/// let cpu = Processor::new(
///     PowerFunction::polynomial(0.0, 1.0, 3.0)?,
///     SpeedDomain::continuous(0.0, 1.0)?,
/// );
/// let plan = cpu.plan(0.5)?;
/// // Pure cubic power: run exactly at the demand, fully busy.
/// assert!((plan.max_speed() - 0.5).abs() < 1e-12);
/// assert!((plan.busy_fraction() - 1.0).abs() < 1e-12);
/// assert!((plan.energy_rate() - 0.125).abs() < 1e-12);
/// assert!((plan.energy_over(100.0) - 12.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    segments: Vec<SpeedSegment>,
    energy_rate: f64,
    utilization: f64,
}

impl ExecutionPlan {
    /// Builds a plan from segments and the idle power applied to the
    /// remaining time share.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if fractions are out of `[0, 1]` or sum to
    /// more than 1 beyond tolerance — plans are produced by this crate's
    /// planner, so violations are internal bugs.
    #[must_use]
    pub(crate) fn new(segments: Vec<SpeedSegment>, energy_rate: f64, utilization: f64) -> Self {
        debug_assert!(segments
            .iter()
            .all(|s| (0.0..=1.0 + 1e-9).contains(&s.fraction)));
        debug_assert!(segments.iter().map(|s| s.fraction).sum::<f64>() <= 1.0 + 1e-9);
        ExecutionPlan {
            segments,
            energy_rate,
            utilization,
        }
    }

    /// The execution segments (empty for a zero demand).
    #[must_use]
    pub fn segments(&self) -> &[SpeedSegment] {
        &self.segments
    }

    /// Energy per tick of the plan, including idle consumption.
    #[must_use]
    pub fn energy_rate(&self) -> f64 {
        self.energy_rate
    }

    /// Energy over an interval of `duration` ticks: `energy_rate · duration`.
    #[must_use]
    pub fn energy_over(&self, duration: f64) -> f64 {
        self.energy_rate * duration
    }

    /// The utilization demand this plan serves (cycles per tick).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Share of time spent executing (not idling).
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        self.segments.iter().map(|s| s.fraction).sum()
    }

    /// Share of time spent idle.
    #[must_use]
    pub fn idle_fraction(&self) -> f64 {
        (1.0 - self.busy_fraction()).max(0.0)
    }

    /// The highest speed used by any segment (0 for an empty plan).
    #[must_use]
    pub fn max_speed(&self) -> f64 {
        self.segments.iter().map(|s| s.speed).fold(0.0, f64::max)
    }

    /// Total cycles delivered per tick: must equal the utilization demand.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.segments.iter().map(SpeedSegment::throughput).sum()
    }
}

impl fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan[u={:.4}, e={:.6}/tick:",
            self.utilization, self.energy_rate
        )?;
        for s in &self.segments {
            write!(f, " {s}")?;
        }
        write!(f, " idle={:.4}]", self.idle_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_fractions() {
        let plan = ExecutionPlan::new(
            vec![
                SpeedSegment {
                    speed: 0.4,
                    fraction: 0.5,
                },
                SpeedSegment {
                    speed: 0.8,
                    fraction: 0.25,
                },
            ],
            0.3,
            0.4,
        );
        assert!((plan.throughput() - 0.4).abs() < 1e-12);
        assert!((plan.busy_fraction() - 0.75).abs() < 1e-12);
        assert!((plan.idle_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(plan.max_speed(), 0.8);
    }

    #[test]
    fn empty_plan_is_pure_idle() {
        let plan = ExecutionPlan::new(vec![], 0.08, 0.0);
        assert_eq!(plan.busy_fraction(), 0.0);
        assert_eq!(plan.idle_fraction(), 1.0);
        assert_eq!(plan.max_speed(), 0.0);
        assert!((plan.energy_over(10.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_segments() {
        let plan = ExecutionPlan::new(
            vec![SpeedSegment {
                speed: 0.5,
                fraction: 1.0,
            }],
            0.125,
            0.5,
        );
        let s = plan.to_string();
        assert!(s.contains("0.5000@1.0000"));
    }
}
