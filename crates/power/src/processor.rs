use std::fmt;
use std::sync::OnceLock;

use crate::function;
use crate::plan::{ExecutionPlan, SpeedSegment};
use crate::{DormantMode, PowerError, PowerFunction, SpeedDomain};

/// Relative tolerance for feasibility of a utilization demand against
/// `s_max` (mirrors `rt_model::feasibility::FEASIBILITY_TOLERANCE`).
const DEMAND_TOLERANCE: f64 = 1e-9;

/// How the processor behaves while idle.
///
/// * [`IdleMode::Sleep`] — **dormant-enable**: the processor can enter a
///   zero-power dormant mode, paying the [`DormantMode`] overheads per
///   sleep/wake round-trip. Steady-state planning treats idle power as zero
///   (the overheads are charged per idle interval by the simulator and by
///   the procrastination analysis); this is what makes the **critical
///   speed** bind — running below `s*` is wasteful because idling is free.
/// * [`IdleMode::AlwaysOn`] — **dormant-disable**: the speed-independent
///   power `P(0)` burns during idle time too, so the only lever is slowing
///   down, and the optimal speed is the demand itself (clamped to the
///   domain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IdleMode {
    /// Dormant-enable processor with the given switch overheads.
    Sleep(DormantMode),
    /// Dormant-disable processor: idle burns `P(0)`.
    AlwaysOn,
}

impl Default for IdleMode {
    /// Dormant-enable with negligible overheads.
    fn default() -> Self {
        IdleMode::Sleep(DormantMode::free())
    }
}

/// A DVS processor: a power function, a speed domain, and an idle mode.
///
/// The central operation is [`Processor::plan`], the minimum-energy
/// execution oracle `u ↦ E*(u)` used by every rejection algorithm: given a
/// utilization demand `u` (cycles per tick), it returns the optimal
/// steady-state speed schedule and its energy rate.
///
/// # Examples
///
/// ```
/// use dvs_power::{IdleMode, PowerFunction, Processor, SpeedDomain};
///
/// # fn main() -> Result<(), dvs_power::PowerError> {
/// let cpu = Processor::new(
///     PowerFunction::polynomial(0.08, 1.52, 3.0)?,
///     SpeedDomain::discrete(vec![0.15, 0.4, 0.6, 0.8, 1.0])?,
/// );
/// let plan = cpu.plan(0.5)?;                    // between levels 0.4 and 0.6
/// assert!(plan.max_speed() <= 1.0);
/// assert!((plan.throughput() - 0.5).abs() < 1e-9);
/// assert!(cpu.plan(1.5).is_err());              // beyond s_max: infeasible
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Processor {
    power: PowerFunction,
    domain: SpeedDomain,
    idle: IdleMode,
    /// Lazily cached [`Processor::critical_speed`]. For table/CMOS power
    /// functions the uncached path runs a 200-iteration golden-section
    /// search, and `energy_rate` — the admission hot path — needs `s*` on
    /// every call. The cell is filled once with exactly the value the
    /// uncached path computes and replayed thereafter, so results are
    /// bit-identical and thread-safe (`OnceLock`).
    crit_cache: OnceLock<f64>,
}

/// Equality ignores the lazily filled critical-speed cache — two processors
/// are equal iff their power functions, domains, and idle modes are.
impl PartialEq for Processor {
    fn eq(&self, other: &Self) -> bool {
        self.power == other.power && self.domain == other.domain && self.idle == other.idle
    }
}

impl Processor {
    /// Creates a dormant-enable processor with negligible switch overheads.
    #[must_use]
    pub fn new(power: PowerFunction, domain: SpeedDomain) -> Self {
        Processor {
            power,
            domain,
            idle: IdleMode::Sleep(DormantMode::free()),
            crit_cache: OnceLock::new(),
        }
    }

    /// Returns a copy with the idle mode replaced.
    #[must_use]
    pub fn with_idle_mode(mut self, idle: IdleMode) -> Self {
        self.idle = idle;
        // The critical speed depends on the idle mode; drop any cached value.
        self.crit_cache = OnceLock::new();
        self
    }

    /// The power function.
    #[must_use]
    pub fn power(&self) -> &PowerFunction {
        &self.power
    }

    /// The speed domain.
    #[must_use]
    pub fn domain(&self) -> &SpeedDomain {
        &self.domain
    }

    /// The idle mode.
    #[must_use]
    pub fn idle_mode(&self) -> IdleMode {
        self.idle
    }

    /// Maximum sustainable speed `s_max`.
    #[must_use]
    pub fn max_speed(&self) -> f64 {
        self.domain.max_speed()
    }

    /// Power burnt while idle (0 for dormant-enable in steady state,
    /// `P(0)` for dormant-disable).
    #[must_use]
    pub fn idle_power(&self) -> f64 {
        match self.idle {
            IdleMode::Sleep(_) => 0.0,
            IdleMode::AlwaysOn => self.power.idle_power(),
        }
    }

    /// The critical speed `s*` relevant to this processor's idle mode:
    /// `argmin P(s)/s` for dormant-enable processors, and the domain minimum
    /// for dormant-disable processors (where slowing down always helps).
    #[must_use]
    pub fn critical_speed(&self) -> f64 {
        *self.crit_cache.get_or_init(|| match self.idle {
            IdleMode::Sleep(_) => self
                .power
                .critical_speed(self.domain.max_speed())
                .max(self.domain.min_speed()),
            IdleMode::AlwaysOn => self.domain.min_speed(),
        })
    }

    /// Whether a utilization demand is feasible (`u ≤ s_max`).
    #[must_use]
    pub fn is_feasible(&self, utilization: f64) -> bool {
        utilization <= self.max_speed() * (1.0 + DEMAND_TOLERANCE)
    }

    /// Minimum-energy steady-state execution plan for demand `u`
    /// (cycles per tick).
    ///
    /// For ideal (continuous) domains the optimal speed is
    /// `clamp(u, s_lo, s_max)` with `s_lo` the [critical
    /// speed](Processor::critical_speed); for non-ideal (discrete) domains
    /// the planner evaluates every single-level run-and-idle strategy and
    /// every two-level split that spans the demand, returning the cheapest —
    /// which is optimal by convexity of `P` (Ishihara–Yasuura).
    ///
    /// # Errors
    ///
    /// * [`PowerError::InvalidDemand`] if `u` is negative or not finite.
    /// * [`PowerError::InfeasibleDemand`] if `u > s_max`.
    pub fn plan(&self, utilization: f64) -> Result<ExecutionPlan, PowerError> {
        if !utilization.is_finite() || utilization < 0.0 {
            return Err(PowerError::InvalidDemand { utilization });
        }
        if !self.is_feasible(utilization) {
            return Err(PowerError::InfeasibleDemand {
                utilization,
                max_speed: self.max_speed(),
            });
        }
        let u = utilization.min(self.max_speed());
        if u == 0.0 {
            return Ok(ExecutionPlan::new(Vec::new(), self.idle_power(), 0.0));
        }
        match &self.domain {
            SpeedDomain::Continuous { .. } => Ok(self.plan_continuous(u)),
            SpeedDomain::Discrete { levels } => Ok(self.plan_discrete(u, levels)),
        }
    }

    /// The energy rate (energy per tick) of the optimal plan, computed
    /// without materialising the plan — this is the hot path of the
    /// rejection algorithms (exhaustive search evaluates it millions of
    /// times).
    ///
    /// # Errors
    ///
    /// Same as [`Processor::plan`].
    pub fn energy_rate(&self, utilization: f64) -> Result<f64, PowerError> {
        if !utilization.is_finite() || utilization < 0.0 {
            return Err(PowerError::InvalidDemand { utilization });
        }
        if !self.is_feasible(utilization) {
            return Err(PowerError::InfeasibleDemand {
                utilization,
                max_speed: self.max_speed(),
            });
        }
        let u = utilization.min(self.max_speed());
        if u == 0.0 {
            return Ok(self.idle_power());
        }
        match &self.domain {
            SpeedDomain::Continuous { .. } => {
                let lo = self.critical_speed();
                let s = u.max(lo).min(self.max_speed()).max(f64::MIN_POSITIVE);
                Ok(self.energy_rate_at_speed(u, s))
            }
            SpeedDomain::Discrete { levels } => {
                let mut best = f64::INFINITY;
                for &s in levels.iter().filter(|&&s| s >= u - DEMAND_TOLERANCE) {
                    best = best.min(self.energy_rate_at_speed(u, s));
                }
                for (i, &s1) in levels.iter().enumerate() {
                    if s1 > u {
                        continue;
                    }
                    for &s2 in &levels[i + 1..] {
                        if s2 < u {
                            continue;
                        }
                        let f2 = (u - s1) / (s2 - s1);
                        let rate = (1.0 - f2) * self.power.power(s1) + f2 * self.power.power(s2);
                        best = best.min(rate);
                    }
                }
                Ok(best)
            }
        }
    }

    /// Energy rate of running a demand `u` at one fixed speed `s ≥ u` and
    /// idling the rest of the time. Exposed for analysis and testing.
    #[must_use]
    pub fn energy_rate_at_speed(&self, u: f64, s: f64) -> f64 {
        debug_assert!(
            s > 0.0 && u <= s * (1.0 + 1e-6) + DEMAND_TOLERANCE,
            "demand {u} cannot be served at speed {s}"
        );
        let busy = (u / s).min(1.0);
        busy * self.power.power(s) + (1.0 - busy) * self.idle_power()
    }

    /// Serializes this processor as a single-line, space-separated spec
    /// (floats as IEEE-754 bit hex), decodable by
    /// [`Processor::decode_spec`] into a bit-identical processor — same
    /// power values, same plans, same critical-speed bits. This is the
    /// wire format a sharded deployment uses to move a power domain
    /// between engines without losing exactness.
    #[must_use]
    pub fn encode_spec(&self) -> String {
        let mut out: Vec<String> = vec!["pf".to_string()];
        self.power.encode_spec_tokens(&mut out);
        match &self.domain {
            SpeedDomain::Continuous { min, max } => {
                out.push("dom".to_string());
                out.push("cont".to_string());
                out.push(function::bits_token(*min));
                out.push(function::bits_token(*max));
            }
            SpeedDomain::Discrete { levels } => {
                out.push("dom".to_string());
                out.push("disc".to_string());
                out.push(levels.len().to_string());
                for &s in levels {
                    out.push(function::bits_token(s));
                }
            }
        }
        match self.idle {
            IdleMode::Sleep(dm) => {
                out.push("idle".to_string());
                out.push("sleep".to_string());
                out.push(function::bits_token(dm.switch_time()));
                out.push(function::bits_token(dm.switch_energy()));
            }
            IdleMode::AlwaysOn => {
                out.push("idle".to_string());
                out.push("on".to_string());
            }
        }
        out.join(" ")
    }

    /// Decodes a spec produced by [`Processor::encode_spec`]. Every
    /// component is rebuilt through its public constructor, so the decoded
    /// processor re-validates the model *and* reproduces the exact bits of
    /// the original (the polynomial critical-speed constant is recomputed
    /// from the identical coefficient bits).
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidSpec`] for malformed specs; constructor errors
    /// for specs whose values fail model validation.
    pub fn decode_spec(spec: &str) -> Result<Self, PowerError> {
        let mut tokens = spec.split_ascii_whitespace();
        let expect = |tokens: &mut std::str::SplitAsciiWhitespace<'_>,
                      tag: &str|
         -> Result<(), PowerError> {
            match function::next_token(tokens, tag)? {
                t if t == tag => Ok(()),
                other => Err(function::spec_err(&format!(
                    "expected {tag:?}, found {other:?}"
                ))),
            }
        };
        expect(&mut tokens, "pf")?;
        let power = PowerFunction::decode_spec_tokens(&mut tokens)?;
        expect(&mut tokens, "dom")?;
        let domain = match function::next_token(&mut tokens, "domain tag")? {
            "cont" => {
                let min = function::bits_value(&mut tokens, "domain min bits")?;
                let max = function::bits_value(&mut tokens, "domain max bits")?;
                SpeedDomain::continuous(min, max)?
            }
            "disc" => {
                let n: usize = function::next_token(&mut tokens, "level count")?
                    .parse()
                    .map_err(|_| function::spec_err("unparseable level count"))?;
                if n > 4096 {
                    return Err(function::spec_err("level count out of range"));
                }
                let mut levels = Vec::with_capacity(n);
                for _ in 0..n {
                    levels.push(function::bits_value(&mut tokens, "level bits")?);
                }
                SpeedDomain::discrete(levels)?
            }
            other => return Err(function::spec_err(&format!("unknown domain tag {other:?}"))),
        };
        expect(&mut tokens, "idle")?;
        let idle = match function::next_token(&mut tokens, "idle tag")? {
            "sleep" => {
                let t_sw = function::bits_value(&mut tokens, "switch time bits")?;
                let e_sw = function::bits_value(&mut tokens, "switch energy bits")?;
                IdleMode::Sleep(DormantMode::new(t_sw, e_sw)?)
            }
            "on" => IdleMode::AlwaysOn,
            other => return Err(function::spec_err(&format!("unknown idle tag {other:?}"))),
        };
        if let Some(extra) = tokens.next() {
            return Err(function::spec_err(&format!(
                "trailing token {extra:?} after spec"
            )));
        }
        Ok(Processor::new(power, domain).with_idle_mode(idle))
    }

    fn plan_continuous(&self, u: f64) -> ExecutionPlan {
        let lo = self.critical_speed();
        let s = u.max(lo).min(self.max_speed()).max(f64::MIN_POSITIVE);
        let busy = (u / s).min(1.0);
        let rate = self.energy_rate_at_speed(u, s);
        ExecutionPlan::new(
            vec![SpeedSegment {
                speed: s,
                fraction: busy,
            }],
            rate,
            u,
        )
    }

    fn plan_discrete(&self, u: f64, levels: &[f64]) -> ExecutionPlan {
        let mut best: Option<(f64, Vec<SpeedSegment>)> = None;
        let mut consider = |rate: f64, segs: Vec<SpeedSegment>| {
            if best.as_ref().is_none_or(|(r, _)| rate < *r) {
                best = Some((rate, segs));
            }
        };
        // Strategy A: one level ≥ u, run-and-idle.
        for &s in levels.iter().filter(|&&s| s >= u - DEMAND_TOLERANCE) {
            let busy = (u / s).min(1.0);
            consider(
                self.energy_rate_at_speed(u, s),
                vec![SpeedSegment {
                    speed: s,
                    fraction: busy,
                }],
            );
        }
        // Strategy B: a two-level split spanning u, fully busy.
        for (i, &s1) in levels.iter().enumerate() {
            if s1 > u {
                continue;
            }
            for &s2 in &levels[i + 1..] {
                if s2 < u {
                    continue;
                }
                let f2 = (u - s1) / (s2 - s1);
                let f1 = 1.0 - f2;
                let rate = f1 * self.power.power(s1) + f2 * self.power.power(s2);
                consider(
                    rate,
                    vec![
                        SpeedSegment {
                            speed: s1,
                            fraction: f1,
                        },
                        SpeedSegment {
                            speed: s2,
                            fraction: f2,
                        },
                    ],
                );
            }
        }
        let (rate, segs) = best.expect("feasible demand has at least one strategy");
        ExecutionPlan::new(segs, rate, u)
    }
}

impl fmt::Display for Processor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let idle = match self.idle {
            IdleMode::Sleep(dm) => format!("sleep {dm}"),
            IdleMode::AlwaysOn => "always-on".to_string(),
        };
        write!(f, "processor[{}; s ∈ {}; {idle}]", self.power, self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_cubic() -> Processor {
        Processor::new(
            PowerFunction::polynomial(0.0, 1.0, 3.0).unwrap(),
            SpeedDomain::continuous(0.0, 1.0).unwrap(),
        )
    }

    fn xscale() -> Processor {
        Processor::new(
            PowerFunction::polynomial(0.08, 1.52, 3.0).unwrap(),
            SpeedDomain::continuous(0.0, 1.0).unwrap(),
        )
    }

    #[test]
    fn pure_cubic_runs_at_demand() {
        let cpu = ideal_cubic();
        for &u in &[0.1, 0.5, 0.9, 1.0] {
            let plan = cpu.plan(u).unwrap();
            assert!((plan.max_speed() - u).abs() < 1e-12);
            assert!((plan.energy_rate() - u * u * u).abs() < 1e-12);
            assert!((plan.throughput() - u).abs() < 1e-12);
        }
    }

    #[test]
    fn leaky_processor_clamps_to_critical_speed() {
        let cpu = xscale();
        let s_crit = cpu.critical_speed();
        let plan = cpu.plan(s_crit / 2.0).unwrap();
        assert!((plan.max_speed() - s_crit).abs() < 1e-9);
        assert!(plan.idle_fraction() > 0.0);
        // Above the critical speed the demand itself is optimal.
        let plan = cpu.plan(0.9).unwrap();
        assert!((plan.max_speed() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn always_on_runs_as_slow_as_possible() {
        let cpu = xscale().with_idle_mode(IdleMode::AlwaysOn);
        let plan = cpu.plan(0.1).unwrap();
        assert!((plan.max_speed() - 0.1).abs() < 1e-12);
        assert!((plan.busy_fraction() - 1.0).abs() < 1e-12);
        // Energy rate includes the unavoidable leakage.
        assert!(plan.energy_rate() > 0.08);
    }

    #[test]
    fn infeasible_demand_rejected() {
        let cpu = ideal_cubic();
        assert!(matches!(
            cpu.plan(1.5),
            Err(PowerError::InfeasibleDemand { .. })
        ));
        assert!(matches!(
            cpu.plan(-0.1),
            Err(PowerError::InvalidDemand { .. })
        ));
        assert!(matches!(
            cpu.plan(f64::NAN),
            Err(PowerError::InvalidDemand { .. })
        ));
    }

    #[test]
    fn zero_demand_plans_pure_idle() {
        let sleepy = xscale();
        assert_eq!(sleepy.plan(0.0).unwrap().energy_rate(), 0.0);
        let on = xscale().with_idle_mode(IdleMode::AlwaysOn);
        assert!((on.plan(0.0).unwrap().energy_rate() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn discrete_split_delivers_demand() {
        let cpu = Processor::new(
            PowerFunction::polynomial(0.0, 1.0, 3.0).unwrap(),
            SpeedDomain::discrete(vec![0.4, 0.8]).unwrap(),
        );
        let plan = cpu.plan(0.6).unwrap();
        assert!((plan.throughput() - 0.6).abs() < 1e-12);
        assert_eq!(plan.segments().len(), 2);
        // Split beats running everything at 0.8 with idle:
        let single = cpu.energy_rate_at_speed(0.6, 0.8);
        assert!(plan.energy_rate() < single);
    }

    #[test]
    fn discrete_exact_level_uses_single_speed() {
        let cpu = Processor::new(
            PowerFunction::polynomial(0.0, 1.0, 3.0).unwrap(),
            SpeedDomain::discrete(vec![0.4, 0.8]).unwrap(),
        );
        let plan = cpu.plan(0.8).unwrap();
        assert!((plan.energy_rate() - 0.8f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn discrete_with_leakage_prefers_sleeping_at_low_demand() {
        // Levels far below s* are never worth using for a sleeping CPU.
        let cpu = Processor::new(
            PowerFunction::polynomial(0.08, 1.52, 3.0).unwrap(),
            SpeedDomain::discrete(vec![0.05, 0.4, 1.0]).unwrap(),
        );
        let plan = cpu.plan(0.02).unwrap();
        // Running at 0.05 costs P(0.05)/0.05 ≈ 1.6 per cycle; at 0.4 it is
        // ~0.44 per cycle. The planner must pick the higher level and idle.
        assert!(plan.max_speed() >= 0.4 - 1e-12);
    }

    #[test]
    fn discrete_matches_continuous_envelope() {
        // A dense level grid must approach the continuous optimum.
        let levels: Vec<f64> = (1..=100).map(|k| k as f64 / 100.0).collect();
        let cont = xscale();
        let disc = Processor::new(
            PowerFunction::polynomial(0.08, 1.52, 3.0).unwrap(),
            SpeedDomain::discrete(levels).unwrap(),
        );
        for &u in &[0.1, 0.3, 0.55, 0.92] {
            let e_cont = cont.energy_rate(u).unwrap();
            let e_disc = disc.energy_rate(u).unwrap();
            assert!(e_disc >= e_cont - 1e-9, "discrete cannot beat continuous");
            assert!(
                e_disc <= e_cont * 1.01,
                "1% grid should be near-optimal at u={u}"
            );
        }
    }

    #[test]
    fn energy_rate_monotone_in_utilization() {
        for cpu in [
            ideal_cubic(),
            xscale(),
            xscale().with_idle_mode(IdleMode::AlwaysOn),
        ] {
            let mut last = 0.0;
            for k in 0..=100 {
                let u = k as f64 / 100.0;
                let e = cpu.energy_rate(u).unwrap();
                assert!(e + 1e-12 >= last, "not monotone at u={u}");
                last = e;
            }
        }
    }

    #[test]
    fn min_speed_floor_respected() {
        let cpu = Processor::new(
            PowerFunction::polynomial(0.0, 1.0, 3.0).unwrap(),
            SpeedDomain::continuous(0.25, 1.0).unwrap(),
        );
        let plan = cpu.plan(0.1).unwrap();
        assert!((plan.max_speed() - 0.25).abs() < 1e-12);
        assert!(plan.idle_fraction() > 0.0);
    }

    #[test]
    fn display_mentions_domain() {
        let s = ideal_cubic().to_string();
        assert!(s.contains("[0, 1]"));
    }

    #[test]
    fn cached_critical_speed_replays_uncached_bits() {
        // Cached value must be exactly what the uncached expression yields,
        // for every power-function family and both idle modes.
        let table = PowerFunction::table(&[
            (0.15, 0.08),
            (0.4, 0.17),
            (0.6, 0.4),
            (0.8, 0.9),
            (1.0, 1.6),
        ])
        .unwrap();
        let cmos = PowerFunction::cmos(1.0, 0.4, 1.0, 0.05).unwrap();
        let poly = PowerFunction::polynomial(0.08, 1.52, 3.0).unwrap();
        for pf in [table, cmos, poly] {
            let cpu = Processor::new(pf, SpeedDomain::continuous(0.1, 1.0).unwrap());
            let naive = pf.critical_speed(1.0).max(0.1);
            assert_eq!(cpu.critical_speed().to_bits(), naive.to_bits());
            // Stable across repeated calls and clones.
            assert_eq!(cpu.critical_speed().to_bits(), naive.to_bits());
            assert_eq!(cpu.clone().critical_speed().to_bits(), naive.to_bits());
            // Changing the idle mode invalidates the cache.
            let on = cpu.with_idle_mode(IdleMode::AlwaysOn);
            assert_eq!(on.critical_speed(), 0.1);
        }
    }

    #[test]
    fn equality_ignores_critical_speed_cache() {
        let a = xscale();
        let _ = a.critical_speed(); // warm one side only
        assert_eq!(a, xscale());
    }

    fn assert_spec_round_trip(cpu: &Processor) {
        let spec = cpu.encode_spec();
        let back = Processor::decode_spec(&spec).expect("spec must decode");
        assert_eq!(&back, cpu, "round-trip must preserve the model: {spec}");
        assert_eq!(
            back.critical_speed().to_bits(),
            cpu.critical_speed().to_bits(),
            "critical speed must survive bit-exactly"
        );
        for &u in &[0.0, 0.1, 0.37, 0.8, 1.0] {
            if !cpu.is_feasible(u) {
                continue;
            }
            assert_eq!(
                back.energy_rate(u).unwrap().to_bits(),
                cpu.energy_rate(u).unwrap().to_bits(),
                "energy rate at u={u} must survive bit-exactly"
            );
        }
        // Encoding is canonical: a decoded processor re-encodes identically.
        assert_eq!(back.encode_spec(), spec);
    }

    #[test]
    fn spec_round_trips_every_family() {
        let table = PowerFunction::table(&[
            (0.15, 0.08),
            (0.4, 0.17),
            (0.6, 0.4),
            (0.8, 0.9),
            (1.0, 1.6),
        ])
        .unwrap();
        let cmos = PowerFunction::cmos(1.0, 0.4, 1.0, 0.05).unwrap();
        let cpus = [
            ideal_cubic(),
            xscale(),
            xscale().with_idle_mode(IdleMode::AlwaysOn),
            xscale().with_idle_mode(IdleMode::Sleep(DormantMode::new(0.5, 0.2).unwrap())),
            Processor::new(
                table,
                SpeedDomain::discrete(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap(),
            ),
            Processor::new(cmos, SpeedDomain::continuous(0.1, 1.0).unwrap()),
        ];
        for cpu in &cpus {
            assert_spec_round_trip(cpu);
        }
    }

    #[test]
    fn spec_round_trips_awkward_float_bits() {
        // Values whose shortest decimal printing loses bits — the hex
        // encoding must not.
        let cpu = Processor::new(
            PowerFunction::polynomial(0.1 + 0.2, 1.0 / 3.0, 2.0 + 1e-12).unwrap(),
            SpeedDomain::continuous(1e-300, 0.3 + 0.3 + 0.3).unwrap(),
        );
        assert_spec_round_trip(&cpu);
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        let spec = ideal_cubic().encode_spec();
        let truncated = spec.rsplit_once(' ').unwrap().0;
        for bad in [
            "",
            "pf",
            "pf nope",
            "pf poly zz 0 0", // non-hex bits
            truncated,        // final token missing
            &format!("{spec} extra"),
        ] {
            let err = Processor::decode_spec(bad).unwrap_err();
            assert!(
                matches!(err, PowerError::InvalidSpec { .. }),
                "{bad:?} must yield InvalidSpec, got {err:?}"
            );
        }
        // Structurally valid but semantically invalid specs surface the
        // constructor's own error, not InvalidSpec.
        let bad_alpha = format!(
            "pf poly {} {} {} dom cont {} {} idle on",
            function::bits_token(0.1),
            function::bits_token(1.0),
            function::bits_token(0.5), // α ≤ 1
            function::bits_token(0.0),
            function::bits_token(1.0),
        );
        assert!(matches!(
            Processor::decode_spec(&bad_alpha).unwrap_err(),
            PowerError::InvalidCoefficient { .. }
        ));
    }
}
