use std::fmt;

use crate::PowerError;

/// Number of iterations of golden-section search used by the numeric
/// critical-speed fallback; gives ~1e-12 relative bracketing on `[0, s]`.
const GOLDEN_ITERS: usize = 200;

/// A convex, increasing processor power function `P(s)`.
///
/// Two families are provided:
///
/// * [`PowerFunction::polynomial`] — `P(s) = β₁ + β₂·s^α` with `β₁ ≥ 0`,
///   `β₂ > 0`, `α > 1`. This covers the evaluation models of the paper's
///   research line (`s³`, `ρᵢ·s^αᵢ`, and the normalised Intel XScale
///   `0.08 + 1.52·s³`).
/// * [`PowerFunction::cmos`] — derived from CMOS first principles,
///   `P_switch(s) = C_ef·V_dd²·s` with `s = κ(V_dd − V_t)²/V_dd`; the
///   resulting `P(s)` is evaluated by inverting the speed/voltage relation.
///
/// The *energy per cycle* at speed `s` is `P(s)/s`; its minimiser is the
/// **critical speed** used by leakage-aware scheduling.
///
/// # Examples
///
/// ```
/// use dvs_power::PowerFunction;
///
/// # fn main() -> Result<(), dvs_power::PowerError> {
/// let p = PowerFunction::polynomial(0.0, 1.0, 3.0)?;   // P(s) = s³
/// assert!((p.power(0.5) - 0.125).abs() < 1e-12);
/// assert!((p.energy_per_cycle(0.5) - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFunction {
    kind: Kind,
}

/// Maximum number of points a measured table may hold (keeps the type
/// `Copy`-friendly via a fixed-size array).
const TABLE_CAPACITY: usize = 16;

// The table variant dominates the size on purpose: a fixed-size inline
// array keeps `PowerFunction` `Copy`, which the planner relies on.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    /// `β₁ + β₂ s^α`, with the uncapped critical speed precomputed at
    /// construction (`crit_raw`): the closed form costs a `powf` tower,
    /// and the admission hot path asks for it on every pricing call. The
    /// stored value holds the *exact bits* the closed-form expression
    /// produces, so capping it at call time is bit-identical to the old
    /// compute-then-cap path.
    Polynomial {
        beta1: f64,
        beta2: f64,
        alpha: f64,
        crit_raw: f64,
    },
    /// CMOS model: speed `s(V) = κ (V − V_t)² / V`, power
    /// `P(V) = C_ef V² s(V) + P_ind`. Stored with the voltage bounds implied
    /// by `s ∈ [0, s(V_max)]`.
    Cmos {
        cef: f64,
        vt: f64,
        kappa: f64,
        pind: f64,
    },
    /// A measured `(speed, power)` table, linearly interpolated. Points are
    /// sorted by speed; `len` of the fixed-size buffer are valid.
    Table {
        points: [(f64, f64); TABLE_CAPACITY],
        len: usize,
    },
}

impl Kind {
    /// Builds the polynomial variant, precomputing the uncapped critical
    /// speed with the same expression the on-demand path used, so replaying
    /// the stored value is bit-identical.
    fn polynomial(beta1: f64, beta2: f64, alpha: f64) -> Self {
        let crit_raw = if beta1 == 0.0 {
            // Pure dynamic power: P(s)/s = β₂ s^(α−1) is increasing,
            // so the slowest speed is best; the infimum is 0.
            0.0
        } else {
            (beta1 / ((alpha - 1.0) * beta2)).powf(1.0 / alpha)
        };
        Kind::Polynomial {
            beta1,
            beta2,
            alpha,
            crit_raw,
        }
    }
}

impl PowerFunction {
    /// Creates the polynomial model `P(s) = β₁ + β₂·s^α`.
    ///
    /// `β₁` is the speed-independent part `P_ind` (leakage); `β₂·s^α` is the
    /// speed-dependent part `P_d(s)`.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidCoefficient`] unless `β₁ ≥ 0`, `β₂ > 0`, and
    /// `α > 1` (convexity of both `P_d` and `P_d(s)/s` requires `α > 1`;
    /// the literature uses `α ∈ [2, 3]`).
    pub fn polynomial(beta1: f64, beta2: f64, alpha: f64) -> Result<Self, PowerError> {
        if !beta1.is_finite() || beta1 < 0.0 {
            return Err(PowerError::InvalidCoefficient {
                name: "β₁",
                value: beta1,
            });
        }
        if !beta2.is_finite() || beta2 <= 0.0 {
            return Err(PowerError::InvalidCoefficient {
                name: "β₂",
                value: beta2,
            });
        }
        if !alpha.is_finite() || alpha <= 1.0 {
            return Err(PowerError::InvalidCoefficient {
                name: "α",
                value: alpha,
            });
        }
        Ok(PowerFunction {
            kind: Kind::polynomial(beta1, beta2, alpha),
        })
    }

    /// Creates the CMOS model with effective switched capacitance `cef`,
    /// threshold voltage `vt`, hardware constant `kappa`, and
    /// speed-independent power `pind`.
    ///
    /// Speed and supply voltage are related by `s = κ·(V_dd − V_t)²/V_dd`;
    /// the dynamic power at that operating point is `C_ef·V_dd²·s`.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidCoefficient`] unless `cef > 0`, `vt ≥ 0`,
    /// `kappa > 0`, `pind ≥ 0`.
    pub fn cmos(cef: f64, vt: f64, kappa: f64, pind: f64) -> Result<Self, PowerError> {
        if !cef.is_finite() || cef <= 0.0 {
            return Err(PowerError::InvalidCoefficient {
                name: "C_ef",
                value: cef,
            });
        }
        if !vt.is_finite() || vt < 0.0 {
            return Err(PowerError::InvalidCoefficient {
                name: "V_t",
                value: vt,
            });
        }
        if !kappa.is_finite() || kappa <= 0.0 {
            return Err(PowerError::InvalidCoefficient {
                name: "κ",
                value: kappa,
            });
        }
        if !pind.is_finite() || pind < 0.0 {
            return Err(PowerError::InvalidCoefficient {
                name: "P_ind",
                value: pind,
            });
        }
        Ok(PowerFunction {
            kind: Kind::Cmos {
                cef,
                vt,
                kappa,
                pind,
            },
        })
    }

    /// Creates a power function from a **measured table** of
    /// `(speed, power)` points, linearly interpolated between points and
    /// extrapolated by the boundary segments outside them.
    ///
    /// The convexity assumptions of the scheduling theory are *checked*:
    /// speeds must be strictly increasing, powers non-decreasing, and the
    /// chord slopes non-decreasing (convexity); measured tables that
    /// violate this should be replaced by their lower convex envelope by
    /// the caller.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidCoefficient`] if fewer than 2 or more than 16
    /// points are given, or monotonicity/convexity fails.
    pub fn table(points: &[(f64, f64)]) -> Result<Self, PowerError> {
        if points.len() < 2 || points.len() > TABLE_CAPACITY {
            return Err(PowerError::InvalidCoefficient {
                name: "table length",
                value: points.len() as f64,
            });
        }
        if points
            .iter()
            .any(|&(s, p)| !s.is_finite() || !p.is_finite() || s < 0.0 || p < 0.0)
        {
            return Err(PowerError::InvalidCoefficient {
                name: "table point",
                value: f64::NAN,
            });
        }
        let mut buf = [(0.0, 0.0); TABLE_CAPACITY];
        buf[..points.len()].copy_from_slice(points);
        let pts = &mut buf[..points.len()];
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finiteness validated above"));
        let mut last_slope = f64::NEG_INFINITY;
        for w in pts.windows(2) {
            let ((s0, p0), (s1, p1)) = (w[0], w[1]);
            if s1 <= s0 {
                return Err(PowerError::InvalidCoefficient {
                    name: "table speeds",
                    value: s1,
                });
            }
            if p1 < p0 {
                return Err(PowerError::InvalidCoefficient {
                    name: "table powers",
                    value: p1,
                });
            }
            let slope = (p1 - p0) / (s1 - s0);
            if slope < last_slope - 1e-9 {
                return Err(PowerError::InvalidCoefficient {
                    name: "table convexity",
                    value: slope,
                });
            }
            last_slope = slope;
        }
        Ok(PowerFunction {
            kind: Kind::Table {
                points: buf,
                len: points.len(),
            },
        })
    }

    /// Builds a measured-style table from CMOS **operating points**
    /// `(V_dd, normalised speed)` — the voltage/frequency ladder of a data
    /// sheet: each point contributes `P = C_ef·V_dd²·s + P_ind`.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidCoefficient`] for invalid `cef`/`pind`, for
    /// non-finite/non-positive voltages, or when the resulting table
    /// violates the monotone-convex requirements of
    /// [`PowerFunction::table`] (a physically sensible ladder — voltage
    /// non-decreasing in speed — always satisfies them).
    ///
    /// # Examples
    ///
    /// ```
    /// use dvs_power::PowerFunction;
    ///
    /// # fn main() -> Result<(), dvs_power::PowerError> {
    /// // An XScale-style ladder: (V_dd, speed), speeds normalised to 1.
    /// let p = PowerFunction::from_operating_points(
    ///     &[(0.75, 0.15), (1.0, 0.4), (1.3, 0.6), (1.6, 0.8), (1.8, 1.0)],
    ///     0.5,
    ///     0.05,
    /// )?;
    /// assert!((p.power(1.0) - (0.5 * 1.8 * 1.8 + 0.05)).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_operating_points(
        points: &[(f64, f64)],
        cef: f64,
        pind: f64,
    ) -> Result<Self, PowerError> {
        if !cef.is_finite() || cef <= 0.0 {
            return Err(PowerError::InvalidCoefficient {
                name: "C_ef",
                value: cef,
            });
        }
        if !pind.is_finite() || pind < 0.0 {
            return Err(PowerError::InvalidCoefficient {
                name: "P_ind",
                value: pind,
            });
        }
        if points.iter().any(|&(v, _)| !v.is_finite() || v <= 0.0) {
            return Err(PowerError::InvalidCoefficient {
                name: "V_dd",
                value: f64::NAN,
            });
        }
        let table: Vec<(f64, f64)> = points
            .iter()
            .map(|&(v, s)| (s, cef * v * v * s + pind))
            .collect();
        Self::table(&table)
    }

    /// Power drawn at speed `s` (non-negative; `s = 0` yields the
    /// speed-independent part).
    #[must_use]
    pub fn power(&self, s: f64) -> f64 {
        debug_assert!(s >= 0.0, "speed must be non-negative");
        match self.kind {
            Kind::Polynomial {
                beta1,
                beta2,
                alpha,
                ..
            } => beta1 + beta2 * s.powf(alpha),
            Kind::Cmos {
                cef,
                vt,
                kappa,
                pind,
            } => {
                if s == 0.0 {
                    pind
                } else {
                    let vdd = Self::voltage_for_speed(s, vt, kappa);
                    pind + cef * vdd * vdd * s
                }
            }
            Kind::Table { points, len } => {
                let pts = &points[..len];
                // Find the segment containing s; extrapolate at the edges.
                let seg = pts
                    .windows(2)
                    .find(|w| s <= w[1].0)
                    .unwrap_or(&pts[len - 2..len]);
                let ((s0, p0), (s1, p1)) = (seg[0], seg[1]);
                let t = (s - s0) / (s1 - s0);
                (p0 + t * (p1 - p0)).max(0.0)
            }
        }
    }

    /// Speed-independent part `P_ind = P(0)` (leakage floor).
    #[must_use]
    pub fn idle_power(&self) -> f64 {
        self.power(0.0)
    }

    /// Speed-dependent part `P_d(s) = P(s) − P_ind`.
    #[must_use]
    pub fn dynamic_power(&self, s: f64) -> f64 {
        self.power(s) - self.idle_power()
    }

    /// Energy consumed per cycle at speed `s`: `P(s)/s`.
    ///
    /// Returns `f64::INFINITY` at `s = 0` when `P(0) > 0`, and `0` when both
    /// are zero (the `β₁ = 0` limit).
    #[must_use]
    pub fn energy_per_cycle(&self, s: f64) -> f64 {
        if s <= 0.0 {
            return if self.idle_power() > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        self.power(s) / s
    }

    /// The **critical speed** `s* = argmin_{s ∈ (0, s_max]} P(s)/s`.
    ///
    /// Executing a cycle below `s*` costs more energy than executing it at
    /// `s*` and sleeping, so leakage-aware schedulers never run slower.
    ///
    /// For `P(s) = β₁ + β₂·s^α` the minimiser is the closed form
    /// `s* = (β₁ / ((α−1)·β₂))^(1/α)`; other models use golden-section
    /// search (valid because `P(s)/s` is unimodal for convex increasing `P`).
    /// The result is capped at `s_max`.
    #[must_use]
    pub fn critical_speed(&self, s_max: f64) -> f64 {
        match self.kind {
            // Replays the precomputed closed-form bits; `min` with a
            // positive `s_max` maps 0.0 to 0.0, so the `β₁ = 0` special
            // case folds into the same expression.
            Kind::Polynomial { crit_raw, .. } => crit_raw.min(s_max),
            Kind::Cmos { .. } | Kind::Table { .. } => {
                golden_section_min(|s| self.energy_per_cycle(s), 1e-12, s_max)
            }
        }
    }

    /// The minimiser of the *uplifted* energy per cycle `(P(s) + λ)/s`
    /// over `(0, s_max]`, for `λ ≥ 0`.
    ///
    /// This is the KKT stationary point of per-task speed assignment under
    /// a shared time budget (the Lagrange multiplier `λ` prices processor
    /// time); `λ = 0` recovers [`PowerFunction::critical_speed`]. Used by
    /// the heterogeneous-power scheduling extension.
    ///
    /// # Panics
    ///
    /// Panics if `λ` is negative or not finite (debug assertion).
    #[must_use]
    pub fn critical_speed_with_uplift(&self, lambda: f64, s_max: f64) -> f64 {
        debug_assert!(lambda.is_finite() && lambda >= 0.0);
        match self.kind {
            Kind::Polynomial {
                beta1,
                beta2,
                alpha,
                ..
            } => {
                let numer = beta1 + lambda;
                if numer == 0.0 {
                    return 0.0;
                }
                (numer / ((alpha - 1.0) * beta2))
                    .powf(1.0 / alpha)
                    .min(s_max)
            }
            Kind::Cmos { .. } | Kind::Table { .. } => {
                golden_section_min(|s| (self.power(s) + lambda) / s.max(1e-300), 1e-12, s_max)
            }
        }
    }

    /// Scales the whole function by `rho ≥ 0` — used for per-task power
    /// characteristics `ρᵢ·P(s)` in the heterogeneous model.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidCoefficient`] if `rho` is not finite and positive.
    pub fn scaled(&self, rho: f64) -> Result<Self, PowerError> {
        if !rho.is_finite() || rho <= 0.0 {
            return Err(PowerError::InvalidCoefficient {
                name: "ρ",
                value: rho,
            });
        }
        Ok(match self.kind {
            Kind::Polynomial {
                beta1,
                beta2,
                alpha,
                ..
            } => PowerFunction {
                kind: Kind::polynomial(beta1 * rho, beta2 * rho, alpha),
            },
            Kind::Cmos {
                cef,
                vt,
                kappa,
                pind,
            } => PowerFunction {
                kind: Kind::Cmos {
                    cef: cef * rho,
                    vt,
                    kappa,
                    pind: pind * rho,
                },
            },
            Kind::Table { mut points, len } => {
                for p in points.iter_mut().take(len) {
                    p.1 *= rho;
                }
                PowerFunction {
                    kind: Kind::Table { points, len },
                }
            }
        })
    }

    /// Appends this function's spec tokens to `out` (space-separated,
    /// floats as `to_bits` hex) — the power-function slice of
    /// [`crate::Processor::encode_spec`].
    pub(crate) fn encode_spec_tokens(&self, out: &mut Vec<String>) {
        match self.kind {
            Kind::Polynomial {
                beta1,
                beta2,
                alpha,
                ..
            } => {
                out.push("poly".to_string());
                for v in [beta1, beta2, alpha] {
                    out.push(bits_token(v));
                }
            }
            Kind::Cmos {
                cef,
                vt,
                kappa,
                pind,
            } => {
                out.push("cmos".to_string());
                for v in [cef, vt, kappa, pind] {
                    out.push(bits_token(v));
                }
            }
            Kind::Table { points, len } => {
                out.push("tbl".to_string());
                out.push(len.to_string());
                for &(s, p) in &points[..len] {
                    out.push(bits_token(s));
                    out.push(bits_token(p));
                }
            }
        }
    }

    /// Decodes the power-function tokens written by
    /// [`PowerFunction::encode_spec_tokens`], re-validating through the
    /// public constructors (so the polynomial critical-speed constant is
    /// recomputed bit-identically from the decoded coefficient bits).
    pub(crate) fn decode_spec_tokens<'a, I>(tokens: &mut I) -> Result<Self, PowerError>
    where
        I: Iterator<Item = &'a str>,
    {
        let tag = next_token(tokens, "power function tag")?;
        match tag {
            "poly" => {
                let b1 = bits_value(tokens, "β₁ bits")?;
                let b2 = bits_value(tokens, "β₂ bits")?;
                let a = bits_value(tokens, "α bits")?;
                Self::polynomial(b1, b2, a)
            }
            "cmos" => {
                let cef = bits_value(tokens, "C_ef bits")?;
                let vt = bits_value(tokens, "V_t bits")?;
                let kappa = bits_value(tokens, "κ bits")?;
                let pind = bits_value(tokens, "P_ind bits")?;
                Self::cmos(cef, vt, kappa, pind)
            }
            "tbl" => {
                let len: usize = next_token(tokens, "table length")?
                    .parse()
                    .map_err(|_| spec_err("unparseable table length"))?;
                if len > TABLE_CAPACITY {
                    return Err(spec_err("table length exceeds capacity"));
                }
                let mut points = Vec::with_capacity(len);
                for _ in 0..len {
                    let s = bits_value(tokens, "table speed bits")?;
                    let p = bits_value(tokens, "table power bits")?;
                    points.push((s, p));
                }
                Self::table(&points)
            }
            other => Err(spec_err(&format!("unknown power function tag {other:?}"))),
        }
    }

    /// Inverts `s = κ (V − V_t)² / V` for `V ≥ V_t` (the physically
    /// meaningful branch).
    fn voltage_for_speed(s: f64, vt: f64, kappa: f64) -> f64 {
        // κV² − (2κV_t + s)V + κV_t² = 0, take the larger root.
        let b = 2.0 * kappa * vt + s;
        let disc = (b * b - 4.0 * kappa * kappa * vt * vt).max(0.0);
        (b + disc.sqrt()) / (2.0 * kappa)
    }
}

impl fmt::Display for PowerFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            Kind::Polynomial {
                beta1,
                beta2,
                alpha,
                ..
            } => {
                write!(f, "P(s) = {beta1} + {beta2}·s^{alpha}")
            }
            Kind::Cmos {
                cef,
                vt,
                kappa,
                pind,
            } => write!(
                f,
                "P(s) = {pind} + {cef}·V(s)²·s, V from s = {kappa}(V−{vt})²/V"
            ),
            Kind::Table { points, len } => {
                write!(f, "P(s) = table[")?;
                for (i, (s, p)) in points[..len].iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "({s}, {p})")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Renders a float for a spec string: its IEEE-754 bits as fixed-width
/// hex, so decode reproduces the exact value.
pub(crate) fn bits_token(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

pub(crate) fn spec_err(reason: &str) -> PowerError {
    PowerError::InvalidSpec {
        reason: reason.to_string(),
    }
}

pub(crate) fn next_token<'a, I>(tokens: &mut I, what: &str) -> Result<&'a str, PowerError>
where
    I: Iterator<Item = &'a str>,
{
    tokens
        .next()
        .ok_or_else(|| spec_err(&format!("missing {what}")))
}

/// Parses one bits-hex token back to the float it encodes.
pub(crate) fn bits_value<'a, I>(tokens: &mut I, what: &str) -> Result<f64, PowerError>
where
    I: Iterator<Item = &'a str>,
{
    let tok = next_token(tokens, what)?;
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| spec_err(&format!("unparseable {what}")))
}

/// Golden-section search for the minimiser of a unimodal function on `[lo, hi]`.
fn golden_section_min(f: impl Fn(f64) -> f64, lo: f64, hi: f64) -> f64 {
    const PHI: f64 = 0.618_033_988_749_894_9;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - PHI * (b - a);
    let mut d = a + PHI * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..GOLDEN_ITERS {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + PHI * (b - a);
            fd = f(d);
        }
    }
    0.5 * (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_validation() {
        assert!(PowerFunction::polynomial(-0.1, 1.0, 3.0).is_err());
        assert!(PowerFunction::polynomial(0.0, 0.0, 3.0).is_err());
        assert!(PowerFunction::polynomial(0.0, 1.0, 1.0).is_err());
        assert!(PowerFunction::polynomial(0.0, 1.0, f64::NAN).is_err());
        assert!(PowerFunction::polynomial(0.08, 1.52, 3.0).is_ok());
    }

    #[test]
    fn cubic_power_values() {
        let p = PowerFunction::polynomial(0.0, 2.0, 3.0).unwrap();
        assert!((p.power(1.0) - 2.0).abs() < 1e-12);
        assert!((p.power(0.5) - 0.25).abs() < 1e-12);
        assert_eq!(p.idle_power(), 0.0);
    }

    #[test]
    fn xscale_critical_speed_closed_form() {
        let p = PowerFunction::polynomial(0.08, 1.52, 3.0).unwrap();
        let expect = (0.08f64 / (2.0 * 1.52)).powf(1.0 / 3.0);
        assert!((p.critical_speed(1.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn precomputed_critical_speed_replays_exact_bits() {
        // The stored constant must hold exactly the bits of the closed-form
        // expression, including after scaling (which rebuilds the constant
        // from the scaled coefficients).
        for (b1, b2, a) in [(0.08, 1.52, 3.0), (0.2, 1.0, 2.5), (3.0, 0.7, 2.0)] {
            let p = PowerFunction::polynomial(b1, b2, a).unwrap();
            let naive = (b1 / ((a - 1.0) * b2)).powf(1.0 / a);
            for s_max in [0.5, 1.0, 4.0] {
                assert_eq!(
                    p.critical_speed(s_max).to_bits(),
                    naive.min(s_max).to_bits()
                );
            }
            let q = p.scaled(2.5).unwrap();
            let naive_scaled = ((b1 * 2.5) / ((a - 1.0) * (b2 * 2.5))).powf(1.0 / a);
            assert_eq!(
                q.critical_speed(1.0).to_bits(),
                naive_scaled.min(1.0).to_bits()
            );
        }
    }

    #[test]
    fn critical_speed_capped_at_smax() {
        // Huge leakage pushes s* above s_max; it must be capped.
        let p = PowerFunction::polynomial(100.0, 1.0, 3.0).unwrap();
        assert_eq!(p.critical_speed(1.0), 1.0);
    }

    #[test]
    fn critical_speed_zero_without_leakage() {
        let p = PowerFunction::polynomial(0.0, 1.0, 3.0).unwrap();
        assert_eq!(p.critical_speed(1.0), 0.0);
    }

    #[test]
    fn critical_speed_is_argmin_of_energy_per_cycle() {
        let p = PowerFunction::polynomial(0.2, 1.0, 2.5).unwrap();
        let s = p.critical_speed(1.0);
        let e = p.energy_per_cycle(s);
        for k in 1..100 {
            let other = k as f64 / 100.0;
            assert!(e <= p.energy_per_cycle(other) + 1e-9, "beaten at {other}");
        }
    }

    #[test]
    fn energy_per_cycle_edge_cases() {
        let leaky = PowerFunction::polynomial(0.1, 1.0, 3.0).unwrap();
        assert_eq!(leaky.energy_per_cycle(0.0), f64::INFINITY);
        let pure = PowerFunction::polynomial(0.0, 1.0, 3.0).unwrap();
        assert_eq!(pure.energy_per_cycle(0.0), 0.0);
    }

    #[test]
    fn cmos_speed_voltage_roundtrip() {
        // With κ = 1, V_t = 0.4: s(V) = (V − 0.4)²/V.
        let vt = 0.4;
        let v = 1.2;
        let s = (v - vt) * (v - vt) / v;
        let v_back = PowerFunction::voltage_for_speed(s, vt, 1.0);
        assert!((v - v_back).abs() < 1e-9);
    }

    #[test]
    fn cmos_power_is_increasing_and_convexish() {
        let p = PowerFunction::cmos(1.0, 0.4, 1.0, 0.05).unwrap();
        let mut last = p.power(0.0);
        for k in 1..=40 {
            let s = k as f64 / 40.0;
            let now = p.power(s);
            assert!(now >= last, "power not increasing at s={s}");
            last = now;
        }
    }

    #[test]
    fn cmos_critical_speed_is_minimizer() {
        let p = PowerFunction::cmos(1.0, 0.4, 1.0, 0.05).unwrap();
        let s = p.critical_speed(1.0);
        assert!(s > 0.0 && s < 1.0);
        let e = p.energy_per_cycle(s);
        for k in 1..200 {
            let other = k as f64 / 200.0;
            assert!(e <= p.energy_per_cycle(other) + 1e-9);
        }
    }

    #[test]
    fn scaling_multiplies_power() {
        let p = PowerFunction::polynomial(0.1, 1.0, 3.0).unwrap();
        let q = p.scaled(2.5).unwrap();
        assert!((q.power(0.7) - 2.5 * p.power(0.7)).abs() < 1e-12);
        assert!(p.scaled(0.0).is_err());
        assert!(p.scaled(f64::NAN).is_err());
    }

    #[test]
    fn scaling_preserves_critical_speed() {
        // s* depends on β₁/β₂ only, so uniform scaling keeps it.
        let p = PowerFunction::polynomial(0.1, 1.0, 3.0).unwrap();
        let q = p.scaled(7.0).unwrap();
        assert!((p.critical_speed(1.0) - q.critical_speed(1.0)).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_coefficients() {
        let p = PowerFunction::polynomial(0.08, 1.52, 3.0).unwrap();
        assert_eq!(p.to_string(), "P(s) = 0.08 + 1.52·s^3");
    }

    fn measured() -> PowerFunction {
        PowerFunction::table(&[
            (0.15, 0.08),
            (0.4, 0.17),
            (0.6, 0.4),
            (0.8, 0.9),
            (1.0, 1.6),
        ])
        .unwrap()
    }

    #[test]
    fn table_validation() {
        assert!(PowerFunction::table(&[(0.5, 1.0)]).is_err()); // too short
        assert!(PowerFunction::table(&[(0.5, 1.0), (0.5, 2.0)]).is_err()); // dup speed
        assert!(PowerFunction::table(&[(0.2, 2.0), (0.5, 1.0)]).is_err()); // decreasing power
                                                                           // Concave (decreasing slopes) rejected: slopes 10 then 2.
        assert!(PowerFunction::table(&[(0.0, 0.0), (0.1, 1.0), (0.6, 2.0)]).is_err());
        assert!(PowerFunction::table(&[(0.1, f64::NAN), (0.5, 1.0)]).is_err());
        assert!(measured().power(0.0) >= 0.0);
    }

    #[test]
    fn table_interpolates_and_extrapolates() {
        let p = measured();
        // Exact at the points.
        assert!((p.power(0.4) - 0.17).abs() < 1e-12);
        assert!((p.power(1.0) - 1.6).abs() < 1e-12);
        // Midpoint of (0.6, 0.4)–(0.8, 0.9).
        assert!((p.power(0.7) - 0.65).abs() < 1e-12);
        // Extrapolation below the first point follows the first segment
        // (clamped at zero).
        assert!(p.power(0.0) >= 0.0);
        assert!(p.power(0.05) <= 0.08);
    }

    #[test]
    fn table_is_increasing_and_convex() {
        let p = measured();
        let mut last = p.power(0.15);
        for k in 16..=100 {
            let s = k as f64 / 100.0;
            let now = p.power(s);
            assert!(now >= last - 1e-12, "not increasing at {s}");
            last = now;
        }
        for k in 20..95 {
            let s = k as f64 / 100.0;
            let mid = p.power(s);
            let chord = 0.5 * (p.power(s - 0.03) + p.power(s + 0.03));
            assert!(mid <= chord + 1e-9, "not convex at {s}");
        }
    }

    #[test]
    fn table_critical_speed_is_minimizer() {
        let p = measured();
        let s_star = p.critical_speed(1.0);
        let e = p.energy_per_cycle(s_star.max(1e-6));
        for k in 2..=100 {
            let s = k as f64 / 100.0;
            assert!(e <= p.energy_per_cycle(s) + 1e-6, "beaten at {s}");
        }
    }

    #[test]
    fn table_scaling() {
        let p = measured();
        let q = p.scaled(2.0).unwrap();
        assert!((q.power(0.7) - 2.0 * p.power(0.7)).abs() < 1e-12);
    }

    #[test]
    fn operating_points_build_a_valid_ladder() {
        let ladder = [(0.75, 0.15), (1.0, 0.4), (1.3, 0.6), (1.6, 0.8), (1.8, 1.0)];
        let p = PowerFunction::from_operating_points(&ladder, 0.5, 0.05).unwrap();
        // Exact at each point.
        for &(v, s) in &ladder {
            assert!(
                (p.power(s) - (0.5 * v * v * s + 0.05)).abs() < 1e-12,
                "at s = {s}"
            );
        }
        // Convex in between (checked at construction, spot-check here).
        let mid = p.power(0.7);
        let chord = 0.5 * (p.power(0.6) + p.power(0.8));
        assert!(mid <= chord + 1e-12);
        // Critical speed exists and minimises energy per cycle.
        let s_star = p.critical_speed(1.0);
        assert!(s_star > 0.0);
    }

    #[test]
    fn operating_points_validation() {
        let ladder = [(1.0, 0.5), (1.5, 1.0)];
        assert!(PowerFunction::from_operating_points(&ladder, 0.0, 0.0).is_err());
        assert!(PowerFunction::from_operating_points(&ladder, 1.0, -0.1).is_err());
        assert!(PowerFunction::from_operating_points(&[(0.0, 0.5), (1.0, 1.0)], 1.0, 0.0).is_err());
        // A physically nonsensical ladder (voltage dropping with speed)
        // produces a concave table and is rejected.
        assert!(PowerFunction::from_operating_points(
            &[(2.0, 0.2), (1.0, 0.6), (0.9, 1.0)],
            1.0,
            0.0
        )
        .is_err());
    }

    #[test]
    fn table_tracks_polynomial_fit() {
        // The measured table and its 0.08 + 1.52·s³ fit agree within ~25%
        // over the fitted range (sanity for the presets' story).
        let table = measured();
        let poly = PowerFunction::polynomial(0.08, 1.52, 3.0).unwrap();
        for k in 15..=100 {
            let s = k as f64 / 100.0;
            let ratio = table.power(s) / poly.power(s);
            assert!((0.7..=1.35).contains(&ratio), "ratio {ratio} at s = {s}");
        }
    }
}
