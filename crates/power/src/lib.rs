//! # dvs-power — DVS processor power and speed models
//!
//! Substrate crate modelling the processor of the target paper's system
//! model:
//!
//! * The **power function** `P(s) = Pd(s) + Pind` of the adopted speed `s`,
//!   where the speed-dependent part `Pd` is convex and increasing (dynamic
//!   CMOS switching plus short-circuit power) and `Pind` is
//!   speed-independent (leakage). The evaluation uses the polynomial family
//!   `P(s) = β₁ + β₂·s^α`, including the normalised Intel XScale
//!   `P(s) = 0.08 + 1.52·s³` from the authors' experiments.
//! * The **speed domain**: *ideal* processors choose any speed in
//!   `[s_min, s_max]`; *non-ideal* processors have a finite level set and use
//!   the classic two-adjacent-level split.
//! * The **idle/dormant behaviour**: dormant-enable processors sleep at zero
//!   power (optionally paying switch overheads `t_sw`, `E_sw`), giving rise
//!   to the **critical speed** `s* = argmin P(s)/s` below which slowing down
//!   wastes energy; dormant-disable processors burn `P(0)` whenever idle.
//! * The [`Processor`] facade computes, for a utilization demand `u`, the
//!   **minimum-energy execution plan** (speed(s), time shares, energy rate) —
//!   the `E*(U)` oracle at the heart of the rejection problem.
//!
//! # Examples
//!
//! ```
//! use dvs_power::{PowerFunction, Processor, SpeedDomain};
//!
//! # fn main() -> Result<(), dvs_power::PowerError> {
//! let cpu = Processor::new(
//!     PowerFunction::polynomial(0.08, 1.52, 3.0)?,   // normalised Intel XScale
//!     SpeedDomain::continuous(0.0, 1.0)?,
//! );
//! // Critical speed of 0.08 + 1.52 s³ is (0.08 / (2·1.52))^(1/3) ≈ 0.297.
//! let s_crit = cpu.critical_speed();
//! assert!((s_crit - (0.08f64 / 3.04).powf(1.0 / 3.0)).abs() < 1e-9);
//!
//! // A light workload is executed at the critical speed, then the CPU sleeps.
//! let plan = cpu.plan(0.1)?;
//! assert!((plan.max_speed() - s_crit).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod dormant;
mod error;
mod function;
mod plan;
mod processor;

pub mod presets;

pub use domain::SpeedDomain;
pub use dormant::DormantMode;
pub use error::PowerError;
pub use function::PowerFunction;
pub use plan::{ExecutionPlan, SpeedSegment};
pub use processor::{IdleMode, Processor};
