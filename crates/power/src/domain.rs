use std::fmt;

use crate::PowerError;

/// The set of speeds a DVS processor can adopt.
///
/// * **Continuous** (*ideal* processor): any speed in `[s_min, s_max]`.
/// * **Discrete** (*non-ideal* processor): a finite, strictly increasing set
///   of levels, e.g. the frequency table of a real part. Demands between two
///   levels are served by the classic two-adjacent-level split (see
///   [`Processor::plan`](crate::Processor::plan)).
///
/// # Examples
///
/// ```
/// use dvs_power::SpeedDomain;
///
/// # fn main() -> Result<(), dvs_power::PowerError> {
/// let ideal = SpeedDomain::continuous(0.1, 1.0)?;
/// assert_eq!(ideal.max_speed(), 1.0);
/// assert!(ideal.contains(0.55));
///
/// let levels = SpeedDomain::discrete(vec![0.15, 0.4, 0.6, 0.8, 1.0])?;
/// assert_eq!(levels.bracket(0.5), (Some(0.4), Some(0.6)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SpeedDomain {
    /// Any speed in `[min, max]`.
    Continuous {
        /// Lowest adoptable speed (≥ 0).
        min: f64,
        /// Highest adoptable speed (> min).
        max: f64,
    },
    /// A finite strictly-increasing level set.
    Discrete {
        /// The levels, strictly increasing and positive.
        levels: Vec<f64>,
    },
}

impl SpeedDomain {
    /// Creates a continuous domain `[min, max]`.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidSpeed`] unless `0 ≤ min < max` and both are
    /// finite.
    pub fn continuous(min: f64, max: f64) -> Result<Self, PowerError> {
        if !min.is_finite() || !max.is_finite() {
            return Err(PowerError::InvalidSpeed {
                reason: "bounds must be finite",
            });
        }
        if min < 0.0 {
            return Err(PowerError::InvalidSpeed {
                reason: "minimum speed must be non-negative",
            });
        }
        if max <= min {
            return Err(PowerError::InvalidSpeed {
                reason: "maximum must exceed minimum",
            });
        }
        Ok(SpeedDomain::Continuous { min, max })
    }

    /// Creates a discrete domain from levels (sorted internally).
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidSpeed`] if the set is empty, contains
    /// non-positive or non-finite values, or contains duplicates.
    pub fn discrete(levels: impl Into<Vec<f64>>) -> Result<Self, PowerError> {
        let mut levels = levels.into();
        if levels.is_empty() {
            return Err(PowerError::InvalidSpeed {
                reason: "level set must not be empty",
            });
        }
        if levels.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err(PowerError::InvalidSpeed {
                reason: "levels must be positive and finite",
            });
        }
        levels.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if levels.windows(2).any(|w| w[0] == w[1]) {
            return Err(PowerError::InvalidSpeed {
                reason: "levels must be distinct",
            });
        }
        Ok(SpeedDomain::Discrete { levels })
    }

    /// The highest adoptable speed `s_max`.
    #[must_use]
    pub fn max_speed(&self) -> f64 {
        match self {
            SpeedDomain::Continuous { max, .. } => *max,
            SpeedDomain::Discrete { levels } => *levels.last().expect("non-empty"),
        }
    }

    /// The lowest adoptable speed `s_min`.
    #[must_use]
    pub fn min_speed(&self) -> f64 {
        match self {
            SpeedDomain::Continuous { min, .. } => *min,
            SpeedDomain::Discrete { levels } => levels[0],
        }
    }

    /// Whether the processor may adopt speed `s` exactly.
    #[must_use]
    pub fn contains(&self, s: f64) -> bool {
        match self {
            SpeedDomain::Continuous { min, max } => (*min..=*max).contains(&s),
            SpeedDomain::Discrete { levels } => {
                levels.iter().any(|&l| (l - s).abs() <= 1e-12 * l.max(1.0))
            }
        }
    }

    /// Whether this is an ideal (continuous) domain.
    #[must_use]
    pub fn is_continuous(&self) -> bool {
        matches!(self, SpeedDomain::Continuous { .. })
    }

    /// The discrete levels, if any.
    #[must_use]
    pub fn levels(&self) -> Option<&[f64]> {
        match self {
            SpeedDomain::Continuous { .. } => None,
            SpeedDomain::Discrete { levels } => Some(levels),
        }
    }

    /// For a demanded speed `s`, returns `(highest level ≤ s, lowest level ≥ s)`;
    /// either side is `None` when `s` lies outside the level range.
    /// For continuous domains both sides are the clamped demand itself.
    #[must_use]
    pub fn bracket(&self, s: f64) -> (Option<f64>, Option<f64>) {
        match self {
            SpeedDomain::Continuous { min, max } => {
                if s < *min {
                    (None, Some(*min))
                } else if s > *max {
                    (Some(*max), None)
                } else {
                    (Some(s), Some(s))
                }
            }
            SpeedDomain::Discrete { levels } => {
                let below = levels.iter().rev().find(|&&l| l <= s + 1e-15).copied();
                let above = levels.iter().find(|&&l| l >= s - 1e-15).copied();
                (below, above)
            }
        }
    }

    /// Clamps a demanded speed into the domain: the smallest adoptable speed
    /// `≥ s`, or `s_max` if the demand exceeds it (caller must check
    /// feasibility separately).
    #[must_use]
    pub fn clamp_up(&self, s: f64) -> f64 {
        match self.bracket(s) {
            (_, Some(above)) => above,
            (Some(below), None) => below,
            (None, None) => unreachable!("bracket always returns at least one side"),
        }
    }
}

impl fmt::Display for SpeedDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpeedDomain::Continuous { min, max } => write!(f, "[{min}, {max}]"),
            SpeedDomain::Discrete { levels } => {
                write!(f, "{{")?;
                for (i, l) in levels.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_validation() {
        assert!(SpeedDomain::continuous(-0.1, 1.0).is_err());
        assert!(SpeedDomain::continuous(1.0, 1.0).is_err());
        assert!(SpeedDomain::continuous(0.0, f64::INFINITY).is_err());
        assert!(SpeedDomain::continuous(0.0, 1.0).is_ok());
    }

    #[test]
    fn discrete_validation() {
        assert!(SpeedDomain::discrete(Vec::<f64>::new()).is_err());
        assert!(SpeedDomain::discrete(vec![0.0, 0.5]).is_err());
        assert!(SpeedDomain::discrete(vec![0.5, 0.5]).is_err());
        assert!(SpeedDomain::discrete(vec![0.5, 0.2]).is_ok()); // sorted internally
    }

    #[test]
    fn discrete_sorted_and_bounds() {
        let d = SpeedDomain::discrete(vec![1.0, 0.4, 0.6]).unwrap();
        assert_eq!(d.min_speed(), 0.4);
        assert_eq!(d.max_speed(), 1.0);
        assert_eq!(d.levels().unwrap(), &[0.4, 0.6, 1.0]);
    }

    #[test]
    fn contains_semantics() {
        let c = SpeedDomain::continuous(0.1, 1.0).unwrap();
        assert!(c.contains(0.1) && c.contains(1.0) && c.contains(0.33));
        assert!(!c.contains(0.05) && !c.contains(1.2));
        let d = SpeedDomain::discrete(vec![0.4, 0.8]).unwrap();
        assert!(d.contains(0.4) && d.contains(0.8));
        assert!(!d.contains(0.6));
    }

    #[test]
    fn bracket_continuous() {
        let c = SpeedDomain::continuous(0.2, 1.0).unwrap();
        assert_eq!(c.bracket(0.5), (Some(0.5), Some(0.5)));
        assert_eq!(c.bracket(0.1), (None, Some(0.2)));
        assert_eq!(c.bracket(1.5), (Some(1.0), None));
    }

    #[test]
    fn bracket_discrete() {
        let d = SpeedDomain::discrete(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        assert_eq!(d.bracket(0.5), (Some(0.4), Some(0.6)));
        assert_eq!(d.bracket(0.4), (Some(0.4), Some(0.4)));
        assert_eq!(d.bracket(0.1), (None, Some(0.15)));
        assert_eq!(d.bracket(1.2), (Some(1.0), None));
    }

    #[test]
    fn clamp_up_prefers_next_level() {
        let d = SpeedDomain::discrete(vec![0.4, 0.8]).unwrap();
        assert_eq!(d.clamp_up(0.5), 0.8);
        assert_eq!(d.clamp_up(0.2), 0.4);
        assert_eq!(d.clamp_up(0.9), 0.8); // above range clamps down to s_max
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            SpeedDomain::continuous(0.0, 1.0).unwrap().to_string(),
            "[0, 1]"
        );
        assert_eq!(
            SpeedDomain::discrete(vec![0.5, 1.0]).unwrap().to_string(),
            "{0.5, 1}"
        );
    }
}
