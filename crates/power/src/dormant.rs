use std::fmt;

use crate::PowerError;

/// Overheads of entering and leaving the dormant (sleep) mode.
///
/// A dormant-enable processor consumes zero power while dormant, but a
/// sleep/wake round-trip costs `t_sw` time and `E_sw` energy. Sleeping is
/// therefore only worthwhile for idle intervals longer than the
/// [break-even time](DormantMode::break_even_time): the interval length at
/// which the energy saved by sleeping equals the switching energy.
///
/// # Examples
///
/// ```
/// use dvs_power::DormantMode;
///
/// # fn main() -> Result<(), dvs_power::PowerError> {
/// let dm = DormantMode::new(2.0, 4.0)?;      // t_sw = 2 ticks, E_sw = 4
/// // With idle power 0.08 the energy break-even is 4 / 0.08 = 50 ticks.
/// assert!((dm.break_even_time(0.08) - 50.0).abs() < 1e-12);
/// // Never shorter than the switching time itself.
/// assert!((dm.break_even_time(10.0) - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DormantMode {
    t_sw: f64,
    e_sw: f64,
}

impl DormantMode {
    /// Creates dormant-mode parameters with switch time `t_sw` (ticks) and
    /// switch energy `e_sw`.
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidOverhead`] if either value is negative, NaN, or
    /// infinite.
    pub fn new(t_sw: f64, e_sw: f64) -> Result<Self, PowerError> {
        if !t_sw.is_finite() || t_sw < 0.0 {
            return Err(PowerError::InvalidOverhead {
                name: "t_sw",
                value: t_sw,
            });
        }
        if !e_sw.is_finite() || e_sw < 0.0 {
            return Err(PowerError::InvalidOverhead {
                name: "E_sw",
                value: e_sw,
            });
        }
        Ok(DormantMode { t_sw, e_sw })
    }

    /// Dormant-mode parameters with negligible overheads.
    #[must_use]
    pub fn free() -> Self {
        DormantMode {
            t_sw: 0.0,
            e_sw: 0.0,
        }
    }

    /// Mode-switch time `t_sw` in ticks.
    #[must_use]
    pub const fn switch_time(&self) -> f64 {
        self.t_sw
    }

    /// Mode-switch energy `E_sw`.
    #[must_use]
    pub const fn switch_energy(&self) -> f64 {
        self.e_sw
    }

    /// Break-even idle-interval length given the processor's active-idle
    /// power (the power burnt when idling *without* sleeping, i.e. `P(0)`).
    ///
    /// Sleeping during an idle interval of length `t` costs `E_sw`; staying
    /// awake costs `t · idle_power`. The break-even point is
    /// `max(t_sw, E_sw / idle_power)` — an interval shorter than `t_sw`
    /// cannot fit the mode switch at all.
    ///
    /// Returns `f64::INFINITY` when `idle_power == 0` and `E_sw > 0`
    /// (sleeping can never pay off).
    #[must_use]
    pub fn break_even_time(&self, idle_power: f64) -> f64 {
        debug_assert!(idle_power >= 0.0);
        if self.e_sw == 0.0 {
            return self.t_sw;
        }
        if idle_power == 0.0 {
            return f64::INFINITY;
        }
        (self.e_sw / idle_power).max(self.t_sw)
    }

    /// Energy of spending an idle interval of length `t` optimally: either
    /// stay awake (`t · idle_power`) or sleep (`E_sw`), whichever is cheaper
    /// and possible (`t ≥ t_sw` is required to sleep).
    #[must_use]
    pub fn idle_energy(&self, t: f64, idle_power: f64) -> f64 {
        debug_assert!(t >= 0.0 && idle_power >= 0.0);
        let awake = t * idle_power;
        if t >= self.t_sw {
            awake.min(self.e_sw)
        } else {
            awake
        }
    }
}

impl Default for DormantMode {
    fn default() -> Self {
        DormantMode::free()
    }
}

impl fmt::Display for DormantMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dormant(t_sw={}, E_sw={})", self.t_sw, self.e_sw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(DormantMode::new(-1.0, 0.0).is_err());
        assert!(DormantMode::new(0.0, f64::NAN).is_err());
        assert!(DormantMode::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn free_has_zero_break_even() {
        assert_eq!(DormantMode::free().break_even_time(0.5), 0.0);
    }

    #[test]
    fn break_even_infinite_without_idle_power() {
        let dm = DormantMode::new(1.0, 3.0).unwrap();
        assert_eq!(dm.break_even_time(0.0), f64::INFINITY);
    }

    #[test]
    fn idle_energy_picks_cheaper_option() {
        let dm = DormantMode::new(2.0, 4.0).unwrap();
        let p0 = 0.1;
        // Short interval: cannot sleep.
        assert!((dm.idle_energy(1.0, p0) - 0.1).abs() < 1e-12);
        // Long interval: sleeping (4.0) beats staying awake (10.0).
        assert!((dm.idle_energy(100.0, p0) - 4.0).abs() < 1e-12);
        // At exactly break-even (40 ticks): equal either way.
        assert!((dm.idle_energy(40.0, p0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn idle_energy_monotone_in_interval_length() {
        let dm = DormantMode::new(2.0, 4.0).unwrap();
        let mut last = 0.0;
        for k in 0..200 {
            let t = k as f64;
            let e = dm.idle_energy(t, 0.08);
            assert!(e + 1e-12 >= last);
            last = e;
        }
    }

    #[test]
    fn display_shows_params() {
        assert_eq!(
            DormantMode::new(1.0, 2.0).unwrap().to_string(),
            "dormant(t_sw=1, E_sw=2)"
        );
    }
}
