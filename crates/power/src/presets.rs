//! Ready-made processor models used by the evaluation.
//!
//! The experiments of the authors' research line normalise the highest
//! available speed to 1 and express power in that normalised frame; the
//! canonical example given in the companion DATE 2007 paper is the Intel
//! XScale with `P(s) = 0.08 + 1.52·s³` Watt. These presets reconstruct the
//! processors the experiments need.

use crate::{DormantMode, IdleMode, PowerFunction, Processor, SpeedDomain};

/// Normalised Intel XScale power coefficients: `P(s) = 0.08 + 1.52·s³`.
pub const XSCALE_BETA1: f64 = 0.08;
/// See [`XSCALE_BETA1`].
pub const XSCALE_BETA2: f64 = 1.52;

/// Ideal (continuous-speed) processor with the normalised Intel XScale
/// power function and `s ∈ [0, 1]`, dormant-enable with free switches.
///
/// ```
/// let cpu = dvs_power::presets::xscale_ideal();
/// assert_eq!(cpu.max_speed(), 1.0);
/// assert!((cpu.power().power(1.0) - 1.6).abs() < 1e-12);
/// ```
#[must_use]
pub fn xscale_ideal() -> Processor {
    Processor::new(
        PowerFunction::polynomial(XSCALE_BETA1, XSCALE_BETA2, 3.0).expect("valid coefficients"),
        SpeedDomain::continuous(0.0, 1.0).expect("valid bounds"),
    )
}

/// Non-ideal XScale: the five hardware speed steps of the real part
/// (150/400/600/800/1000 MHz, normalised) with the same power function.
///
/// ```
/// let cpu = dvs_power::presets::xscale_levels();
/// assert_eq!(cpu.domain().levels().unwrap().len(), 5);
/// ```
#[must_use]
pub fn xscale_levels() -> Processor {
    Processor::new(
        PowerFunction::polynomial(XSCALE_BETA1, XSCALE_BETA2, 3.0).expect("valid coefficients"),
        SpeedDomain::discrete(vec![0.15, 0.4, 0.6, 0.8, 1.0]).expect("valid levels"),
    )
}

/// The textbook cubic processor `P(s) = s³`, `s ∈ [0, 1]`, no leakage —
/// the model of the simulation sections that ignore leakage
/// (*"when `P(s) = s³`"*).
///
/// ```
/// let cpu = dvs_power::presets::cubic_ideal();
/// assert_eq!(cpu.critical_speed(), 0.0);
/// ```
#[must_use]
pub fn cubic_ideal() -> Processor {
    Processor::new(
        PowerFunction::polynomial(0.0, 1.0, 3.0).expect("valid coefficients"),
        SpeedDomain::continuous(0.0, 1.0).expect("valid bounds"),
    )
}

/// A leaky dormant-enable processor with explicit switch overheads, for the
/// leakage-aware experiments (`E_sw` expressed in the same normalised energy
/// units; the companion paper evaluates `E_sw ∈ {4 mJ, 12 mJ}`-scale values).
///
/// ```
/// let cpu = dvs_power::presets::leaky_with_overhead(0.4, 4.0);
/// assert!(cpu.critical_speed() > 0.0);
/// ```
#[must_use]
pub fn leaky_with_overhead(t_sw: f64, e_sw: f64) -> Processor {
    xscale_ideal().with_idle_mode(IdleMode::Sleep(
        DormantMode::new(t_sw, e_sw).expect("valid overheads"),
    ))
}

/// The classic measured Intel XScale power table (frequency steps
/// 150/400/600/800/1000 MHz normalised to speed, power in Watts), used
/// throughout the DVS literature; `P(s) = 0.08 + 1.52·s³` is its cubic fit.
/// Speeds are restricted to the five hardware levels.
///
/// ```
/// let cpu = dvs_power::presets::xscale_measured();
/// assert!((cpu.power().power(1.0) - 1.6).abs() < 1e-12);
/// assert_eq!(cpu.domain().levels().unwrap().len(), 5);
/// ```
#[must_use]
pub fn xscale_measured() -> Processor {
    Processor::new(
        PowerFunction::table(&[
            (0.15, 0.08),
            (0.4, 0.17),
            (0.6, 0.4),
            (0.8, 0.9),
            (1.0, 1.6),
        ])
        .expect("monotone convex table"),
        SpeedDomain::discrete(vec![0.15, 0.4, 0.6, 0.8, 1.0]).expect("valid levels"),
    )
}

/// An evenly spaced `k`-level non-ideal processor over `(0, 1]` with the
/// XScale power function — used by the discrete-vs-continuous sweep (F5).
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// ```
/// let cpu = dvs_power::presets::uniform_levels(4);
/// assert_eq!(cpu.domain().levels().unwrap(), &[0.25, 0.5, 0.75, 1.0]);
/// ```
#[must_use]
pub fn uniform_levels(k: usize) -> Processor {
    assert!(k > 0, "at least one speed level is required");
    let levels: Vec<f64> = (1..=k).map(|i| i as f64 / k as f64).collect();
    Processor::new(
        PowerFunction::polynomial(XSCALE_BETA1, XSCALE_BETA2, 3.0).expect("valid coefficients"),
        SpeedDomain::discrete(levels).expect("valid levels"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xscale_power_at_full_speed() {
        let cpu = xscale_ideal();
        assert!((cpu.power().power(1.0) - 1.6).abs() < 1e-12);
        assert!((cpu.critical_speed() - (0.08f64 / 3.04).powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn level_presets_are_sorted_and_bounded() {
        let cpu = xscale_levels();
        let levels = cpu.domain().levels().unwrap();
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(cpu.max_speed(), 1.0);
    }

    #[test]
    fn uniform_levels_counts() {
        for k in 1..=16 {
            let cpu = uniform_levels(k);
            assert_eq!(cpu.domain().levels().unwrap().len(), k);
            assert!((cpu.max_speed() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn overhead_preset_carries_dormant_params() {
        let cpu = leaky_with_overhead(2.0, 12.0);
        match cpu.idle_mode() {
            IdleMode::Sleep(dm) => {
                assert_eq!(dm.switch_time(), 2.0);
                assert_eq!(dm.switch_energy(), 12.0);
            }
            IdleMode::AlwaysOn => panic!("expected dormant-enable"),
        }
    }
}
