use std::error::Error;
use std::fmt;

/// Error raised when constructing power models or planning execution.
///
/// # Examples
///
/// ```
/// use dvs_power::{PowerError, PowerFunction};
///
/// let err = PowerFunction::polynomial(-1.0, 1.0, 3.0).unwrap_err();
/// assert!(matches!(err, PowerError::InvalidCoefficient { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A power-function coefficient was out of range.
    InvalidCoefficient {
        /// Name of the offending coefficient (`β₁`, `β₂`, `α`, …).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A speed bound or level was negative, NaN, infinite, or empty/disordered.
    InvalidSpeed {
        /// Description of the violation.
        reason: &'static str,
    },
    /// A dormant-mode overhead parameter was out of range.
    InvalidOverhead {
        /// Name of the offending parameter (`t_sw`, `E_sw`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The demanded utilization exceeds the maximum available speed —
    /// no feasible execution plan exists.
    InfeasibleDemand {
        /// Demanded utilization (cycles per tick).
        utilization: f64,
        /// Maximum available speed.
        max_speed: f64,
    },
    /// The demanded utilization was negative or not finite.
    InvalidDemand {
        /// The rejected value.
        utilization: f64,
    },
    /// A serialized processor spec could not be decoded.
    InvalidSpec {
        /// Description of the violation.
        reason: String,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidCoefficient { name, value } => {
                write!(f, "power coefficient {name} = {value} is out of range")
            }
            PowerError::InvalidSpeed { reason } => write!(f, "invalid speed domain: {reason}"),
            PowerError::InvalidOverhead { name, value } => {
                write!(f, "dormant overhead {name} = {value} is out of range")
            }
            PowerError::InfeasibleDemand {
                utilization,
                max_speed,
            } => write!(
                f,
                "utilization demand {utilization} exceeds maximum speed {max_speed}"
            ),
            PowerError::InvalidDemand { utilization } => {
                write!(
                    f,
                    "utilization demand {utilization} is not finite and non-negative"
                )
            }
            PowerError::InvalidSpec { reason } => {
                write!(f, "invalid processor spec: {reason}")
            }
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = PowerError::InfeasibleDemand {
            utilization: 1.5,
            max_speed: 1.0,
        };
        assert!(e.to_string().contains("1.5"));
        assert!(e.to_string().contains("1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PowerError>();
    }
}
