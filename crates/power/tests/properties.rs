//! Property-based tests for the power/speed models.

use dvs_power::{DormantMode, IdleMode, PowerFunction, Processor, SpeedDomain};
use proptest::prelude::*;

fn arb_poly() -> impl Strategy<Value = PowerFunction> {
    (0.0f64..0.8, 0.1f64..4.0, 1.2f64..3.5)
        .prop_map(|(b1, b2, a)| PowerFunction::polynomial(b1, b2, a).unwrap())
}

fn arb_levels() -> impl Strategy<Value = SpeedDomain> {
    prop::collection::btree_set(1u32..100, 1..8).prop_map(|set| {
        SpeedDomain::discrete(set.into_iter().map(|k| k as f64 / 100.0).collect::<Vec<_>>())
            .unwrap()
    })
}

proptest! {
    #[test]
    fn power_is_increasing(p in arb_poly(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(p.power(lo) <= p.power(hi) + 1e-12);
    }

    #[test]
    fn power_is_convex_on_grid(p in arb_poly()) {
        for k in 1..50 {
            let s = k as f64 / 50.0;
            let mid = p.power(s);
            let chord = 0.5 * (p.power(s - 0.02) + p.power(s + 0.02));
            prop_assert!(mid <= chord + 1e-9, "not convex at s = {s}");
        }
    }

    #[test]
    fn critical_speed_minimizes_energy_per_cycle(p in arb_poly()) {
        let s_star = p.critical_speed(1.0);
        if s_star > 0.0 {
            let e = p.energy_per_cycle(s_star.min(1.0).max(1e-6));
            for k in 1..=100 {
                let s = k as f64 / 100.0;
                prop_assert!(e <= p.energy_per_cycle(s) + 1e-9, "beaten at {s}");
            }
        }
    }

    #[test]
    fn uplifted_critical_speed_is_monotone_in_lambda(p in arb_poly(), l1 in 0.0f64..5.0, l2 in 0.0f64..5.0) {
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        prop_assert!(
            p.critical_speed_with_uplift(lo, 1.0) <= p.critical_speed_with_uplift(hi, 1.0) + 1e-12
        );
    }

    #[test]
    fn continuous_energy_rate_is_monotone_and_feasible(p in arb_poly(), u in 0.0f64..1.0) {
        let cpu = Processor::new(p, SpeedDomain::continuous(0.0, 1.0).unwrap());
        let r1 = cpu.energy_rate(u).unwrap();
        let r2 = cpu.energy_rate((u + 0.05).min(1.0)).unwrap();
        prop_assert!(r1 <= r2 + 1e-12);
        prop_assert!(r1 >= 0.0);
    }

    #[test]
    fn plan_delivers_exactly_the_demand(p in arb_poly(), levels in arb_levels()) {
        let cpu = Processor::new(p, levels);
        let u = cpu.max_speed() * 0.7;
        let plan = cpu.plan(u).unwrap();
        prop_assert!((plan.throughput() - u).abs() < 1e-9);
        prop_assert!(plan.busy_fraction() <= 1.0 + 1e-9);
        prop_assert!((plan.energy_rate() - cpu.energy_rate(u).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn discrete_never_cheaper_than_continuous(p in arb_poly(), levels in arb_levels(), frac in 0.01f64..1.0) {
        let disc = Processor::new(p, levels);
        let cont = Processor::new(p, SpeedDomain::continuous(0.0, disc.max_speed()).unwrap());
        let u = disc.max_speed() * frac;
        let e_disc = disc.energy_rate(u).unwrap();
        let e_cont = cont.energy_rate(u).unwrap();
        prop_assert!(e_disc >= e_cont - 1e-9, "discrete {e_disc} beat continuous {e_cont}");
    }

    #[test]
    fn infeasible_demand_always_rejected(p in arb_poly(), over in 1.0001f64..5.0) {
        let cpu = Processor::new(p, SpeedDomain::continuous(0.0, 1.0).unwrap());
        prop_assert!(cpu.plan(over).is_err());
        prop_assert!(cpu.energy_rate(over).is_err());
    }

    #[test]
    fn always_on_rate_at_least_idle_floor(p in arb_poly(), u in 0.0f64..1.0) {
        let cpu = Processor::new(p, SpeedDomain::continuous(0.0, 1.0).unwrap())
            .with_idle_mode(IdleMode::AlwaysOn);
        let rate = cpu.energy_rate(u).unwrap();
        prop_assert!(rate >= p.idle_power() - 1e-12);
    }

    #[test]
    fn idle_energy_never_exceeds_staying_awake(t in 0.0f64..200.0, p0 in 0.0f64..1.0,
                                               tsw in 0.0f64..10.0, esw in 0.0f64..20.0) {
        let dm = DormantMode::new(tsw, esw).unwrap();
        prop_assert!(dm.idle_energy(t, p0) <= t * p0 + 1e-12);
    }

    #[test]
    fn bracket_sandwiches_the_demand(levels in arb_levels(), frac in 0.0f64..1.2) {
        let s = frac * levels.max_speed();
        let (below, above) = levels.bracket(s);
        if let Some(b) = below {
            prop_assert!(b <= s + 1e-9);
        }
        if let Some(a) = above {
            prop_assert!(a >= s - 1e-9);
        }
        prop_assert!(below.is_some() || above.is_some());
    }
}
