//! Randomized property tests for the power/speed models.
//!
//! Formerly expressed with `proptest`; rewritten on the vendored
//! [`rt_model::rng::Rng`] so the suite runs fully offline.

use dvs_power::{DormantMode, IdleMode, PowerFunction, Processor, SpeedDomain};
use rt_model::rng::Rng;

const CASES: u64 = 64;

fn random_poly(rng: &mut Rng) -> PowerFunction {
    PowerFunction::polynomial(
        rng.gen_f64(0.0, 0.8),
        rng.gen_f64(0.1, 4.0),
        rng.gen_f64(1.2, 3.5),
    )
    .unwrap()
}

fn random_levels(rng: &mut Rng) -> SpeedDomain {
    let k = 1 + rng.gen_index(7);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < k {
        set.insert(rng.gen_u64(1, 100) as u32);
    }
    SpeedDomain::discrete(
        set.into_iter()
            .map(|l| f64::from(l) / 100.0)
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

#[test]
fn power_is_increasing() {
    let mut rng = Rng::seed_from_u64(0x2001);
    for _ in 0..CASES {
        let p = random_poly(&mut rng);
        let a = rng.next_f64();
        let b = rng.next_f64();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(p.power(lo) <= p.power(hi) + 1e-12);
    }
}

#[test]
fn power_is_convex_on_grid() {
    let mut rng = Rng::seed_from_u64(0x2002);
    for _ in 0..CASES {
        let p = random_poly(&mut rng);
        for k in 1..50 {
            let s = f64::from(k) / 50.0;
            let mid = p.power(s);
            let chord = 0.5 * (p.power(s - 0.02) + p.power(s + 0.02));
            assert!(mid <= chord + 1e-9, "not convex at s = {s}");
        }
    }
}

#[test]
fn critical_speed_minimizes_energy_per_cycle() {
    let mut rng = Rng::seed_from_u64(0x2003);
    for _ in 0..CASES {
        let p = random_poly(&mut rng);
        let s_star = p.critical_speed(1.0);
        if s_star > 0.0 {
            let e = p.energy_per_cycle(s_star.clamp(1e-6, 1.0));
            for k in 1..=100 {
                let s = f64::from(k) / 100.0;
                assert!(e <= p.energy_per_cycle(s) + 1e-9, "beaten at {s}");
            }
        }
    }
}

#[test]
fn uplifted_critical_speed_is_monotone_in_lambda() {
    let mut rng = Rng::seed_from_u64(0x2004);
    for _ in 0..CASES {
        let p = random_poly(&mut rng);
        let l1 = rng.gen_f64(0.0, 5.0);
        let l2 = rng.gen_f64(0.0, 5.0);
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        assert!(
            p.critical_speed_with_uplift(lo, 1.0) <= p.critical_speed_with_uplift(hi, 1.0) + 1e-12
        );
    }
}

#[test]
fn continuous_energy_rate_is_monotone_and_feasible() {
    let mut rng = Rng::seed_from_u64(0x2005);
    for _ in 0..CASES {
        let p = random_poly(&mut rng);
        let u = rng.next_f64();
        let cpu = Processor::new(p, SpeedDomain::continuous(0.0, 1.0).unwrap());
        let r1 = cpu.energy_rate(u).unwrap();
        let r2 = cpu.energy_rate((u + 0.05).min(1.0)).unwrap();
        assert!(r1 <= r2 + 1e-12);
        assert!(r1 >= 0.0);
    }
}

#[test]
fn plan_delivers_exactly_the_demand() {
    let mut rng = Rng::seed_from_u64(0x2006);
    for _ in 0..CASES {
        let p = random_poly(&mut rng);
        let levels = random_levels(&mut rng);
        let cpu = Processor::new(p, levels);
        let u = cpu.max_speed() * 0.7;
        let plan = cpu.plan(u).unwrap();
        assert!((plan.throughput() - u).abs() < 1e-9);
        assert!(plan.busy_fraction() <= 1.0 + 1e-9);
        assert!((plan.energy_rate() - cpu.energy_rate(u).unwrap()).abs() < 1e-9);
    }
}

#[test]
fn discrete_never_cheaper_than_continuous() {
    let mut rng = Rng::seed_from_u64(0x2007);
    for _ in 0..CASES {
        let p = random_poly(&mut rng);
        let levels = random_levels(&mut rng);
        let frac = rng.gen_f64(0.01, 1.0);
        let disc = Processor::new(p, levels);
        let cont = Processor::new(p, SpeedDomain::continuous(0.0, disc.max_speed()).unwrap());
        let u = disc.max_speed() * frac;
        let e_disc = disc.energy_rate(u).unwrap();
        let e_cont = cont.energy_rate(u).unwrap();
        assert!(
            e_disc >= e_cont - 1e-9,
            "discrete {e_disc} beat continuous {e_cont}"
        );
    }
}

#[test]
fn infeasible_demand_always_rejected() {
    let mut rng = Rng::seed_from_u64(0x2008);
    for _ in 0..CASES {
        let p = random_poly(&mut rng);
        let over = rng.gen_f64(1.0001, 5.0);
        let cpu = Processor::new(p, SpeedDomain::continuous(0.0, 1.0).unwrap());
        assert!(cpu.plan(over).is_err());
        assert!(cpu.energy_rate(over).is_err());
    }
}

#[test]
fn always_on_rate_at_least_idle_floor() {
    let mut rng = Rng::seed_from_u64(0x2009);
    for _ in 0..CASES {
        let p = random_poly(&mut rng);
        let u = rng.next_f64();
        let cpu = Processor::new(p, SpeedDomain::continuous(0.0, 1.0).unwrap())
            .with_idle_mode(IdleMode::AlwaysOn);
        let rate = cpu.energy_rate(u).unwrap();
        assert!(rate >= p.idle_power() - 1e-12);
    }
}

#[test]
fn idle_energy_never_exceeds_staying_awake() {
    let mut rng = Rng::seed_from_u64(0x200A);
    for _ in 0..CASES {
        let t = rng.gen_f64(0.0, 200.0);
        let p0 = rng.next_f64();
        let tsw = rng.gen_f64(0.0, 10.0);
        let esw = rng.gen_f64(0.0, 20.0);
        let dm = DormantMode::new(tsw, esw).unwrap();
        assert!(dm.idle_energy(t, p0) <= t * p0 + 1e-12);
    }
}

#[test]
fn bracket_sandwiches_the_demand() {
    let mut rng = Rng::seed_from_u64(0x200B);
    for _ in 0..CASES {
        let levels = random_levels(&mut rng);
        let frac = rng.gen_f64(0.0, 1.2);
        let s = frac * levels.max_speed();
        let (below, above) = levels.bracket(s);
        if let Some(b) = below {
            assert!(b <= s + 1e-9);
        }
        if let Some(a) = above {
            assert!(a >= s - 1e-9);
        }
        assert!(below.is_some() || above.is_some());
    }
}
