//! # dvs-exec — dependency-free deterministic parallel execution
//!
//! A tiny parallel execution layer for the `dvs-rejection` workspace, built
//! entirely on `std` (scoped threads, atomics): the offline build
//! environment cannot fetch crates, and the solvers need bit-reproducible
//! results, which rules out work-stealing pools with nondeterministic
//! reduction orders.
//!
//! The core primitive is [`par_map`]: it evaluates a function over a slice
//! on a scoped worker pool and returns the results **in input order**, so
//! the output is exactly what the sequential `iter().map().collect()`
//! would produce — the determinism guarantee every solver and experiment
//! in this workspace relies on. Work is handed out in contiguous chunks
//! through a shared atomic cursor, which keeps scheduling overhead at one
//! `fetch_add` per chunk while still balancing uneven workloads.
//!
//! Worker count comes from [`num_threads`]: the `DVS_THREADS` environment
//! variable when set (≥ 1), otherwise
//! [`std::thread::available_parallelism`]. `DVS_THREADS=1` forces fully
//! sequential execution — useful for timing baselines and for the
//! determinism test suite, which asserts byte-identical results across
//! thread counts.
//!
//! Nested calls never oversubscribe: a `par_map` issued from inside a
//! worker (e.g. a parallel solver invoked from a parallel experiment
//! sweep) runs sequentially on that worker.
//!
//! [`AtomicMinF64`] complements the map primitive for branch-and-bound
//! style searches: workers share a monotonically decreasing incumbent
//! bound without locks.
//!
//! # Examples
//!
//! ```
//! let squares = dvs_exec::par_map(&[1, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::thread;

/// Environment variable overriding the worker count (must parse to ≥ 1).
pub const THREADS_ENV: &str = "DVS_THREADS";

thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Number of workers [`par_map`] will use.
///
/// Reads `DVS_THREADS` on every call (cheap, and lets tests vary it at
/// runtime); invalid or unset values fall back to
/// [`std::thread::available_parallelism`], and `1` is returned inside a
/// worker thread so nested parallelism degrades to sequential execution.
#[must_use]
pub fn num_threads() -> usize {
    if IN_WORKER.with(std::cell::Cell::get) {
        return 1;
    }
    match std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Chunk size giving each worker several chunks (load balancing) without
/// excessive cursor traffic.
fn chunk_size(len: usize, workers: usize) -> usize {
    // ~4 chunks per worker; at least 1 item per chunk.
    len.div_ceil(workers * 4).max(1)
}

/// Maps `f` over `items` on a scoped worker pool, returning results in
/// input order.
///
/// Output is identical to `items.iter().map(f).collect()` — parallelism
/// changes wall-clock time, never the result. Runs sequentially when the
/// worker count is 1, the input is tiny, or the caller is itself a
/// `par_map` worker.
///
/// # Panics
///
/// Propagates any panic raised by `f`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = num_threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = chunk_size(items.len(), workers);
    let cursor = AtomicUsize::new(0);
    // Each worker returns (start, results) pairs for the chunks it claimed;
    // merging by start index restores input order exactly.
    let mut parts: Vec<(usize, Vec<U>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let mut out: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        out.push((start, items[start..end].iter().map(&f).collect()));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    parts.sort_unstable_by_key(|(start, _)| *start);
    let mut merged = Vec::with_capacity(items.len());
    for (_, mut chunk_results) in parts {
        merged.append(&mut chunk_results);
    }
    merged
}

/// Maps `f` over the index range `0..len`, returning results in order.
///
/// Convenience wrapper over [`par_map`] for loops that are naturally
/// indexed rather than slice-driven (e.g. chunked DP layers).
pub fn par_map_indices<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..len).collect();
    par_map(&indices, |&i| f(i))
}

/// Lock-free shared minimum over non-negative `f64` values.
///
/// Stores the bit pattern in an [`AtomicU64`] and refines it with
/// compare-exchange; because the comparison is done on the decoded `f64`,
/// any finite values (including infinities) order correctly. Used as the
/// shared incumbent bound in parallel branch-and-bound: every worker
/// prunes against the best solution found by *any* worker so far.
///
/// # Examples
///
/// ```
/// let best = dvs_exec::AtomicMinF64::new(f64::INFINITY);
/// assert!(best.fetch_min(3.5));
/// assert!(!best.fetch_min(7.0)); // not an improvement
/// assert_eq!(best.get(), 3.5);
/// ```
#[derive(Debug)]
pub struct AtomicMinF64 {
    bits: AtomicU64,
}

impl AtomicMinF64 {
    /// Creates the cell holding `value`.
    #[must_use]
    pub fn new(value: f64) -> Self {
        AtomicMinF64 {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Current minimum.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Lowers the stored value to `value` if it is strictly smaller;
    /// returns whether the stored minimum changed. `NaN` is ignored.
    pub fn fetch_min(&self, value: f64) -> bool {
        if value.is_nan() {
            return false;
        }
        let mut current = self.bits.load(Ordering::Acquire);
        loop {
            if value >= f64::from_bits(current) {
                return false;
            }
            match self.bits.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
        // Serialise tests that touch the global env var. Recover from
        // poisoning: the panic-propagation test unwinds while holding it.
        static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = ENV_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::set_var(THREADS_ENV, n);
        let out = f();
        std::env::remove_var(THREADS_ENV);
        out
    }

    #[test]
    fn par_map_matches_sequential_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in ["1", "2", "4", "8"] {
            let got = with_threads(threads, || par_map(&items, |&x| x * 3 + 1));
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_tiny_and_empty_inputs() {
        with_threads("8", || {
            assert_eq!(par_map::<u32, u32, _>(&[], |&x| x), Vec::<u32>::new());
            assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
        });
    }

    #[test]
    fn par_map_indices_orders_results() {
        let got = with_threads("4", || par_map_indices(100, |i| i * i));
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn nested_par_map_degrades_to_sequential() {
        let got = with_threads("4", || {
            par_map(&[0u32, 1, 2, 3], |&outer| {
                // Inside a worker the nested call must not spawn again.
                assert_eq!(num_threads(), 1);
                par_map(&[10u32, 20], |&inner| outer + inner)
            })
        });
        assert_eq!(
            got,
            vec![vec![10, 20], vec![11, 21], vec![12, 22], vec![13, 23]]
        );
    }

    #[test]
    fn env_override_controls_worker_count() {
        assert_eq!(with_threads("3", num_threads), 3);
        assert_eq!(with_threads("1", num_threads), 1);
        // Invalid values fall back to available parallelism (≥ 1).
        assert!(with_threads("zero", num_threads) >= 1);
    }

    #[test]
    fn chunking_covers_every_length() {
        for len in [1usize, 2, 5, 16, 17, 100, 1001] {
            for workers in [1usize, 2, 4, 8] {
                let c = chunk_size(len, workers);
                assert!(c >= 1);
                assert!(
                    c * workers * 4 >= len,
                    "len {len} workers {workers} chunk {c}"
                );
            }
        }
    }

    #[test]
    fn atomic_min_converges_under_contention() {
        let best = AtomicMinF64::new(f64::INFINITY);
        thread::scope(|s| {
            for t in 0..4 {
                let best = &best;
                s.spawn(move || {
                    for k in (0..1000).rev() {
                        best.fetch_min(f64::from(k) + f64::from(t) * 0.1);
                    }
                });
            }
        });
        assert_eq!(best.get(), 0.0);
        assert!(!best.fetch_min(f64::NAN));
        assert_eq!(best.get(), 0.0);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads("4", || {
                par_map(&(0..64).collect::<Vec<i32>>(), |&x| {
                    assert!(x != 40, "boom");
                    x
                })
            })
        });
        assert!(result.is_err());
    }
}
