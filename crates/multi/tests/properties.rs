//! Randomized property tests for the multiprocessor extension.
//!
//! Formerly expressed with `proptest`; rewritten on the vendored
//! [`rt_model::rng::Rng`] so the suite runs fully offline.

use dvs_power::presets::cubic_ideal;
use multi_sched::{
    fractional_lower_bound_multi, partition_tasks, solve_global_greedy, solve_partitioned,
    MultiInstance, PartitionStrategy,
};
use reject_sched::algorithms::MarginalGreedy;
use rt_model::rng::Rng;
use rt_model::{Task, TaskId, TaskSet};

const CASES: u64 = 48;

fn random_system(rng: &mut Rng) -> MultiInstance {
    let n = 2 + rng.gen_index(14);
    let m = 2 + rng.gen_index(4);
    let tasks = TaskSet::try_from_tasks((0..n).map(|i| {
        let u = rng.gen_f64(0.05, 0.9);
        let v = rng.gen_f64(0.0, 6.0);
        let period = 10 * (1 + (i as u64 % 2));
        Task::new(i, u * period as f64, period)
            .unwrap()
            .with_penalty(v)
    }))
    .unwrap();
    MultiInstance::new(tasks, cubic_ideal(), m).unwrap()
}

/// Every partition strategy assigns every task exactly once.
#[test]
fn partitions_are_exact_covers() {
    let mut rng = Rng::seed_from_u64(0x3001);
    for _ in 0..CASES {
        let sys = random_system(&mut rng);
        for strat in [
            PartitionStrategy::LargestTaskFirst,
            PartitionStrategy::Unsorted,
            PartitionStrategy::FirstFit,
        ] {
            let p = partition_tasks(sys.tasks(), sys.processors(), 1.0, strat);
            assert_eq!(p.len(), sys.processors());
            let mut ids: Vec<TaskId> = p.buckets().iter().flatten().copied().collect();
            ids.sort();
            let mut expect: Vec<TaskId> = sys.tasks().iter().map(Task::id).collect();
            expect.sort();
            assert_eq!(ids, expect);
        }
    }
}

/// All pipelines produce verifiable solutions and respect the fluid
/// lower bound.
#[test]
fn pipelines_verify_and_respect_the_bound() {
    let mut rng = Rng::seed_from_u64(0x3002);
    for _ in 0..CASES {
        let sys = random_system(&mut rng);
        let lb = fractional_lower_bound_multi(&sys).unwrap();
        for sol in [
            solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy).unwrap(),
            solve_partitioned(&sys, PartitionStrategy::Unsorted, &MarginalGreedy).unwrap(),
            solve_partitioned(&sys, PartitionStrategy::FirstFit, &MarginalGreedy).unwrap(),
            solve_global_greedy(&sys).unwrap(),
        ] {
            sol.verify(&sys).unwrap();
            assert!(
                sol.cost() >= lb - 1e-6 * lb.max(1.0),
                "{} = {} beat the fluid bound {lb}",
                sol.label(),
                sol.cost()
            );
            assert!(sol.penalty() >= -1e-9);
        }
    }
}

/// Accepted sets never overlap across processors, and every accepted
/// bucket is individually feasible.
#[test]
fn per_processor_feasibility() {
    let mut rng = Rng::seed_from_u64(0x3003);
    for _ in 0..CASES {
        let sys = random_system(&mut rng);
        let sol =
            solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy).unwrap();
        for sub in sol.per_processor() {
            let bucket = sys.tasks().subset(sub.accepted()).unwrap();
            assert!(bucket.utilization() <= sys.processor().max_speed() * (1.0 + 1e-9));
        }
        let all = sol.accepted();
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }
}

/// LTF workload balance: the spread never exceeds the largest task's
/// utilization (the classic list-scheduling property).
#[test]
fn ltf_imbalance_bounded_by_largest_task() {
    let mut rng = Rng::seed_from_u64(0x3004);
    for _ in 0..CASES {
        let sys = random_system(&mut rng);
        let p = partition_tasks(
            sys.tasks(),
            sys.processors(),
            1.0,
            PartitionStrategy::LargestTaskFirst,
        );
        let u_max = sys
            .tasks()
            .iter()
            .map(Task::utilization)
            .fold(0.0, f64::max);
        assert!(p.imbalance(sys.tasks()) <= u_max + 1e-9);
    }
}
