//! Property-based tests for the multiprocessor extension.

use dvs_power::presets::cubic_ideal;
use multi_sched::{
    fractional_lower_bound_multi, partition_tasks, solve_global_greedy, solve_partitioned,
    MultiInstance, PartitionStrategy,
};
use proptest::prelude::*;
use reject_sched::algorithms::MarginalGreedy;
use rt_model::{Task, TaskId, TaskSet};

fn arb_system() -> impl Strategy<Value = MultiInstance> {
    (
        prop::collection::vec((0.05f64..0.9, 0.0f64..6.0), 2..16),
        2usize..6,
    )
        .prop_map(|(parts, m)| {
            let tasks = TaskSet::try_from_tasks(parts.iter().enumerate().map(|(i, &(u, v))| {
                let period = 10 * (1 + (i as u64 % 2));
                Task::new(i, u * period as f64, period).unwrap().with_penalty(v)
            }))
            .unwrap();
            MultiInstance::new(tasks, cubic_ideal(), m).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every partition strategy assigns every task exactly once.
    #[test]
    fn partitions_are_exact_covers(sys in arb_system()) {
        for strat in [
            PartitionStrategy::LargestTaskFirst,
            PartitionStrategy::Unsorted,
            PartitionStrategy::FirstFit,
        ] {
            let p = partition_tasks(sys.tasks(), sys.processors(), 1.0, strat);
            prop_assert_eq!(p.len(), sys.processors());
            let mut ids: Vec<TaskId> = p.buckets().iter().flatten().copied().collect();
            ids.sort();
            let mut expect: Vec<TaskId> = sys.tasks().iter().map(Task::id).collect();
            expect.sort();
            prop_assert_eq!(ids, expect);
        }
    }

    /// All pipelines produce verifiable solutions and respect the fluid
    /// lower bound.
    #[test]
    fn pipelines_verify_and_respect_the_bound(sys in arb_system()) {
        let lb = fractional_lower_bound_multi(&sys).unwrap();
        for sol in [
            solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy).unwrap(),
            solve_partitioned(&sys, PartitionStrategy::Unsorted, &MarginalGreedy).unwrap(),
            solve_partitioned(&sys, PartitionStrategy::FirstFit, &MarginalGreedy).unwrap(),
            solve_global_greedy(&sys).unwrap(),
        ] {
            sol.verify(&sys).unwrap();
            prop_assert!(sol.cost() >= lb - 1e-6 * lb.max(1.0),
                         "{} = {} beat the fluid bound {lb}", sol.label(), sol.cost());
            prop_assert!(sol.penalty() >= -1e-9);
        }
    }

    /// Accepted sets never overlap across processors, and every accepted
    /// bucket is individually feasible.
    #[test]
    fn per_processor_feasibility(sys in arb_system()) {
        let sol = solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy)
            .unwrap();
        for sub in sol.per_processor() {
            let bucket = sys.tasks().subset(sub.accepted()).unwrap();
            prop_assert!(bucket.utilization() <= sys.processor().max_speed() * (1.0 + 1e-9));
        }
        let all = sol.accepted();
        let mut dedup = all.clone();
        dedup.dedup();
        prop_assert_eq!(all.len(), dedup.len());
    }

    /// LTF workload balance: the spread never exceeds the largest task's
    /// utilization (the classic list-scheduling property).
    #[test]
    fn ltf_imbalance_bounded_by_largest_task(sys in arb_system()) {
        let p = partition_tasks(sys.tasks(), sys.processors(), 1.0,
                                PartitionStrategy::LargestTaskFirst);
        let u_max = sys.tasks().iter().map(Task::utilization).fold(0.0, f64::max);
        prop_assert!(p.imbalance(sys.tasks()) <= u_max + 1e-9);
    }
}
