//! Parallel-determinism suite for the multiprocessor layer: partitioning
//! plus local search must be invariant to `DVS_THREADS`.

use dvs_power::presets::{cubic_ideal, xscale_ideal};
use multi_sched::{improve, solve_partitioned, MultiInstance, PartitionStrategy};
use reject_sched::algorithms::MarginalGreedy;
use rt_model::generator::WorkloadSpec;

/// Serialises tests that touch the process-global `DVS_THREADS` variable.
fn with_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var(dvs_exec::THREADS_ENV, n);
    let out = f();
    std::env::remove_var(dvs_exec::THREADS_ENV);
    out
}

#[test]
fn partition_local_search_is_bit_identical_across_thread_counts() {
    for seed in 0..4u64 {
        for (m, cpu) in [(3, cubic_ideal()), (4, xscale_ideal())] {
            let instance = MultiInstance::new(
                WorkloadSpec::new(22, 4.6).seed(seed).generate().unwrap(),
                cpu,
                m,
            )
            .unwrap();
            for strat in [
                PartitionStrategy::LargestTaskFirst,
                PartitionStrategy::Unsorted,
            ] {
                let run = |threads: &str| {
                    with_threads(threads, || {
                        let base = solve_partitioned(&instance, strat, &MarginalGreedy).unwrap();
                        improve(&instance, &base, 300).unwrap()
                    })
                };
                let reference = run("1");
                for threads in ["2", "4", "8"] {
                    let s = run(threads);
                    assert_eq!(
                        s.accepted(),
                        reference.accepted(),
                        "seed {seed} m {m}: accepted set diverged at {threads} threads"
                    );
                    assert_eq!(
                        s.cost().to_bits(),
                        reference.cost().to_bits(),
                        "seed {seed} m {m}: cost bits diverged at {threads} threads"
                    );
                }
            }
        }
    }
}
