use std::fmt;

use rt_model::{Task, TaskId, TaskSet};

/// How tasks are assigned to processors before per-processor rejection.
///
/// * [`PartitionStrategy::LargestTaskFirst`] — the authors' **Algorithm
///   LTF**, adapted to periodic tasks: sort by utilization `cᵢ/pᵢ`
///   descending and place each task on the processor with the minimum
///   workload so far (for frame-based/energy minimisation this carries a
///   1.13-approximation bound in the companion papers).
/// * [`PartitionStrategy::Unsorted`] — the authors' **Algorithm RAND**
///   reference: same min-workload placement but in arrival order.
/// * [`PartitionStrategy::FirstFit`] — classic bin-packing first-fit against
///   the capacity `s_max`: each task goes to the first processor where it
///   still fits; tasks that fit nowhere are parked on the least-loaded
///   processor (the rejection stage will deal with them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Sort by utilization descending; place on the least-loaded processor.
    LargestTaskFirst,
    /// Arrival order; place on the least-loaded processor.
    Unsorted,
    /// Arrival order; first processor with room at `s_max`, else least-loaded.
    FirstFit,
}

impl fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PartitionStrategy::LargestTaskFirst => "LTF",
            PartitionStrategy::Unsorted => "RAND",
            PartitionStrategy::FirstFit => "FF",
        };
        write!(f, "{name}")
    }
}

/// A task-to-processor assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// `buckets[k]` holds the identifiers assigned to processor `k`.
    buckets: Vec<Vec<TaskId>>,
}

impl Partition {
    /// The per-processor identifier lists.
    #[must_use]
    pub fn buckets(&self) -> &[Vec<TaskId>] {
        &self.buckets
    }

    /// Number of processors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether there are no processors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Utilization of each bucket under `tasks`.
    ///
    /// # Panics
    ///
    /// Panics if a bucket references an identifier not in `tasks`.
    #[must_use]
    pub fn workloads(&self, tasks: &TaskSet) -> Vec<f64> {
        self.buckets
            .iter()
            .map(|ids| {
                ids.iter()
                    .map(|id| {
                        tasks
                            .get(*id)
                            .expect("partition ids come from the set")
                            .utilization()
                    })
                    .sum()
            })
            .collect()
    }

    /// The spread `max workload − min workload` — a balance metric used by
    /// the experiments.
    #[must_use]
    pub fn imbalance(&self, tasks: &TaskSet) -> f64 {
        let w = self.workloads(tasks);
        let max = w.iter().copied().fold(0.0, f64::max);
        let min = w.iter().copied().fold(f64::INFINITY, f64::min);
        (max - min).max(0.0)
    }
}

/// Partitions `tasks` onto `m` processors with maximum speed `s_max` using
/// the given strategy.
///
/// Every task is assigned somewhere (the rejection stage handles overload);
/// an empty task set yields `m` empty buckets.
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn partition_tasks(
    tasks: &TaskSet,
    m: usize,
    s_max: f64,
    strategy: PartitionStrategy,
) -> Partition {
    assert!(m > 0, "at least one processor is required");
    let mut order: Vec<Task> = tasks.iter().copied().collect();
    if strategy == PartitionStrategy::LargestTaskFirst {
        order.sort_by(|a, b| {
            b.utilization()
                .partial_cmp(&a.utilization())
                .expect("utilizations are not NaN")
                .then(a.id().index().cmp(&b.id().index()))
        });
    }
    let mut buckets: Vec<Vec<TaskId>> = vec![Vec::new(); m];
    let mut loads = vec![0.0f64; m];
    for t in &order {
        let k = match strategy {
            PartitionStrategy::LargestTaskFirst | PartitionStrategy::Unsorted => argmin(&loads),
            PartitionStrategy::FirstFit => loads
                .iter()
                .position(|&w| w + t.utilization() <= s_max * (1.0 + 1e-9))
                .unwrap_or_else(|| argmin(&loads)),
        };
        buckets[k].push(t.id());
        loads[k] += t.utilization();
    }
    Partition { buckets }
}

fn argmin(loads: &[f64]) -> usize {
    loads
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("loads are not NaN"))
        .map(|(i, _)| i)
        .expect("at least one processor")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_model::generator::WorkloadSpec;

    fn tasks(us: &[f64]) -> TaskSet {
        TaskSet::try_from_tasks(
            us.iter()
                .enumerate()
                .map(|(i, &u)| Task::new(i, u * 10.0, 10).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn every_task_assigned_exactly_once() {
        let ts = WorkloadSpec::new(20, 3.0).seed(1).generate().unwrap();
        for strat in [
            PartitionStrategy::LargestTaskFirst,
            PartitionStrategy::Unsorted,
            PartitionStrategy::FirstFit,
        ] {
            let p = partition_tasks(&ts, 4, 1.0, strat);
            let mut all: Vec<TaskId> = p.buckets().iter().flatten().copied().collect();
            all.sort();
            let mut expect: Vec<TaskId> = ts.iter().map(Task::id).collect();
            expect.sort();
            assert_eq!(all, expect, "{strat}");
        }
    }

    #[test]
    fn ltf_balances_better_than_unsorted_on_adversarial_input() {
        // Ascending sizes are adversarial for unsorted min-load placement.
        let ts = tasks(&[0.1, 0.1, 0.1, 0.1, 0.5, 0.5]);
        let ltf = partition_tasks(&ts, 2, 1.0, PartitionStrategy::LargestTaskFirst);
        let rand = partition_tasks(&ts, 2, 1.0, PartitionStrategy::Unsorted);
        assert!(ltf.imbalance(&ts) <= rand.imbalance(&ts) + 1e-12);
        // LTF achieves a perfect split here: 0.5+0.1+0.1 per side.
        assert!(ltf.imbalance(&ts) < 1e-12);
    }

    #[test]
    fn first_fit_respects_capacity_when_possible() {
        let ts = tasks(&[0.6, 0.6, 0.6, 0.2]);
        let p = partition_tasks(&ts, 3, 1.0, PartitionStrategy::FirstFit);
        for (ids, w) in p.buckets().iter().zip(p.workloads(&ts)) {
            let _ = ids;
            assert!(w <= 1.0 + 1e-9);
        }
        // First-fit puts the 0.2 task on processor 0 next to the first 0.6.
        assert_eq!(p.buckets()[0].len(), 2);
    }

    #[test]
    fn overflow_parks_on_least_loaded() {
        // Nothing fits: three 1.5-utilization tasks on two unit processors.
        let ts = tasks(&[1.5, 1.5, 1.5]);
        let p = partition_tasks(&ts, 2, 1.0, PartitionStrategy::FirstFit);
        let total: usize = p.buckets().iter().map(Vec::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn empty_set_yields_empty_buckets() {
        let p = partition_tasks(&TaskSet::new(), 3, 1.0, PartitionStrategy::LargestTaskFirst);
        assert_eq!(p.len(), 3);
        assert!(p.buckets().iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        let _ = partition_tasks(&TaskSet::new(), 0, 1.0, PartitionStrategy::Unsorted);
    }

    #[test]
    fn deterministic() {
        let ts = WorkloadSpec::new(15, 2.0).seed(3).generate().unwrap();
        let a = partition_tasks(&ts, 3, 1.0, PartitionStrategy::LargestTaskFirst);
        let b = partition_tasks(&ts, 3, 1.0, PartitionStrategy::LargestTaskFirst);
        assert_eq!(a, b);
    }
}
