//! Fluid lower bound for the multiprocessor rejection problem.

use reject_sched::bounds::FractionalKnapsack;
use reject_sched::SchedError;

use crate::MultiInstance;

/// Iterations of ternary search over the convex fluid cost.
const TERNARY_ITERS: usize = 120;

/// Lower bound on the optimal multiprocessor cost by **fluid relaxation**:
/// tasks may be accepted fractionally, and an accepted utilization `t` may
/// be spread arbitrarily over the `m` processors. By convexity of the
/// energy rate the balanced spread `t/m` per processor is energetically
/// optimal, so the relaxed cost is
///
/// ```text
/// f(t) = m · L · rate(t/m) + V_total − W(t),     t ∈ [0, min(m·s_max, U)]
/// ```
///
/// with `W` the fractional-knapsack shelter function. `f` is convex; its
/// minimum is a valid lower bound on any partitioned (or even global)
/// schedule's cost, and is the normaliser used by experiment F7.
///
/// # Errors
///
/// [`SchedError::Power`] only on internal oracle failures.
///
/// # Examples
///
/// ```
/// use dvs_power::presets::cubic_ideal;
/// use multi_sched::{fractional_lower_bound_multi, MultiInstance};
/// use rt_model::generator::WorkloadSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = MultiInstance::new(WorkloadSpec::new(20, 3.0).seed(4).generate()?,
///                              cubic_ideal(), 4)?;
/// let lb = fractional_lower_bound_multi(&sys)?;
/// assert!(lb >= 0.0);
/// # Ok(())
/// # }
/// ```
pub fn fractional_lower_bound_multi(instance: &MultiInstance) -> Result<f64, SchedError> {
    let ks = FractionalKnapsack::new(instance.tasks().iter());
    let m = instance.processors() as f64;
    let cap = instance.capacity().min(ks.total_utilization());
    let l = instance.hyper_period() as f64;
    let f = |t: f64| -> Result<f64, SchedError> {
        let per_cpu = (t / m).min(instance.processor().max_speed());
        let rate = instance.processor().energy_rate(per_cpu)?;
        Ok(m * l * rate + ks.total_penalty() - ks.sheltered(t))
    };
    let mut best = f(0.0)?.min(f(cap)?);
    for &k in ks.kinks() {
        if k > 0.0 && k < cap {
            best = best.min(f(k)?);
        }
    }
    let (mut lo, mut hi) = (0.0f64, cap);
    for _ in 0..TERNARY_ITERS {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if f(m1)? <= f(m2)? {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    best = best.min(f(0.5 * (lo + hi))?);
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_global_greedy, solve_partitioned, PartitionStrategy};
    use dvs_power::presets::cubic_ideal;
    use reject_sched::algorithms::MarginalGreedy;
    use rt_model::generator::WorkloadSpec;

    fn sys(seed: u64, n: usize, load: f64, m: usize) -> MultiInstance {
        MultiInstance::new(
            WorkloadSpec::new(n, load).seed(seed).generate().unwrap(),
            cubic_ideal(),
            m,
        )
        .unwrap()
    }

    #[test]
    fn bound_below_every_concrete_solution() {
        for seed in 0..6 {
            let instance = sys(seed, 20, 4.0, 4);
            let lb = fractional_lower_bound_multi(&instance).unwrap();
            for sol in [
                solve_partitioned(
                    &instance,
                    PartitionStrategy::LargestTaskFirst,
                    &MarginalGreedy,
                )
                .unwrap(),
                solve_partitioned(&instance, PartitionStrategy::Unsorted, &MarginalGreedy).unwrap(),
                solve_global_greedy(&instance).unwrap(),
            ] {
                assert!(
                    lb <= sol.cost() + 1e-6,
                    "seed {seed}: lb {lb} above {} = {}",
                    sol.label(),
                    sol.cost()
                );
            }
        }
    }

    #[test]
    fn bound_grows_with_load() {
        let mut last = 0.0;
        for &load in &[1.0, 2.0, 4.0, 8.0] {
            let instance = sys(1, 20, load, 4);
            let lb = fractional_lower_bound_multi(&instance).unwrap();
            assert!(lb >= last - 1e-9, "load {load}");
            last = lb;
        }
    }

    #[test]
    fn more_processors_lower_bound() {
        let tasks = WorkloadSpec::new(20, 4.0).seed(2).generate().unwrap();
        let lb2 = fractional_lower_bound_multi(
            &MultiInstance::new(tasks.clone(), cubic_ideal(), 2).unwrap(),
        )
        .unwrap();
        let lb8 =
            fractional_lower_bound_multi(&MultiInstance::new(tasks, cubic_ideal(), 8).unwrap())
                .unwrap();
        assert!(lb8 <= lb2 + 1e-9);
    }
}
