//! Processor-count synthesis under an energy budget.
//!
//! The research line's second theme asks the synthesis question: *how many
//! processors must be allocated* so that a task set meets its deadlines
//! **and** a given energy budget? More processors allow lower speeds
//! (convexity: `m·L·rate(U/m)` falls with `m` down to the critical-speed
//! floor), so the budget pushes the count up while allocation cost pushes
//! it down — the minimum feasible count is the answer.
//!
//! [`min_processors`] searches upward from the capacity bound
//! `⌈U/s_max⌉`, partitioning with Largest-Task-First at each candidate
//! count and checking the resulting energy, mirroring the companion
//! RS-LEUF strategy ("assign tasks … by increasing the number of available
//! processors until the energy consumption of the resulting schedule is no
//! more than the constraint").

use dvs_power::Processor;
use reject_sched::SchedError;
use rt_model::TaskSet;

use crate::{partition_tasks, Partition, PartitionStrategy};

/// Outcome of a successful synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisResult {
    processors: usize,
    partition: Partition,
    energy: f64,
}

impl SynthesisResult {
    /// Number of processors allocated.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// The task partition onto those processors.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Total energy per hyper-period of the allocation.
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.energy
    }
}

/// The unreachable-below energy floor: every task at the critical speed on
/// its own processor, `Σ L·uᵢ·P(s*)/s*` (with `s* = max(s_crit, uᵢ)` per
/// task when a task alone exceeds the critical speed).
///
/// # Errors
///
/// Propagates oracle errors for tasks with `uᵢ > s_max`.
pub fn energy_floor(tasks: &TaskSet, cpu: &Processor) -> Result<f64, SchedError> {
    let l = tasks.hyper_period() as f64;
    let mut total = 0.0;
    for t in tasks.iter() {
        total += cpu.energy_rate(t.utilization())? * l;
    }
    Ok(total)
}

/// Energy per hyper-period of one concrete partition.
///
/// # Errors
///
/// Propagates oracle errors when a bucket exceeds `s_max`.
pub fn partition_energy(
    tasks: &TaskSet,
    cpu: &Processor,
    partition: &Partition,
) -> Result<f64, SchedError> {
    let l = tasks.hyper_period() as f64;
    let mut total = 0.0;
    for load in partition.workloads(tasks) {
        total += cpu.energy_rate(load)? * l;
    }
    Ok(total)
}

/// Minimum processor count (≤ `m_max`) whose LTF partition meets both the
/// deadlines and the energy budget; `None` when even `m_max` processors
/// cannot (the budget may lie below [`energy_floor`]).
///
/// # Errors
///
/// * [`SchedError::InvalidParameter`] for a non-finite/negative budget or
///   `m_max == 0`.
/// * [`SchedError::Power`] if some single task exceeds `s_max` (synthesis
///   requires every task to be placeable).
///
/// # Examples
///
/// ```
/// use dvs_power::presets::xscale_ideal;
/// use multi_sched::synthesis::min_processors;
/// use rt_model::generator::WorkloadSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tasks = WorkloadSpec::new(12, 2.4).max_task_utilization(1.0).seed(1).generate()?;
/// let cpu = xscale_ideal();
/// // A generous budget: the capacity bound ⌈2.4⌉ = 3 processors suffice.
/// let r = min_processors(&tasks, &cpu, 1e9, 64)?.unwrap();
/// assert_eq!(r.processors(), 3);
/// # Ok(())
/// # }
/// ```
pub fn min_processors(
    tasks: &TaskSet,
    cpu: &Processor,
    energy_budget: f64,
    m_max: usize,
) -> Result<Option<SynthesisResult>, SchedError> {
    // +∞ is a legitimate "count only" budget; NaN and negatives are not.
    if energy_budget.is_nan() || energy_budget < 0.0 {
        return Err(SchedError::InvalidParameter {
            name: "energy_budget",
            value: energy_budget,
        });
    }
    if m_max == 0 {
        return Err(SchedError::InvalidParameter {
            name: "m_max",
            value: 0.0,
        });
    }
    // Every task must fit somewhere.
    for t in tasks.iter() {
        if !cpu.is_feasible(t.utilization()) {
            return Err(dvs_power::PowerError::InfeasibleDemand {
                utilization: t.utilization(),
                max_speed: cpu.max_speed(),
            }
            .into());
        }
    }
    if tasks.is_empty() {
        return Ok(Some(SynthesisResult {
            processors: 1,
            partition: partition_tasks(
                tasks,
                1,
                cpu.max_speed(),
                PartitionStrategy::LargestTaskFirst,
            ),
            energy: 0.0,
        }));
    }
    // Early impossibility: below the floor no count ever suffices.
    if energy_budget < energy_floor(tasks, cpu)? * (1.0 - 1e-9) {
        return Ok(None);
    }
    let m_min = (tasks.utilization() / cpu.max_speed()).ceil().max(1.0) as usize;
    for m in m_min..=m_max.max(m_min) {
        if m > m_max {
            break;
        }
        let partition = partition_tasks(
            tasks,
            m,
            cpu.max_speed(),
            PartitionStrategy::LargestTaskFirst,
        );
        // LTF may still overload a bucket near the capacity bound; skip to
        // the next count (singletons at m = n always fit).
        let feasible = partition
            .workloads(tasks)
            .into_iter()
            .all(|w| cpu.is_feasible(w));
        if !feasible {
            continue;
        }
        let energy = partition_energy(tasks, cpu, &partition)?;
        if energy <= energy_budget * (1.0 + 1e-9) {
            return Ok(Some(SynthesisResult {
                processors: m,
                partition,
                energy,
            }));
        }
    }
    Ok(None)
}

/// The energy of the *cheapest-count* allocation (`m = ⌈U/s_max⌉`,
/// growing until LTF fits) — the natural `E_max` endpoint for budget
/// sweeps, mirroring the companion paper's `(E_max − E_min)γ + E_min`
/// parameterisation.
///
/// # Errors
///
/// Same conditions as [`min_processors`].
pub fn energy_at_min_count(tasks: &TaskSet, cpu: &Processor) -> Result<f64, SchedError> {
    match min_processors(tasks, cpu, f64::INFINITY, tasks.len().max(1))? {
        Some(r) => Ok(r.energy()),
        None => Err(SchedError::VerificationFailed {
            reason: "no feasible allocation exists even with one processor per task".into(),
        }),
    }
}

/// Convenience view of a synthesis sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Budget ratio γ (0 = floor, 1 = energy of the min-count allocation).
    pub gamma: f64,
    /// Processors required at that budget.
    pub processors: usize,
}

/// Sweeps the budget `E(γ) = E_floor + γ·(E_mincount − E_floor)` and
/// reports the processor count needed at each γ — the sweep behind
/// experiment E6.
///
/// # Errors
///
/// Same conditions as [`min_processors`].
pub fn count_vs_budget(
    tasks: &TaskSet,
    cpu: &Processor,
    gammas: &[f64],
    m_max: usize,
) -> Result<Vec<SweepPoint>, SchedError> {
    let floor = energy_floor(tasks, cpu)?;
    let top = energy_at_min_count(tasks, cpu)?;
    let mut out = Vec::with_capacity(gammas.len());
    for &gamma in gammas {
        let budget = floor + gamma * (top - floor);
        let processors = match min_processors(tasks, cpu, budget, m_max)? {
            Some(r) => r.processors(),
            None => m_max + 1, // sentinel: not achievable within m_max
        };
        out.push(SweepPoint { gamma, processors });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_power::presets::{cubic_ideal, xscale_ideal};
    use rt_model::generator::WorkloadSpec;

    fn workload(seed: u64, n: usize, load: f64) -> TaskSet {
        WorkloadSpec::new(n, load)
            .max_task_utilization(1.0)
            .seed(seed)
            .generate()
            .unwrap()
    }

    #[test]
    fn generous_budget_gives_the_capacity_bound() {
        let tasks = workload(1, 12, 2.4);
        let r = min_processors(&tasks, &xscale_ideal(), 1e9, 64)
            .unwrap()
            .unwrap();
        assert_eq!(r.processors(), 3); // ⌈2.4⌉
    }

    #[test]
    fn tighter_budgets_need_more_processors() {
        let tasks = workload(2, 12, 2.0);
        let cpu = xscale_ideal();
        let top = energy_at_min_count(&tasks, &cpu).unwrap();
        let floor = energy_floor(&tasks, &cpu).unwrap();
        assert!(floor < top);
        let mut last = 0;
        for &gamma in &[1.0, 0.6, 0.3, 0.1] {
            let budget = floor + gamma * (top - floor);
            let r = min_processors(&tasks, &cpu, budget, 64).unwrap().unwrap();
            assert!(r.processors() >= last, "γ = {gamma}");
            assert!(r.energy() <= budget * (1.0 + 1e-9));
            last = r.processors();
        }
        assert!(
            last > 2,
            "the tightest budget should force extra processors"
        );
    }

    #[test]
    fn budget_below_the_floor_is_impossible() {
        let tasks = workload(3, 8, 1.5);
        let cpu = xscale_ideal();
        let floor = energy_floor(&tasks, &cpu).unwrap();
        assert_eq!(min_processors(&tasks, &cpu, floor * 0.5, 64).unwrap(), None);
        // At (or just above) the floor, one processor per task suffices.
        let r = min_processors(&tasks, &cpu, floor * (1.0 + 1e-6), 64).unwrap();
        assert!(r.is_some());
    }

    #[test]
    fn zero_leakage_floor_is_zero() {
        // With P = s³ and unbounded-below speeds, per-task energy at the
        // critical speed (→ 0) vanishes: the floor is 0, so *any* positive
        // budget is eventually satisfiable with enough processors... but
        // only up to m = n (singletons); beyond that no further gain.
        let tasks = workload(3, 6, 1.2);
        let cpu = cubic_ideal();
        let floor = energy_floor(&tasks, &cpu).unwrap();
        assert!(
            floor > 0.0,
            "cubic floor is Σ L·uᵢ³ > 0 at singleton speeds"
        );
        let r = min_processors(&tasks, &cpu, floor * 1.0001, tasks.len()).unwrap();
        assert_eq!(r.map(|x| x.processors()), Some(tasks.len()));
    }

    #[test]
    fn oversized_task_is_an_error() {
        let tasks =
            rt_model::TaskSet::try_from_tasks(vec![rt_model::Task::new(0, 15.0, 10).unwrap()])
                .unwrap();
        assert!(matches!(
            min_processors(&tasks, &cubic_ideal(), 1e9, 8),
            Err(SchedError::Power(_))
        ));
    }

    #[test]
    fn parameter_validation() {
        let tasks = workload(0, 4, 1.0);
        let cpu = cubic_ideal();
        assert!(min_processors(&tasks, &cpu, -1.0, 8).is_err());
        assert!(min_processors(&tasks, &cpu, f64::NAN, 8).is_err());
        assert!(min_processors(&tasks, &cpu, 1.0, 0).is_err());
    }

    #[test]
    fn sweep_is_monotone() {
        let tasks = workload(5, 10, 1.8);
        let cpu = xscale_ideal();
        let points = count_vs_budget(&tasks, &cpu, &[0.05, 0.2, 0.5, 0.8, 1.0], 64).unwrap();
        for w in points.windows(2) {
            assert!(
                w[0].processors >= w[1].processors,
                "more budget cannot need more processors: {points:?}"
            );
        }
    }

    #[test]
    fn empty_set_needs_one_idle_processor() {
        let r = min_processors(&rt_model::TaskSet::new(), &cubic_ideal(), 0.0, 4)
            .unwrap()
            .unwrap();
        assert_eq!(r.processors(), 1);
        assert_eq!(r.energy(), 0.0);
    }
}
