//! # multi-sched — partitioned multiprocessor DVS scheduling with rejection
//!
//! Extension crate: the target paper is a uniprocessor result, but it grew
//! out of the authors' multiprocessor energy-efficiency line (LTF-based
//! partitioning with approximation bounds). This crate combines the two:
//! **partition** a periodic task set over `M` identical DVS processors, then
//! run any uniprocessor **rejection** policy on every processor.
//!
//! Components:
//!
//! * [`PartitionStrategy`] — Largest-Task-First (the authors' LTF: sort by
//!   utilization, place on the least-loaded processor), the unsorted greedy
//!   baseline (their Algorithm RAND), and first-fit.
//! * [`MultiInstance`] — `M` identical processors plus the shared task set.
//! * [`solve_partitioned`] — partition, then per-processor rejection via any
//!   [`RejectionPolicy`](reject_sched::RejectionPolicy); yields a
//!   [`MultiSolution`] with per-processor sub-solutions.
//! * [`fractional_lower_bound_multi`] — fluid relaxation (by convexity, a
//!   balanced spread over processors is energetically optimal) for
//!   normalising experiment results.
//!
//! # Examples
//!
//! ```
//! use dvs_power::presets::xscale_ideal;
//! use multi_sched::{solve_partitioned, MultiInstance, PartitionStrategy};
//! use reject_sched::algorithms::MarginalGreedy;
//! use rt_model::generator::WorkloadSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tasks = WorkloadSpec::new(24, 5.0).seed(9).generate()?;    // demand for >4 CPUs
//! let sys = MultiInstance::new(tasks, xscale_ideal(), 4)?;
//! let sol = solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy)?;
//! sol.verify(&sys)?;
//! println!("cost = {}", sol.cost());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod consolidate;
mod instance;
mod local_search;
mod partition;
mod solution;
mod solver;

pub mod synthesis;

pub use bounds::fractional_lower_bound_multi;
pub use consolidate::consolidate;
pub use instance::MultiInstance;
pub use local_search::improve;
pub use partition::{partition_tasks, Partition, PartitionStrategy};
pub use solution::MultiSolution;
pub use solver::{solve_global_greedy, solve_partitioned};
