//! Leakage-aware processor consolidation (the `…+FF` pass).
//!
//! After partition + rejection, several processors may carry workloads
//! below the critical speed `s*`. Each of them runs its tasks at `s*`
//! anyway (running slower wastes energy), so their *energy per cycle* is
//! identical — but every additional powered processor costs idle leakage
//! (dormant-disable parts) or sleep-transition overhead. The companion
//! paper's Algorithm **LA+LTF+FF** therefore re-packs the sub-critical
//! processors' tasks first-fit into as few processors as possible, capped
//! at the critical speed so the re-packing never raises any task's speed
//! beyond `s*`.
//!
//! This module reproduces that pass on top of any [`MultiSolution`]: the
//! consolidated solution uses (weakly) fewer active processors, is
//! feasibility-preserving by construction, and never costs more under the
//! workspace's energy model.

use reject_sched::{SchedError, Solution};
use rt_model::{Task, TaskId};

use crate::solver::solution_from_buckets;
use crate::{MultiInstance, MultiSolution};

/// Re-packs the accepted tasks of sub-critical processors (workload ≤ `s*`)
/// first-fit-decreasing into bins of capacity `s* `, leaving super-critical
/// processors untouched. Returns the consolidated solution (which may equal
/// the input when no packing improvement exists).
///
/// # Errors
///
/// Propagates cost-oracle errors (cannot occur for a verified input
/// solution).
///
/// # Examples
///
/// ```
/// use dvs_power::presets::xscale_ideal;
/// use multi_sched::{consolidate, solve_partitioned, MultiInstance, PartitionStrategy};
/// use reject_sched::algorithms::MarginalGreedy;
/// use rt_model::generator::WorkloadSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = MultiInstance::new(
///     WorkloadSpec::new(12, 0.8).seed(3).generate()?,   // light load, many CPUs
///     xscale_ideal(),
///     6,
/// )?;
/// let sol = solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy)?;
/// let packed = consolidate(&sys, &sol)?;
/// packed.verify(&sys)?;
/// assert!(packed.active_processors() <= sol.active_processors());
/// # Ok(())
/// # }
/// ```
pub fn consolidate(
    instance: &MultiInstance,
    solution: &MultiSolution,
) -> Result<MultiSolution, SchedError> {
    let s_crit = instance.processor().critical_speed();
    let cap = if s_crit > 0.0 {
        s_crit.min(instance.processor().max_speed())
    } else {
        // No critical speed (no leakage): consolidation cannot help — pack
        // against full capacity instead so the pass still reduces the
        // processor count when asked.
        instance.processor().max_speed()
    };

    // Split processors into sub-critical (workload ≤ cap) and the rest.
    let mut kept: Vec<Vec<TaskId>> = Vec::new();
    let mut movable: Vec<Task> = Vec::new();
    let mut movable_processors = 0usize;
    for sub in solution.per_processor() {
        let bucket = instance.tasks().subset(sub.accepted())?;
        if !sub.accepted().is_empty() && bucket.utilization() <= cap * (1.0 + 1e-9) {
            movable_processors += 1;
            movable.extend(bucket.iter().copied());
        } else {
            kept.push(sub.accepted().to_vec());
        }
    }
    if movable_processors <= 1 {
        return Ok(solution.clone());
    }

    // First-fit-decreasing into bins of capacity `cap`, bounded by the
    // number of processors freed up.
    movable.sort_by(|a, b| {
        b.utilization()
            .partial_cmp(&a.utilization())
            .expect("utilizations are not NaN")
            .then(a.id().index().cmp(&b.id().index()))
    });
    let mut bins: Vec<(f64, Vec<TaskId>)> = Vec::new();
    for t in &movable {
        match bins
            .iter_mut()
            .find(|(load, _)| *load + t.utilization() <= cap * (1.0 + 1e-9))
        {
            Some((load, ids)) => {
                *load += t.utilization();
                ids.push(t.id());
            }
            None => bins.push((t.utilization(), vec![t.id()])),
        }
    }
    if bins.len() >= movable_processors {
        return Ok(solution.clone()); // no improvement: keep the original
    }
    let mut buckets = kept;
    buckets.extend(bins.into_iter().map(|(_, ids)| ids));
    // Pad with empty (powered-off) processors up to m.
    while buckets.len() < instance.processors() {
        buckets.push(Vec::new());
    }
    let label = format!("{}+FF", solution.label());
    solution_from_buckets(instance, label, buckets)
}

impl MultiSolution {
    /// Number of processors with at least one accepted task.
    #[must_use]
    pub fn active_processors(&self) -> usize {
        self.per_processor()
            .iter()
            .filter(|s: &&Solution| !s.accepted().is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_partitioned, PartitionStrategy};
    use dvs_power::presets::{cubic_ideal, xscale_ideal};
    use reject_sched::algorithms::MarginalGreedy;
    use rt_model::generator::{PenaltyModel, WorkloadSpec};

    fn light_system(seed: u64, m: usize) -> MultiInstance {
        MultiInstance::new(
            WorkloadSpec::new(3 * m, 0.15 * m as f64)
                .penalty_model(PenaltyModel::Uniform { lo: 1.0, hi: 2.0 })
                .seed(seed)
                .generate()
                .unwrap(),
            xscale_ideal(),
            m,
        )
        .unwrap()
    }

    #[test]
    fn consolidation_reduces_active_processors_under_light_load() {
        // Per-CPU load 0.15 < s* ≈ 0.297: roughly two loads fit per s* bin.
        let mut reduced_somewhere = false;
        for seed in 0..5 {
            let sys = light_system(seed, 6);
            let sol = solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy)
                .unwrap();
            let packed = consolidate(&sys, &sol).unwrap();
            packed.verify(&sys).unwrap();
            assert!(packed.active_processors() <= sol.active_processors());
            assert_eq!(
                packed.accepted(),
                sol.accepted(),
                "same tasks, new placement"
            );
            if packed.active_processors() < sol.active_processors() {
                reduced_somewhere = true;
            }
        }
        assert!(
            reduced_somewhere,
            "consolidation never fired on light loads"
        );
    }

    #[test]
    fn consolidation_never_costs_more() {
        for seed in 0..5 {
            let sys = light_system(seed, 6);
            let sol = solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy)
                .unwrap();
            let packed = consolidate(&sys, &sol).unwrap();
            // Energy per cycle at or below s* is constant, so re-packing
            // sub-critical work is cost-neutral for sleep-mode CPUs.
            assert!(packed.cost() <= sol.cost() * (1.0 + 1e-9) + 1e-9);
        }
    }

    #[test]
    fn respects_the_critical_speed_cap() {
        let sys = light_system(1, 6);
        let s_crit = sys.processor().critical_speed();
        let sol =
            solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy).unwrap();
        let packed = consolidate(&sys, &sol).unwrap();
        for sub in packed.per_processor() {
            let u = sys.tasks().subset(sub.accepted()).unwrap().utilization();
            assert!(u <= s_crit * (1.0 + 1e-6), "bin load {u} above s* {s_crit}");
        }
    }

    #[test]
    fn heavy_processors_left_untouched() {
        // One heavily loaded CPU (above s*) plus light ones: the heavy
        // bucket must survive verbatim.
        let sys = MultiInstance::new(
            WorkloadSpec::new(8, 1.4)
                .penalty_model(PenaltyModel::Uniform { lo: 5.0, hi: 9.0 })
                .seed(3)
                .generate()
                .unwrap(),
            xscale_ideal(),
            4,
        )
        .unwrap();
        let sol =
            solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy).unwrap();
        let packed = consolidate(&sys, &sol).unwrap();
        packed.verify(&sys).unwrap();
        assert_eq!(packed.accepted(), sol.accepted());
    }

    #[test]
    fn no_leakage_means_full_capacity_packing() {
        // cubic_ideal has s* = 0: the pass packs against s_max instead and
        // still reduces the processor count.
        let sys = MultiInstance::new(
            WorkloadSpec::new(9, 0.9)
                .penalty_model(PenaltyModel::Uniform { lo: 1.0, hi: 2.0 })
                .seed(2)
                .generate()
                .unwrap(),
            cubic_ideal(),
            6,
        )
        .unwrap();
        let sol =
            solve_partitioned(&sys, PartitionStrategy::LargestTaskFirst, &MarginalGreedy).unwrap();
        let packed = consolidate(&sys, &sol).unwrap();
        packed.verify(&sys).unwrap();
        assert!(packed.active_processors() <= 2);
    }
}
