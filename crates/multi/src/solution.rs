use std::collections::HashSet;
use std::fmt;

use edf_sim::{SimReport, Simulator, SpeedProfile};
use reject_sched::{SchedError, Solution};
use rt_model::TaskId;

use crate::MultiInstance;

/// A multiprocessor solution: one uniprocessor [`Solution`] per processor.
///
/// The cost convention matches the uniprocessor case — energies add across
/// processors, and each rejected task's penalty is counted exactly once
/// (a task rejected "everywhere" is simply a rejected task).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSolution {
    label: String,
    per_processor: Vec<Solution>,
    penalty: f64,
}

impl MultiSolution {
    pub(crate) fn new(
        instance: &MultiInstance,
        label: String,
        per_processor: Vec<Solution>,
    ) -> Result<Self, SchedError> {
        let mut seen: HashSet<TaskId> = HashSet::new();
        for sol in &per_processor {
            for id in sol.accepted() {
                if !seen.insert(*id) {
                    return Err(SchedError::VerificationFailed {
                        reason: format!("task {id} accepted on two processors"),
                    });
                }
            }
        }
        // Sum in per-processor order, not HashSet order: set iteration is
        // seeded per process, and a varying float summation order would make
        // the cost differ by ulps between runs of the same program.
        let accepted_penalty: f64 = per_processor
            .iter()
            .flat_map(|sol| sol.accepted())
            .map(|id| {
                instance
                    .tasks()
                    .get(*id)
                    .map(rt_model::Task::penalty)
                    .unwrap_or(0.0)
            })
            .sum();
        Ok(MultiSolution {
            label,
            per_processor,
            penalty: instance.total_penalty() - accepted_penalty,
        })
    }

    /// Human-readable label (strategy + policy names).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The per-processor sub-solutions.
    #[must_use]
    pub fn per_processor(&self) -> &[Solution] {
        &self.per_processor
    }

    /// All accepted identifiers across processors, sorted.
    #[must_use]
    pub fn accepted(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self
            .per_processor
            .iter()
            .flat_map(|s| s.accepted().iter().copied())
            .collect();
        ids.sort();
        ids
    }

    /// Total energy per hyper-period (sum over processors).
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.per_processor.iter().map(Solution::energy).sum()
    }

    /// Total rejection penalty per hyper-period (each task counted once).
    #[must_use]
    pub fn penalty(&self) -> f64 {
        self.penalty
    }

    /// Total cost `energy + penalty`.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.energy() + self.penalty
    }

    /// Fraction of tasks accepted somewhere.
    #[must_use]
    pub fn acceptance_ratio(&self, instance: &MultiInstance) -> f64 {
        if instance.tasks().is_empty() {
            1.0
        } else {
            self.accepted().len() as f64 / instance.tasks().len() as f64
        }
    }

    /// Empirical verification: EDF-simulates every processor's accepted
    /// bucket at its optimal plan over the **global** hyper-period and
    /// checks for deadline misses. Returns one report per non-empty
    /// processor (in `per_processor` order).
    ///
    /// # Errors
    ///
    /// Simulation errors, or [`SchedError::VerificationFailed`] on any
    /// deadline miss.
    pub fn replay(&self, instance: &MultiInstance) -> Result<Vec<SimReport>, SchedError> {
        let mut reports = Vec::new();
        for sub in &self.per_processor {
            if sub.accepted().is_empty() {
                continue;
            }
            let bucket = instance.tasks().subset(sub.accepted())?;
            let plan = instance.processor().plan(bucket.utilization())?;
            let report = Simulator::new(&bucket, instance.processor())
                .with_profile(SpeedProfile::from_plan(&plan))
                .run(instance.hyper_period())?;
            if let Some(miss) = report.misses().first() {
                return Err(SchedError::VerificationFailed {
                    reason: format!("replay observed a deadline miss: {miss}"),
                });
            }
            reports.push(report);
        }
        Ok(reports)
    }

    /// Verifies the solution: disjoint acceptance, every identifier known,
    /// and every per-processor sub-solution feasible on its (identical)
    /// processor.
    ///
    /// # Errors
    ///
    /// [`SchedError::VerificationFailed`] naming the violated property.
    pub fn verify(&self, instance: &MultiInstance) -> Result<(), SchedError> {
        let mut seen = HashSet::new();
        for sol in &self.per_processor {
            for id in sol.accepted() {
                if instance.tasks().get(*id).is_none() {
                    return Err(SchedError::VerificationFailed {
                        reason: format!("accepted task {id} is not in the instance"),
                    });
                }
                if !seen.insert(*id) {
                    return Err(SchedError::VerificationFailed {
                        reason: format!("task {id} accepted on two processors"),
                    });
                }
            }
            let sub = instance.tasks().subset(sol.accepted()).map_err(|e| {
                SchedError::VerificationFailed {
                    reason: e.to_string(),
                }
            })?;
            if !instance.processor().is_feasible(sub.utilization()) {
                return Err(SchedError::VerificationFailed {
                    reason: format!("a processor is overloaded: U = {}", sub.utilization()),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for MultiSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[m={}, accepted={}, energy={:.4}, penalty={:.4}, cost={:.4}]",
            self.label,
            self.per_processor.len(),
            self.accepted().len(),
            self.energy(),
            self.penalty(),
            self.cost()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_partitioned, PartitionStrategy};
    use dvs_power::presets::cubic_ideal;
    use reject_sched::algorithms::MarginalGreedy;
    use rt_model::generator::WorkloadSpec;

    fn sys(seed: u64, n: usize, load: f64, m: usize) -> MultiInstance {
        MultiInstance::new(
            WorkloadSpec::new(n, load).seed(seed).generate().unwrap(),
            cubic_ideal(),
            m,
        )
        .unwrap()
    }

    #[test]
    fn costs_aggregate_consistently() {
        let instance = sys(1, 16, 3.0, 4);
        let sol = solve_partitioned(
            &instance,
            PartitionStrategy::LargestTaskFirst,
            &MarginalGreedy,
        )
        .unwrap();
        sol.verify(&instance).unwrap();
        let per: f64 = sol.per_processor().iter().map(Solution::energy).sum();
        assert!((sol.energy() - per).abs() < 1e-12);
        assert!((sol.cost() - (sol.energy() + sol.penalty())).abs() < 1e-12);
    }

    #[test]
    fn acceptance_ratio_bounds() {
        let instance = sys(2, 10, 6.0, 2); // heavy overload
        let sol = solve_partitioned(
            &instance,
            PartitionStrategy::LargestTaskFirst,
            &MarginalGreedy,
        )
        .unwrap();
        let r = sol.acceptance_ratio(&instance);
        assert!((0.0..=1.0).contains(&r));
        assert!(r < 1.0, "heavy overload must reject something");
    }

    #[test]
    fn replay_validates_every_processor() {
        let instance = sys(4, 16, 3.0, 4);
        let sol = solve_partitioned(
            &instance,
            PartitionStrategy::LargestTaskFirst,
            &MarginalGreedy,
        )
        .unwrap();
        let reports = sol.replay(&instance).unwrap();
        assert!(!reports.is_empty());
        let simulated: f64 = reports.iter().map(edf_sim::SimReport::energy).sum();
        assert!(
            (simulated - sol.energy()).abs() < 1e-6 * sol.energy().max(1.0),
            "simulated {simulated} vs analytic {}",
            sol.energy()
        );
    }

    #[test]
    fn display_shows_label() {
        let instance = sys(3, 8, 2.0, 2);
        let sol =
            solve_partitioned(&instance, PartitionStrategy::Unsorted, &MarginalGreedy).unwrap();
        assert!(sol.to_string().contains("RAND"));
    }
}
