use reject_sched::{Instance, RejectionPolicy, SchedError, Solution};
use rt_model::{Task, TaskId};

use crate::{partition_tasks, MultiInstance, MultiSolution, PartitionStrategy};

/// Partition-then-reject pipeline: assigns every task to a processor with
/// `strategy`, then runs `policy` independently on each processor's bucket.
///
/// Hyper-period note: each per-processor sub-instance keeps its own
/// hyper-period, which may divide the global one; since costs are *rates ×
/// horizon* and every task's energy/penalty scales linearly with the
/// horizon, sub-costs are rescaled to the global hyper-period before
/// aggregation.
///
/// # Errors
///
/// Propagates the per-processor policy's errors.
///
/// # Examples
///
/// See the [crate documentation](crate).
pub fn solve_partitioned(
    instance: &MultiInstance,
    strategy: PartitionStrategy,
    policy: &dyn RejectionPolicy,
) -> Result<MultiSolution, SchedError> {
    let partition = partition_tasks(
        instance.tasks(),
        instance.processors(),
        instance.processor().max_speed(),
        strategy,
    );
    let mut subs = Vec::with_capacity(partition.len());
    for ids in partition.buckets() {
        let bucket = instance.tasks().subset(ids)?;
        let sub_instance = Instance::new(bucket, instance.processor().clone())?;
        let sub = policy.solve(&sub_instance)?;
        // Re-express on the global hyper-period so costs are comparable.
        subs.push(rescale(instance, &sub_instance, sub)?);
    }
    let label = format!("{strategy}+{}", policy.name());
    MultiSolution::new(instance, label, subs)
}

/// Global greedy alternative: tasks in descending penalty density; each is
/// placed on the least-loaded processor *if* it fits and its penalty beats
/// the marginal energy there, otherwise it is rejected. This couples the
/// placement and rejection decisions that [`solve_partitioned`] makes
/// separately.
///
/// # Errors
///
/// Propagates oracle errors.
pub fn solve_global_greedy(instance: &MultiInstance) -> Result<MultiSolution, SchedError> {
    let mut order: Vec<Task> = instance.tasks().iter().copied().collect();
    order.sort_by(|a, b| {
        b.penalty_density()
            .partial_cmp(&a.penalty_density())
            .expect("densities are not NaN")
            .then(a.id().index().cmp(&b.id().index()))
    });
    let m = instance.processors();
    let mut loads = vec![0.0f64; m];
    let mut buckets: Vec<Vec<TaskId>> = vec![Vec::new(); m];
    // A scratch uniprocessor instance provides the energy oracle.
    let oracle = Instance::new(instance.tasks().clone(), instance.processor().clone())?;
    for t in &order {
        let k = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("loads are not NaN"))
            .map(|(i, _)| i)
            .expect("m > 0");
        if !instance.processor().is_feasible(loads[k] + t.utilization()) {
            continue; // does not fit anywhere better than the min-loaded CPU
        }
        let delta = oracle.marginal_energy(loads[k], t.utilization())?;
        if t.penalty() >= delta {
            loads[k] += t.utilization();
            buckets[k].push(t.id());
        }
    }
    solution_from_buckets(instance, "global-greedy".into(), buckets)
}

/// Builds a [`MultiSolution`] from explicit fully-accepted per-processor
/// buckets (used by the global greedy and the consolidation pass).
pub(crate) fn solution_from_buckets(
    instance: &MultiInstance,
    label: String,
    buckets: Vec<Vec<TaskId>>,
) -> Result<MultiSolution, SchedError> {
    let mut subs = Vec::with_capacity(buckets.len());
    for ids in &buckets {
        let bucket = instance.tasks().subset(ids)?;
        let sub_instance = Instance::new(bucket, instance.processor().clone())?;
        let sub = Solution::for_accepted(&sub_instance, "partitioned", ids.clone())?;
        subs.push(rescale(instance, &sub_instance, sub)?);
    }
    MultiSolution::new(instance, label, subs)
}

/// Re-derives a sub-solution against a sub-instance whose hyper-period is
/// forced to the global one by reconstructing on a padded oracle.
fn rescale(
    global: &MultiInstance,
    sub_instance: &Instance,
    sub: Solution,
) -> Result<Solution, SchedError> {
    let l_global = global.hyper_period();
    let l_sub = sub_instance.hyper_period();
    if l_sub == l_global || l_sub == 0 {
        // Zero sub-hyper-period means an empty bucket: re-express the empty
        // solution against a one-task-free instance is unnecessary; its
        // energy is zero either way (only sleep-mode processors are
        // supported for multi for now, so an idle processor costs nothing).
        return Ok(sub);
    }
    // Energies and penalties are rates × horizon; rebuild the solution on
    // an instance view that shares the global hyper-period by scaling.
    // Solution fields are private — reconstruct via a padded task set that
    // pins the hyper-period without adding workload or penalty.
    let mut padded = sub_instance.tasks().clone();
    let pad_id = padded
        .iter()
        .map(|t| t.id().index())
        .max()
        .map_or(usize::MAX, |x| x);
    // A zero-cycle, zero-penalty task with the global hyper-period as its
    // period pins L without changing any cost.
    let pad = Task::new(pad_id.wrapping_add(1), 0.0, l_global)?;
    padded.push(pad)?;
    let pinned = Instance::new(padded, sub_instance.processor().clone())?;
    Solution::for_accepted(&pinned, "partitioned", sub.accepted().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_power::presets::{cubic_ideal, xscale_ideal};
    use reject_sched::algorithms::{BranchBound, MarginalGreedy};
    use rt_model::generator::WorkloadSpec;
    use rt_model::TaskSet;

    fn sys(seed: u64, n: usize, load: f64, m: usize) -> MultiInstance {
        MultiInstance::new(
            WorkloadSpec::new(n, load).seed(seed).generate().unwrap(),
            cubic_ideal(),
            m,
        )
        .unwrap()
    }

    #[test]
    fn partitioned_solutions_verify_for_all_strategies() {
        for strat in [
            PartitionStrategy::LargestTaskFirst,
            PartitionStrategy::Unsorted,
            PartitionStrategy::FirstFit,
        ] {
            for seed in 0..4 {
                let instance = sys(seed, 20, 4.0, 4);
                let sol = solve_partitioned(&instance, strat, &MarginalGreedy).unwrap();
                sol.verify(&instance).unwrap();
            }
        }
    }

    #[test]
    fn single_processor_matches_uniprocessor_solver() {
        let tasks = WorkloadSpec::new(10, 1.5).seed(7).generate().unwrap();
        let multi = MultiInstance::new(tasks.clone(), cubic_ideal(), 1).unwrap();
        let uni = Instance::new(tasks, cubic_ideal()).unwrap();
        let ms = solve_partitioned(&multi, PartitionStrategy::LargestTaskFirst, &MarginalGreedy)
            .unwrap();
        // Same oracle, same tasks, same policy — but partitioning reorders
        // the greedy input by utilization; compare against the best of the
        // two orderings by cost bound only.
        let us = MarginalGreedy.solve(&uni).unwrap();
        assert!((ms.cost() - us.cost()).abs() < 1e-6 * us.cost().max(1.0));
    }

    #[test]
    fn more_processors_never_cost_more_under_exact_per_cpu_policy() {
        let tasks = WorkloadSpec::new(16, 2.5).seed(3).generate().unwrap();
        let mut last = f64::INFINITY;
        for m in 1..=4 {
            let instance = MultiInstance::new(tasks.clone(), cubic_ideal(), m).unwrap();
            let sol = solve_partitioned(
                &instance,
                PartitionStrategy::LargestTaskFirst,
                &BranchBound::default(),
            )
            .unwrap();
            assert!(
                sol.cost() <= last + 1e-6,
                "m={m} cost {} > previous {last}",
                sol.cost()
            );
            last = sol.cost();
        }
    }

    #[test]
    fn ltf_no_worse_than_unsorted_on_average() {
        let mut ltf_total = 0.0;
        let mut rand_total = 0.0;
        for seed in 0..10 {
            let instance = sys(seed, 24, 5.0, 4);
            ltf_total += solve_partitioned(
                &instance,
                PartitionStrategy::LargestTaskFirst,
                &MarginalGreedy,
            )
            .unwrap()
            .cost();
            rand_total +=
                solve_partitioned(&instance, PartitionStrategy::Unsorted, &MarginalGreedy)
                    .unwrap()
                    .cost();
        }
        assert!(
            ltf_total <= rand_total * 1.02,
            "LTF {ltf_total} vs RAND {rand_total}"
        );
    }

    #[test]
    fn global_greedy_verifies_and_is_competitive() {
        for seed in 0..5 {
            let instance = sys(seed, 20, 4.5, 4);
            let global = solve_global_greedy(&instance).unwrap();
            global.verify(&instance).unwrap();
            let part = solve_partitioned(
                &instance,
                PartitionStrategy::LargestTaskFirst,
                &MarginalGreedy,
            )
            .unwrap();
            // No dominance in general; sanity: within a factor 2 of each other.
            assert!(global.cost() < part.cost() * 2.0 + 1e-9);
            assert!(part.cost() < global.cost() * 2.0 + 1e-9);
        }
    }

    #[test]
    fn mixed_hyper_periods_rescale_correctly() {
        // Two tasks with different periods end up on different processors;
        // the per-processor hyper-periods (4 and 6) must be rescaled to the
        // global one (12).
        let tasks = TaskSet::try_from_tasks(vec![
            Task::new(0, 2.0, 4).unwrap().with_penalty(100.0),
            Task::new(1, 3.0, 6).unwrap().with_penalty(100.0),
        ])
        .unwrap();
        let instance = MultiInstance::new(tasks, xscale_ideal(), 2).unwrap();
        let sol = solve_partitioned(
            &instance,
            PartitionStrategy::LargestTaskFirst,
            &MarginalGreedy,
        )
        .unwrap();
        sol.verify(&instance).unwrap();
        assert_eq!(sol.accepted().len(), 2);
        // Energy = 12·rate(0.5) on each processor.
        let rate = instance.processor().energy_rate(0.5).unwrap();
        assert!((sol.energy() - 2.0 * 12.0 * rate).abs() < 1e-6);
    }

    #[test]
    fn heavy_overload_rejects_low_density_tasks() {
        let instance = sys(11, 30, 10.0, 2);
        let sol = solve_partitioned(
            &instance,
            PartitionStrategy::LargestTaskFirst,
            &MarginalGreedy,
        )
        .unwrap();
        sol.verify(&instance).unwrap();
        assert!(sol.penalty() > 0.0);
    }
}
