use std::fmt;

use dvs_power::Processor;
use reject_sched::SchedError;
use rt_model::TaskSet;

/// A homogeneous multiprocessor rejection instance: `m` identical DVS
/// processors sharing one periodic task set (partition schedules — every
/// task runs entirely on one processor).
///
/// # Examples
///
/// ```
/// use dvs_power::presets::cubic_ideal;
/// use multi_sched::MultiInstance;
/// use rt_model::generator::WorkloadSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = MultiInstance::new(WorkloadSpec::new(10, 2.5).seed(1).generate()?,
///                              cubic_ideal(), 4)?;
/// assert_eq!(sys.processors(), 4);
/// assert!(!sys.is_overloaded());   // 2.5 demand < 4×1.0 capacity
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiInstance {
    tasks: TaskSet,
    cpu: Processor,
    m: usize,
}

impl MultiInstance {
    /// Creates an instance of `m` identical copies of `cpu`.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidParameter`] if `m == 0`.
    pub fn new(tasks: TaskSet, cpu: Processor, m: usize) -> Result<Self, SchedError> {
        if m == 0 {
            return Err(SchedError::InvalidParameter {
                name: "m",
                value: 0.0,
            });
        }
        Ok(MultiInstance { tasks, cpu, m })
    }

    /// The shared task set.
    #[must_use]
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// The processor model (all `m` are identical).
    #[must_use]
    pub fn processor(&self) -> &Processor {
        &self.cpu
    }

    /// Number of processors `m`.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.m
    }

    /// Aggregate capacity `m · s_max`.
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.m as f64 * self.cpu.max_speed()
    }

    /// Whether the total demand exceeds even the aggregate capacity
    /// (so rejection is forced regardless of the partition quality).
    #[must_use]
    pub fn is_overloaded(&self) -> bool {
        self.tasks.utilization() > self.capacity() * (1.0 + 1e-9)
    }

    /// Hyper-period of the full set (ticks).
    #[must_use]
    pub fn hyper_period(&self) -> u64 {
        self.tasks.hyper_period()
    }

    /// Total rejection penalty of all tasks.
    #[must_use]
    pub fn total_penalty(&self) -> f64 {
        self.tasks.total_penalty()
    }
}

impl fmt::Display for MultiInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "multi[m={}, n={}, U={:.3}, capacity={:.3}]",
            self.m,
            self.tasks.len(),
            self.tasks.utilization(),
            self.capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_power::presets::cubic_ideal;
    use rt_model::generator::WorkloadSpec;

    #[test]
    fn zero_processors_rejected() {
        let tasks = WorkloadSpec::new(4, 1.0).seed(0).generate().unwrap();
        assert!(MultiInstance::new(tasks, cubic_ideal(), 0).is_err());
    }

    #[test]
    fn capacity_and_overload() {
        let tasks = WorkloadSpec::new(8, 4.5).seed(0).generate().unwrap();
        let sys = MultiInstance::new(tasks, cubic_ideal(), 4).unwrap();
        assert!((sys.capacity() - 4.0).abs() < 1e-12);
        assert!(sys.is_overloaded());
    }

    #[test]
    fn display_mentions_m() {
        let tasks = WorkloadSpec::new(4, 1.0).seed(0).generate().unwrap();
        let sys = MultiInstance::new(tasks, cubic_ideal(), 2).unwrap();
        assert!(sys.to_string().contains("m=2"));
    }
}
