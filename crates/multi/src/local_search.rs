//! Cross-processor local search.
//!
//! Partition-then-reject decides placement and admission separately, so its
//! solutions leave two kinds of money on the table: a task may sit on the
//! wrong processor (placement), or the wrong task may be rejected because
//! its processor was crowded while another had room (admission). This pass
//! polishes any [`MultiSolution`] with best-improvement moves:
//!
//! * **migrate** — move an accepted task to another processor,
//! * **reject** — drop an accepted task (pay its penalty),
//! * **admit** — place a rejected task on a processor with room,
//! * **swap** — exchange two accepted tasks between processors.
//!
//! Costs are evaluated with the same per-processor energy oracle the
//! solvers use, so the result is directly comparable (and never worse than
//! the seed).

use reject_sched::SchedError;
use rt_model::{Task, TaskId};

use crate::solver::solution_from_buckets;
use crate::{MultiInstance, MultiSolution};

#[derive(Debug, Clone)]
struct State<'a> {
    instance: &'a MultiInstance,
    buckets: Vec<Vec<TaskId>>,
    loads: Vec<f64>,
    rejected: Vec<TaskId>,
}

impl State<'_> {
    fn rate(&self, u: f64) -> Result<f64, SchedError> {
        Ok(self.instance.processor().energy_rate(u.max(0.0))?)
    }

    fn task(&self, id: TaskId) -> &Task {
        self.instance
            .tasks()
            .get(id)
            .expect("ids come from the instance")
    }

    fn fits(&self, k: usize, extra: f64) -> bool {
        self.instance.processor().is_feasible(self.loads[k] + extra)
    }
}

/// Polishes `seed` with best-improvement migrate/reject/admit/swap moves
/// until a local optimum (or `max_rounds`).
///
/// # Errors
///
/// Propagates oracle errors (cannot occur for a verified seed).
///
/// # Examples
///
/// ```
/// use dvs_power::presets::xscale_ideal;
/// use multi_sched::{improve, solve_partitioned, MultiInstance, PartitionStrategy};
/// use reject_sched::algorithms::MarginalGreedy;
/// use rt_model::generator::WorkloadSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sys = MultiInstance::new(WorkloadSpec::new(16, 3.2).seed(2).generate()?,
///                              xscale_ideal(), 4)?;
/// let seed = solve_partitioned(&sys, PartitionStrategy::Unsorted, &MarginalGreedy)?;
/// let polished = improve(&sys, &seed, 200)?;
/// polished.verify(&sys)?;
/// assert!(polished.cost() <= seed.cost() + 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn improve(
    instance: &MultiInstance,
    seed: &MultiSolution,
    max_rounds: usize,
) -> Result<MultiSolution, SchedError> {
    let accepted_ids = seed.accepted();
    let mut state = State {
        instance,
        buckets: seed
            .per_processor()
            .iter()
            .map(|s| s.accepted().to_vec())
            .collect(),
        loads: Vec::new(),
        rejected: instance
            .tasks()
            .iter()
            .map(Task::id)
            .filter(|id| accepted_ids.binary_search(id).is_err())
            .collect(),
    };
    // Normalise bucket count to m (consolidated seeds may differ — pad).
    while state.buckets.len() < instance.processors() {
        state.buckets.push(Vec::new());
    }
    state.loads = state
        .buckets
        .iter()
        .map(|ids| ids.iter().map(|id| state.task(*id).utilization()).sum())
        .collect();

    let l = instance.hyper_period() as f64;
    for _ in 0..max_rounds {
        // The move scan decomposes into independent units — one per accepted
        // task (its migrate/swap/reject moves) and one per rejected task (its
        // admit moves) — evaluated against the immutable round-start state.
        // Each unit keeps its earliest strictly-best move; reducing the units
        // in scan order with a strict comparison reproduces the sequential
        // best-improvement selection exactly.
        let mut units: Vec<Unit> = Vec::new();
        for from in 0..state.buckets.len() {
            for ti in 0..state.buckets[from].len() {
                units.push(Unit::Accepted { from, ti });
            }
        }
        for ri in 0..state.rejected.len() {
            units.push(Unit::Rejected { ri });
        }
        let results =
            dvs_exec::par_map(&units, |unit| -> Result<Option<(f64, Move)>, SchedError> {
                let mut best_gain = 1e-12;
                let mut best: Option<Move> = None;
                match *unit {
                    Unit::Accepted { from, ti } => {
                        let id = state.buckets[from][ti];
                        let u = state.task(id).utilization();
                        let from_saving = l
                            * (state.rate(state.loads[from])?
                                - state.rate(state.loads[from] - u)?);
                        for to in 0..state.buckets.len() {
                            if to == from {
                                continue;
                            }
                            // Migrate.
                            if state.fits(to, u) {
                                let to_cost = l
                                    * (state.rate(state.loads[to] + u)?
                                        - state.rate(state.loads[to])?);
                                let gain = from_saving - to_cost;
                                if gain > best_gain {
                                    best_gain = gain;
                                    best = Some(Move::Migrate { from, ti, to });
                                }
                            }
                            // Swap with each task over there.
                            for tj in 0..state.buckets[to].len() {
                                let jd = state.buckets[to][tj];
                                let w = state.task(jd).utilization();
                                if !state.fits(from, w - u) || !state.fits(to, u - w) {
                                    continue;
                                }
                                let gain = l
                                    * (state.rate(state.loads[from])?
                                        + state.rate(state.loads[to])?
                                        - state.rate(state.loads[from] - u + w)?
                                        - state.rate(state.loads[to] - w + u)?);
                                if gain > best_gain {
                                    best_gain = gain;
                                    best = Some(Move::Swap { from, ti, to, tj });
                                }
                            }
                        }
                        // Reject.
                        let gain = from_saving - state.task(id).penalty();
                        if gain > best_gain {
                            best_gain = gain;
                            best = Some(Move::Reject { from, ti });
                        }
                    }
                    Unit::Rejected { ri } => {
                        let id = state.rejected[ri];
                        let u = state.task(id).utilization();
                        for to in 0..state.buckets.len() {
                            if !state.fits(to, u) {
                                continue;
                            }
                            let cost = l
                                * (state.rate(state.loads[to] + u)?
                                    - state.rate(state.loads[to])?);
                            let gain = state.task(id).penalty() - cost;
                            if gain > best_gain {
                                best_gain = gain;
                                best = Some(Move::Admit { ri, to });
                            }
                        }
                    }
                }
                Ok(best.map(|mv| (best_gain, mv)))
            });

        let mut best_gain = 1e-12;
        let mut best_move: Option<Move> = None;
        for r in results {
            if let Some((gain, mv)) = r? {
                if gain > best_gain {
                    best_gain = gain;
                    best_move = Some(mv);
                }
            }
        }
        match best_move {
            None => break,
            Some(mv) => apply(&mut state, mv),
        }
    }

    let label = format!("{}+LS", seed.label());
    solution_from_buckets(instance, label, state.buckets)
}

/// One independent slice of the move scan: all moves touching a single
/// accepted slot (migrate/swap/reject) or a single rejected task (admit).
#[derive(Debug, Clone, Copy)]
enum Unit {
    Accepted { from: usize, ti: usize },
    Rejected { ri: usize },
}

#[derive(Debug, Clone, Copy)]
enum Move {
    Migrate {
        from: usize,
        ti: usize,
        to: usize,
    },
    Swap {
        from: usize,
        ti: usize,
        to: usize,
        tj: usize,
    },
    Reject {
        from: usize,
        ti: usize,
    },
    Admit {
        ri: usize,
        to: usize,
    },
}

fn apply(state: &mut State<'_>, mv: Move) {
    match mv {
        Move::Migrate { from, ti, to } => {
            let id = state.buckets[from].swap_remove(ti);
            let u = state.task(id).utilization();
            state.loads[from] -= u;
            state.loads[to] += u;
            state.buckets[to].push(id);
        }
        Move::Swap { from, ti, to, tj } => {
            let a = state.buckets[from][ti];
            let b = state.buckets[to][tj];
            let (ua, ub) = (state.task(a).utilization(), state.task(b).utilization());
            state.buckets[from][ti] = b;
            state.buckets[to][tj] = a;
            state.loads[from] += ub - ua;
            state.loads[to] += ua - ub;
        }
        Move::Reject { from, ti } => {
            let id = state.buckets[from].swap_remove(ti);
            state.loads[from] -= state.task(id).utilization();
            state.rejected.push(id);
        }
        Move::Admit { ri, to } => {
            let id = state.rejected.swap_remove(ri);
            state.loads[to] += state.task(id).utilization();
            state.buckets[to].push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fractional_lower_bound_multi, solve_partitioned, PartitionStrategy};
    use dvs_power::presets::{cubic_ideal, xscale_ideal};
    use reject_sched::algorithms::MarginalGreedy;
    use rt_model::generator::WorkloadSpec;

    fn sys(seed: u64, n: usize, load: f64, m: usize) -> MultiInstance {
        MultiInstance::new(
            WorkloadSpec::new(n, load).seed(seed).generate().unwrap(),
            cubic_ideal(),
            m,
        )
        .unwrap()
    }

    #[test]
    fn never_worse_than_the_seed() {
        for seed in 0..6 {
            let instance = sys(seed, 20, 4.5, 4);
            for strat in [
                PartitionStrategy::LargestTaskFirst,
                PartitionStrategy::Unsorted,
            ] {
                let base = solve_partitioned(&instance, strat, &MarginalGreedy).unwrap();
                let polished = improve(&instance, &base, 300).unwrap();
                polished.verify(&instance).unwrap();
                assert!(polished.cost() <= base.cost() + 1e-9);
            }
        }
    }

    #[test]
    fn closes_part_of_the_gap_to_the_fluid_bound() {
        let mut base_total = 0.0;
        let mut polished_total = 0.0;
        let mut bound_total = 0.0;
        for seed in 0..8 {
            let instance = sys(seed, 24, 5.0, 4);
            let base =
                solve_partitioned(&instance, PartitionStrategy::Unsorted, &MarginalGreedy).unwrap();
            let polished = improve(&instance, &base, 500).unwrap();
            base_total += base.cost();
            polished_total += polished.cost();
            bound_total += fractional_lower_bound_multi(&instance).unwrap();
        }
        let gap_before = base_total / bound_total;
        let gap_after = polished_total / bound_total;
        assert!(
            gap_after < gap_before - 1e-4,
            "local search should visibly improve: {gap_before:.4} → {gap_after:.4}"
        );
    }

    #[test]
    fn admits_wrongly_rejected_tasks() {
        // One crowded CPU forces a rejection that another CPU could host:
        // LTF avoids this by construction, so build the bad seed by hand
        // with the Unsorted strategy on an adversarial order.
        let tasks = rt_model::TaskSet::try_from_tasks(vec![
            rt_model::Task::new(0, 6.0, 10).unwrap().with_penalty(10.0),
            rt_model::Task::new(1, 6.0, 10).unwrap().with_penalty(10.0),
            rt_model::Task::new(2, 6.0, 10).unwrap().with_penalty(10.0),
        ])
        .unwrap();
        let instance = MultiInstance::new(tasks, cubic_ideal(), 3).unwrap();
        // Unsorted min-load placement spreads them 1/1/1 — fine. Seed with
        // a deliberately bad 2-processor-style packing instead:
        let bad =
            solve_partitioned(&instance, PartitionStrategy::FirstFit, &MarginalGreedy).unwrap();
        let polished = improve(&instance, &bad, 100).unwrap();
        polished.verify(&instance).unwrap();
        // All three tasks fit one-per-CPU; local search must not reject any.
        assert_eq!(polished.accepted().len(), 3);
    }

    #[test]
    fn respects_feasibility_throughout() {
        for seed in 0..4 {
            let instance = MultiInstance::new(
                WorkloadSpec::new(18, 5.5).seed(seed).generate().unwrap(),
                xscale_ideal(),
                3,
            )
            .unwrap();
            let base =
                solve_partitioned(&instance, PartitionStrategy::Unsorted, &MarginalGreedy).unwrap();
            let polished = improve(&instance, &base, 200).unwrap();
            polished.verify(&instance).unwrap();
        }
    }

    #[test]
    fn round_cap_terminates() {
        let instance = sys(0, 20, 4.0, 4);
        let base =
            solve_partitioned(&instance, PartitionStrategy::Unsorted, &MarginalGreedy).unwrap();
        let one = improve(&instance, &base, 1).unwrap();
        one.verify(&instance).unwrap();
        assert!(one.cost() <= base.cost() + 1e-9);
    }
}
