//! Live-migration mechanics at the engine level: exporting a domain
//! fences it and moves its ledger share out, importing rebuilds the
//! domain exactly, both operations are idempotent (export replays its
//! stored payload, import dedupes on its key), and both are journaled
//! record kinds that replay on recovery.

use std::path::PathBuf;

use dvs_admit::json::{self, JsonValue};
use dvs_admit::{AdmissionEngine, AdmitError, EngineConfig, Journal, JournalConfig, TraceSpec};
use dvs_power::presets::{cubic_ideal, xscale_ideal};
use reject_sched::online::OnlineGreedy;
use rt_model::io::{EventKind, EventRecord};
use rt_model::Task;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvs_admit_migration_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn config() -> EngineConfig {
    EngineConfig::default()
        .resolve_every(2)
        .resolve_budget(5_000)
}

/// A two-domain engine (distinct processors, so payload CPU specs are
/// telling) fed a pinned trace.
fn fed_engine(seed: u64) -> AdmissionEngine {
    let mut engine = AdmissionEngine::new(
        vec![cubic_ideal(), xscale_ideal()],
        Box::new(OnlineGreedy),
        config(),
    )
    .unwrap();
    let trace = TraceSpec::new(14, 2.4, seed).domains(2).generate().unwrap();
    dvs_admit::trace::replay(&mut engine, &trace).unwrap();
    engine
}

fn stat(engine: &AdmissionEngine, key: &str) -> u64 {
    let pairs = json::parse_object(&engine.stats_json()).unwrap();
    json::get(&pairs, key)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("missing stat {key:?}")) as u64
}

/// Exporting fences the slot, hands back a stable payload, and moves
/// exactly the domain's ledger share out of the engine's counters —
/// the per-engine balance invariant holds before and after.
#[test]
fn export_fences_the_domain_and_moves_its_ledger_share() {
    let mut engine = fed_engine(7);
    // The trace has fully drained by its end; land a few pinned arrivals
    // afterwards so domain 1 holds live ledger state when it is exported.
    for (id, dom) in [(901usize, 0usize), (902, 1), (903, 1)] {
        let task = Task::new(id, 60.0, 40)
            .unwrap()
            .with_penalty(2.0)
            .with_domain(dom);
        engine
            .apply(&EventRecord {
                at: 4_100.0,
                kind: EventKind::Arrive(task),
            })
            .unwrap();
    }
    let arrivals_before = stat(&engine, "arrivals");
    let balance = |e: &AdmissionEngine| {
        assert_eq!(
            stat(e, "accepted") + stat(e, "rejected") + stat(e, "shed"),
            stat(e, "arrivals"),
            "engine balance broken: {}",
            e.stats_json()
        );
    };
    balance(&engine);
    let payload = engine.export_domain(1).unwrap();
    assert!(
        payload.starts_with("xp1 "),
        "unexpected payload {payload:?}"
    );
    assert!(engine.domain_is_fenced(1));
    assert_eq!(engine.fenced_count(), 1);
    assert!(
        stat(&engine, "arrivals") < arrivals_before,
        "the exported domain's arrivals must leave the source ledger"
    );
    balance(&engine);
    // Idempotent: a re-export of a fenced slot replays the stored bytes.
    assert_eq!(engine.export_domain(1).unwrap(), payload);
    // The fenced slot refuses pinned arrivals with the typed error.
    let task = Task::new(900usize, 100.0, 50)
        .unwrap()
        .with_penalty(3.0)
        .with_domain(1);
    let err = engine
        .apply(&EventRecord {
            at: 4_200.0,
            kind: EventKind::Arrive(task),
        })
        .unwrap_err();
    assert!(
        matches!(err, AdmitError::DomainFenced { domain: 1, .. }),
        "expected DomainFenced, got {err}"
    );
    // Out-of-range exports are typed migration errors.
    assert!(matches!(
        engine.export_domain(9),
        Err(AdmitError::Migration { .. })
    ));
}

/// Importing rebuilds the domain on a fresh engine: the moved ledger
/// share lands there (cluster-wide sums are conserved), the key dedupes
/// retries, and malformed payloads or keys are typed errors.
#[test]
fn import_rebuilds_the_domain_and_dedupes_on_the_key() {
    let mut src = fed_engine(9);
    let total_arrivals = stat(&src, "arrivals");
    let payload = src.export_domain(0).unwrap();
    let mut dst =
        AdmissionEngine::with_domains(Vec::new(), Box::new(OnlineGreedy), config()).unwrap();
    let local = dst.import_domain("2:0", &payload).unwrap();
    assert_eq!(local, 0, "first import lands on the first slot");
    assert_eq!(
        stat(&src, "arrivals") + stat(&dst, "arrivals"),
        total_arrivals,
        "migration must conserve the cluster-wide arrival count"
    );
    assert_eq!(
        stat(&src, "accepted")
            + stat(&dst, "accepted")
            + stat(&src, "rejected")
            + stat(&dst, "rejected")
            + stat(&src, "shed")
            + stat(&dst, "shed"),
        total_arrivals,
        "migration must conserve the cluster-wide balance"
    );
    // A retried import under the same key answers the same slot without
    // double-applying anything.
    assert_eq!(dst.import_domain("2:0", &payload).unwrap(), 0);
    assert_eq!(stat(&dst, "domains"), 1);
    // Typed failures: blank keys, garbage payloads.
    assert!(matches!(
        dst.import_domain("", &payload),
        Err(AdmitError::Migration { .. })
    ));
    assert!(matches!(
        dst.import_domain("3:1", "not a payload"),
        Err(AdmitError::Migration { .. })
    ));
}

/// Export and import are journaled (`X` / `I` records): an engine
/// dropped cold after either operation recovers to the same state, and
/// the recovered source replays its export to byte-identical bytes.
#[test]
fn export_and_import_replay_from_the_journal() {
    let src_path = tmp("src.wal");
    let dst_path = tmp("dst.wal");
    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_file(&dst_path);

    let (payload, src_stats) = {
        let mut src = fed_engine(11);
        // Attach a journal and snapshot the fed state, then export: the
        // journal tail carries the X record.
        let journal = Journal::create(&src_path, JournalConfig::default()).unwrap();
        src.attach_journal(journal);
        src.snapshot_now().unwrap();
        let payload = src.export_domain(1).unwrap();
        (payload, src.metrics().deterministic_summary())
        // Dropped cold here: no drain, no closing snapshot.
    };
    let recovered = AdmissionEngine::recover(
        &src_path,
        vec![cubic_ideal(), xscale_ideal()],
        Box::new(OnlineGreedy),
        config(),
        JournalConfig::default(),
    )
    .unwrap();
    let mut src = recovered.engine;
    assert!(src.domain_is_fenced(1), "fence must survive recovery");
    assert_eq!(
        src.export_domain(1).unwrap(),
        payload,
        "recovered export must replay the journaled payload byte for byte"
    );
    assert_eq!(
        src.metrics().deterministic_summary(),
        src_stats,
        "recovered source metrics diverged"
    );

    let dst_stats = {
        let mut dst =
            AdmissionEngine::with_domains(Vec::new(), Box::new(OnlineGreedy), config()).unwrap();
        let journal = Journal::create(&dst_path, JournalConfig::default()).unwrap();
        dst.attach_journal(journal);
        assert_eq!(dst.import_domain("2:1", &payload).unwrap(), 0);
        dst.metrics().deterministic_summary()
        // Dropped cold here.
    };
    let recovered = AdmissionEngine::recover(
        &dst_path,
        Vec::new(),
        Box::new(OnlineGreedy),
        config(),
        JournalConfig::default(),
    )
    .unwrap();
    let mut dst = recovered.engine;
    assert_eq!(
        dst.metrics().deterministic_summary(),
        dst_stats,
        "recovered import target diverged"
    );
    // The idempotency key also survives recovery: the same import is
    // still deduplicated, not double-applied.
    assert_eq!(dst.import_domain("2:1", &payload).unwrap(), 0);
    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_file(&dst_path);
}
