//! The replication and failover invariants, end to end at the library
//! level: a hot-standby follower streaming the primary's journal keeps a
//! bit-identical decision log at every `DVS_THREADS`; disconnects,
//! torn frames, and promotion all preserve that identity; a deposed
//! primary is fenced off by epoch.

use std::io::Write as _;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dvs_admit::journal::JournalConfig;
use dvs_admit::replication::{
    self, serve_hub, FollowEnd, FollowerOptions, HubOptions, ReplicationHub, RoleContext,
};
use dvs_admit::{AdmissionEngine, EngineConfig, TraceSpec};
use dvs_power::presets::xscale_ideal;
use reject_sched::online::OnlineGreedy;
use rt_model::io::EventRecord;

/// Serialises tests that touch the process-global `DVS_THREADS` variable.
fn with_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var(dvs_exec::THREADS_ENV, n);
    let out = f();
    std::env::remove_var(dvs_exec::THREADS_ENV);
    out
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvs_admit_repl_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn config() -> EngineConfig {
    EngineConfig::default()
        .resolve_every(2)
        .resolve_budget(5_000)
}

fn jconfig() -> JournalConfig {
    JournalConfig {
        snapshot_every: 8,
        ..JournalConfig::default()
    }
}

fn engine_with_domains(domains: usize) -> AdmissionEngine {
    let cpus = (0..domains).map(|_| xscale_ideal()).collect();
    AdmissionEngine::new(cpus, Box::new(OnlineGreedy), config()).unwrap()
}

fn engine() -> AdmissionEngine {
    engine_with_domains(1)
}

/// A journaled primary that has stamped its epoch (as `dvs_admitd` does).
fn primary_engine(path: &PathBuf, domains: usize) -> AdmissionEngine {
    let _ = std::fs::remove_file(path);
    let mut e = engine_with_domains(domains);
    let journal = dvs_admit::Journal::create(path, jconfig()).unwrap();
    e.attach_journal(journal);
    e.stamp_epoch().unwrap();
    e
}

struct Fixture {
    primary: Arc<Mutex<AdmissionEngine>>,
    follower: Arc<Mutex<AdmissionEngine>>,
    ctx: Arc<RoleContext>,
    hub: Arc<ReplicationHub>,
    hub_thread: Option<std::thread::JoinHandle<()>>,
    follower_thread: Option<std::thread::JoinHandle<Result<FollowEnd, dvs_admit::AdmitError>>>,
    addr: String,
    journal_path: PathBuf,
    mirror_path: PathBuf,
}

fn hub_options() -> HubOptions {
    HubOptions {
        poll: Duration::from_millis(1),
        heartbeat_every: Duration::from_millis(20),
    }
}

fn follower_options(addr: &str, mirror: &Path) -> FollowerOptions {
    FollowerOptions {
        primary: addr.to_string(),
        mirror: mirror.to_path_buf(),
        read_timeout: Duration::from_millis(5),
        heartbeat_timeout: Duration::from_millis(400),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        ..FollowerOptions::default()
    }
}

impl Fixture {
    /// Primary + hub + connected follower, mirror starting empty.
    fn start(tag: &str) -> Fixture {
        Fixture::start_with_domains(tag, 1)
    }

    /// [`Fixture::start`] with `domains` identical power domains on both
    /// the primary and the standby.
    fn start_with_domains(tag: &str, domains: usize) -> Fixture {
        let journal_path = tmp(&format!("{tag}.wal"));
        let mirror_path = tmp(&format!("{tag}.mirror"));
        let _ = std::fs::remove_file(&mirror_path);
        let primary = Arc::new(Mutex::new(primary_engine(&journal_path, domains)));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hub = Arc::new(ReplicationHub::new(1));
        let hub_thread = {
            let hub = Arc::clone(&hub);
            let path = journal_path.clone();
            Some(std::thread::spawn(move || {
                let _ = serve_hub(&listener, &path, &hub, hub_options());
            }))
        };
        let follower = Arc::new(Mutex::new(engine_with_domains(domains)));
        let ctx = Arc::new(RoleContext::follower(&mirror_path, jconfig()));
        let mut f = Fixture {
            primary,
            follower,
            ctx,
            hub,
            hub_thread,
            follower_thread: None,
            addr,
            journal_path,
            mirror_path,
        };
        f.start_follower();
        f
    }

    fn start_follower(&mut self) {
        let engine = Arc::clone(&self.follower);
        let ctx = Arc::clone(&self.ctx);
        let opts = follower_options(&self.addr, &self.mirror_path);
        self.follower_thread = Some(std::thread::spawn(move || {
            replication::run_follower(&engine, &ctx.role, &opts)
        }));
    }

    fn apply(&self, events: &[EventRecord]) {
        let mut g = self
            .primary
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for e in events {
            g.apply(e).unwrap();
        }
    }

    /// Waits until the follower has applied as many events as the primary.
    fn wait_catchup(&self) {
        let target = {
            let g = self
                .primary
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g.metrics().events
        };
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let got = {
                let g = self
                    .follower
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                g.metrics().events
            };
            if got >= target {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "follower stuck at {got}/{target} events"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn stop_follower(&mut self) -> FollowEnd {
        self.ctx.role.request_stop();
        self.follower_thread
            .take()
            .expect("follower running")
            .join()
            .unwrap()
            .unwrap()
    }

    fn shutdown(mut self) {
        if self.follower_thread.is_some() {
            self.stop_follower();
        }
        self.hub.shutdown();
        if let Some(t) = self.hub_thread.take() {
            let _ = t.join();
        }
    }
}

fn logs(engine: &Mutex<AdmissionEngine>) -> (String, String) {
    let g = engine
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (g.format_decision_log(), g.metrics().deterministic_summary())
}

/// Reference: the same trace applied to a bare engine.
fn reference(trace: &[EventRecord]) -> (String, String) {
    let mut e = engine();
    for ev in trace {
        e.apply(ev).unwrap();
    }
    (e.format_decision_log(), e.metrics().deterministic_summary())
}

/// Streaming replication reproduces the primary's decision log bit for
/// bit on the standby — across seeds and at every `DVS_THREADS`.
#[test]
fn follower_log_is_bit_identical_across_seeds_and_threads() {
    for seed in 0..3u64 {
        let trace = TraceSpec::new(14, 2.2, seed).generate().unwrap();
        let (ref_log, ref_sum) = with_threads("1", || reference(&trace));
        for threads in ["1", "2", "4", "8"] {
            with_threads(threads, || {
                let mut f = Fixture::start(&format!("identity_{seed}_{threads}"));
                f.apply(&trace);
                f.wait_catchup();
                let end = f.stop_follower();
                assert_eq!(end, FollowEnd::Stopped);
                let (log, sum) = logs(&f.follower);
                assert_eq!(
                    log, ref_log,
                    "seed {seed} threads {threads}: standby log diverged"
                );
                assert_eq!(
                    sum, ref_sum,
                    "seed {seed} threads {threads}: metrics diverged"
                );
                {
                    let g = f
                        .follower
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let m = g.metrics();
                    assert!(m.repl_records > 0, "no frames applied");
                    assert!(m.repl_bytes > 0, "no bytes mirrored");
                    assert_eq!(m.epoch_bumps, 0, "no failover happened");
                }
                f.shutdown();
            });
        }
    }
}

/// Multi-domain replication determinism: a primary running several power
/// domains over a **domain-pinned** trace streams to a standby that
/// reproduces the cross-domain decision log bit for bit at every
/// `DVS_THREADS`. This is the replication leg of the cluster contract —
/// the same pinned traces drive the router's sharded log identity.
#[test]
fn multi_domain_follower_log_is_bit_identical() {
    const DOMAINS: usize = 3;
    for seed in [2u64, 8] {
        let trace = TraceSpec::new(16, 2.4, seed)
            .domains(DOMAINS)
            .generate()
            .unwrap();
        let (ref_log, ref_sum) = with_threads("1", || {
            let mut e = engine_with_domains(DOMAINS);
            for ev in &trace {
                e.apply(ev).unwrap();
            }
            (e.format_decision_log(), e.metrics().deterministic_summary())
        });
        // The pinned trace must actually spread decisions across domains,
        // otherwise this test degenerates to the single-domain one.
        for d in 1..DOMAINS {
            assert!(
                ref_log.contains(&format!("@{d}")),
                "seed {seed}: no decisions on domain {d}"
            );
        }
        for threads in ["1", "4", "8"] {
            with_threads(threads, || {
                let mut f =
                    Fixture::start_with_domains(&format!("multidom_{seed}_{threads}"), DOMAINS);
                f.apply(&trace);
                f.wait_catchup();
                let end = f.stop_follower();
                assert_eq!(end, FollowEnd::Stopped);
                let (log, sum) = logs(&f.follower);
                assert_eq!(
                    log, ref_log,
                    "seed {seed} threads {threads}: multi-domain standby log diverged"
                );
                assert_eq!(
                    sum, ref_sum,
                    "seed {seed} threads {threads}: multi-domain metrics diverged"
                );
                f.shutdown();
            });
        }
    }
}

/// A mid-stream disconnect (the hub dies and is rebound on the same
/// port) reconnects from the mirror cursor and converges to the same
/// log; the reconnect is counted.
#[test]
fn mid_stream_disconnect_reconnects_and_converges() {
    with_threads("2", || {
        let trace = TraceSpec::new(14, 2.2, 5).generate().unwrap();
        let (ref_log, _) = reference(&trace);
        let cut = trace.len() / 2;
        let mut f = Fixture::start("reconnect");
        f.apply(&trace[..cut]);
        f.wait_catchup();

        // Kill the hub: every follower connection drops.
        f.hub.shutdown();
        if let Some(t) = f.hub_thread.take() {
            let _ = t.join();
        }
        // Rebind the same port and serve the same journal again.
        let listener = loop {
            match TcpListener::bind(&f.addr) {
                Ok(l) => break l,
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        let hub = Arc::new(ReplicationHub::new(1));
        f.hub = Arc::clone(&hub);
        let path = f.journal_path.clone();
        f.hub_thread = Some(std::thread::spawn(move || {
            let _ = serve_hub(&listener, &path, &hub, hub_options());
        }));

        f.apply(&trace[cut..]);
        f.wait_catchup();
        f.stop_follower();
        let (log, _) = logs(&f.follower);
        assert_eq!(log, ref_log, "log diverged across the disconnect");
        {
            let g = f
                .follower
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            assert!(
                g.metrics().repl_reconnects >= 1,
                "reconnect not counted: {:?}",
                g.metrics().repl_reconnects
            );
        }
        f.shutdown();
    });
}

/// A torn partial frame at the mirror's tail (as a kill mid-write leaves
/// behind) is truncated by the resync scan, counted, and re-fetched: the
/// log still converges.
#[test]
fn torn_mirror_tail_is_resynced_and_counted() {
    with_threads("1", || {
        let trace = TraceSpec::new(12, 2.0, 9).generate().unwrap();
        let (ref_log, _) = reference(&trace);
        let cut = trace.len() / 2;
        let mut f = Fixture::start("torn");
        f.apply(&trace[..cut]);
        f.wait_catchup();
        f.stop_follower();

        // Simulate a kill mid-append: a frame header promising more
        // payload than follows.
        {
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&f.mirror_path)
                .unwrap();
            let mut torn = vec![0xA6, b'E'];
            torn.extend_from_slice(&100u32.to_le_bytes());
            torn.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
            torn.extend_from_slice(b"n 1 arrive");
            file.write_all(&torn).unwrap();
        }

        f.start_follower();
        f.apply(&trace[cut..]);
        f.wait_catchup();
        f.stop_follower();
        let (log, _) = logs(&f.follower);
        assert_eq!(log, ref_log, "log diverged across the torn tail");
        {
            let g = f
                .follower
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            assert_eq!(g.metrics().repl_torn_tails, 1, "torn tail not counted");
        }
        // The mirror's torn bytes were truncated before re-streaming:
        // scanning it now loses nothing.
        let data = std::fs::read(&f.mirror_path).unwrap();
        let scan = dvs_admit::journal::scan_bytes(&data);
        assert_eq!(scan.bytes_lost(), 0, "mirror still torn after resync");
        f.shutdown();
    });
}

/// Failover: promote the caught-up standby, apply the rest of the trace
/// to it, and the combined decision log is bit-identical to an
/// uninterrupted run. The balance invariant holds across the boundary
/// and the epoch advanced past the primary's.
#[test]
fn promoted_follower_resumes_bit_identically() {
    for seed in [1u64, 8, 21] {
        with_threads("2", || {
            let trace = TraceSpec::new(14, 2.4, seed).generate().unwrap();
            let (ref_log, ref_sum) = reference(&trace);
            let cut = 1 + (seed as usize * 5 + 2) % (trace.len() - 1);
            let mut f = Fixture::start(&format!("promote_{seed}"));
            f.apply(&trace[..cut]);
            f.wait_catchup();

            // The primary "dies"; the standby is promoted.
            f.hub.shutdown();
            if let Some(t) = f.hub_thread.take() {
                let _ = t.join();
            }
            let epoch = replication::promote(&f.follower, &f.ctx).unwrap();
            assert_eq!(epoch, 2, "promotion must fence past the primary's epoch 1");
            assert!(f.ctx.role.is_primary());
            let end = f.follower_thread.take().unwrap().join().unwrap().unwrap();
            assert_eq!(end, FollowEnd::PromoteRequested);

            // Promotion is idempotent.
            assert_eq!(replication::promote(&f.follower, &f.ctx).unwrap(), 2);

            {
                let mut g = f
                    .follower
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for e in &trace[cut..] {
                    g.apply(e).unwrap();
                }
                let m = g.metrics();
                assert_eq!(
                    m.accepted() + m.rejected + m.standing_shed(),
                    m.arrivals,
                    "seed {seed}: balance broken across failover"
                );
                assert_eq!(m.epoch_bumps, 1);
                assert_eq!(g.epoch(), 2);
            }
            let (log, sum) = logs(&f.follower);
            assert_eq!(log, ref_log, "seed {seed}: failed-over log diverged");
            assert_eq!(sum, ref_sum, "seed {seed}: failed-over metrics diverged");

            // The promoted journal (the mirror) is now a valid journal a
            // fresh engine can recover the same log from.
            let recovered = AdmissionEngine::recover(
                &f.mirror_path,
                vec![xscale_ideal()],
                Box::new(OnlineGreedy),
                config(),
                jconfig(),
            )
            .unwrap();
            assert_eq!(recovered.records_lost, 0);
            assert_eq!(recovered.engine.format_decision_log(), ref_log);
            assert_eq!(
                recovered.engine.epoch(),
                2,
                "epoch must recover from the B record"
            );
            f.shutdown();
        });
    }
}

/// A deposed primary (older epoch) cannot feed a promoted follower: the
/// handshake is fenced off on both sides.
#[test]
fn deposed_primary_is_fenced_off() {
    with_threads("1", || {
        let trace = TraceSpec::new(10, 2.0, 3).generate().unwrap();
        let mut f = Fixture::start("fence");
        f.apply(&trace);
        f.wait_catchup();
        f.stop_follower();

        // The follower has been promoted elsewhere to epoch 3; its fence
        // must reject the old primary's epoch-1 stream.
        {
            let mut g = f
                .follower
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g.observe_epoch(3).unwrap();
        }
        f.start_follower();
        let end = f.follower_thread.take().unwrap().join().unwrap().unwrap();
        assert_eq!(end, FollowEnd::StaleSource);
        {
            let g = f
                .follower
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            assert!(
                g.metrics().epoch_rejects >= 1,
                "fence rejection not counted"
            );
        }
        // The hub noticed it is deposed and refuses to stream.
        assert!(f.hub.deposed(), "primary did not notice the higher term");
        assert!(f.hub.stale_rejects() >= 1);
        f.shutdown();
    });
}

/// Engine-level fencing: a stale `begin_epoch` is rejected with the
/// structured stale-epoch error, and `observe_epoch` below the fence
/// likewise.
#[test]
fn epoch_fencing_rejects_stale_writes() {
    let mut e = engine();
    assert_eq!(e.epoch(), 1);
    e.begin_epoch(3).unwrap();
    assert_eq!(e.epoch(), 3);
    let err = e.begin_epoch(3).unwrap_err();
    assert_eq!(err.kind(), "stale-epoch");
    let err = e.begin_epoch(2).unwrap_err();
    assert_eq!(err.kind(), "stale-epoch");
    let err = e.observe_epoch(2).unwrap_err();
    assert_eq!(err.kind(), "stale-epoch");
    e.observe_epoch(3).unwrap(); // equal to the fence: fine
    e.observe_epoch(7).unwrap(); // advancing: fine
    assert_eq!(e.epoch(), 7);
    assert_eq!(e.metrics().epoch_bumps, 2, "3 and 7 each bumped the fence");
}
