//! Torn-journal tolerance: every corruption shape — torn last record, a
//! flipped CRC byte, a kill mid-snapshot-write, a garbage tail — recovers
//! to the last valid prefix with the loss counted in metrics, never a
//! panic or a corrupt engine.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;

use dvs_admit::{AdmissionEngine, EngineConfig, Journal, JournalConfig, TraceSpec};
use dvs_power::presets::xscale_ideal;
use reject_sched::online::OnlineGreedy;
use rt_model::io::EventRecord;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvs_admit_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn config() -> EngineConfig {
    EngineConfig::default()
        .resolve_every(2)
        .resolve_budget(5_000)
}

fn jconfig() -> JournalConfig {
    JournalConfig {
        snapshot_every: 6,
        ..JournalConfig::default()
    }
}

fn trace() -> Vec<EventRecord> {
    TraceSpec::new(12, 2.2, 17).generate().unwrap()
}

/// Reference decision log over the full trace (no journal involved).
fn reference_log(events: &[EventRecord]) -> String {
    let mut engine =
        AdmissionEngine::new(vec![xscale_ideal()], Box::new(OnlineGreedy), config()).unwrap();
    for e in events {
        engine.apply(e).unwrap();
    }
    engine.format_decision_log()
}

/// Write the full trace through a journaled engine, then hand the file to
/// a mutilator before recovering from it.
fn journal_then(path: &PathBuf, mutilate: impl FnOnce(&PathBuf)) -> dvs_admit::Recovered {
    let _ = std::fs::remove_file(path);
    let mut engine =
        AdmissionEngine::new(vec![xscale_ideal()], Box::new(OnlineGreedy), config()).unwrap();
    engine.attach_journal(Journal::create(path, jconfig()).unwrap());
    for e in &trace() {
        engine.apply(e).unwrap();
    }
    drop(engine);
    mutilate(path);
    AdmissionEngine::recover(
        path,
        vec![xscale_ideal()],
        Box::new(OnlineGreedy),
        config(),
        jconfig(),
    )
    .unwrap()
}

/// The recovered log must reproduce a causal prefix of the reference run:
/// the engine is online and deterministic, so replaying the surviving
/// prefix yields exactly the first decisions of the full run.
fn assert_causal_prefix(recovered: &dvs_admit::Recovered) {
    let ref_log = reference_log(&trace());
    let log = recovered.engine.format_decision_log();
    assert!(
        ref_log.starts_with(&log),
        "recovered log is not a prefix of the reference:\nref:\n{ref_log}\ngot:\n{log}"
    );
}

#[test]
fn torn_last_record_recovers_to_the_valid_prefix() {
    let path = tmp("torn.wal");
    let recovered = journal_then(&path, |p| {
        let len = std::fs::metadata(p).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(p)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
    });
    assert!(recovered.records_lost >= 1, "torn tail must count as lost");
    assert!(recovered.bytes_lost > 0);
    assert_eq!(
        recovered.engine.metrics().records_lost,
        recovered.records_lost,
        "loss must surface in the metrics registry"
    );
    assert_causal_prefix(&recovered);
}

#[test]
fn flipped_crc_byte_strands_the_tail() {
    let path = tmp("crcflip.wal");
    let recovered = journal_then(&path, |p| {
        let mut bytes = std::fs::read(p).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF; // inside the last record's payload
        std::fs::write(p, &bytes).unwrap();
    });
    assert!(recovered.records_lost >= 1);
    assert_causal_prefix(&recovered);
}

#[test]
fn kill_mid_snapshot_write_falls_back_to_replay() {
    let path = tmp("midsnap.wal");
    let _ = std::fs::remove_file(&path);
    let events = trace();

    // Journal a run that ends with a torn snapshot frame: apply the whole
    // trace, note the file length, append an off-cadence snapshot, then
    // cut the file inside that final snapshot record.
    let mut engine =
        AdmissionEngine::new(vec![xscale_ideal()], Box::new(OnlineGreedy), config()).unwrap();
    // Huge cadence: no interior snapshots, so the torn one is the only one.
    let jc = JournalConfig {
        snapshot_every: 1_000_000,
        ..JournalConfig::default()
    };
    engine.attach_journal(Journal::create(&path, jc).unwrap());
    for e in &events {
        engine.apply(e).unwrap();
    }
    let before = std::fs::metadata(&path).unwrap().len();
    engine.snapshot_now().unwrap();
    let after = std::fs::metadata(&path).unwrap().len();
    assert!(after > before, "snapshot must append a frame");
    drop(engine);
    OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(before + (after - before) / 2)
        .unwrap();

    let recovered = AdmissionEngine::recover(
        &path,
        vec![xscale_ideal()],
        Box::new(OnlineGreedy),
        config(),
        jc,
    )
    .unwrap();
    assert!(!recovered.had_snapshot, "the torn snapshot must not anchor");
    assert_eq!(recovered.records_lost, 1, "exactly the snapshot is lost");
    assert_eq!(recovered.replayed, events.len() as u64);
    assert_eq!(
        recovered.engine.format_decision_log(),
        reference_log(&events),
        "full-tail replay must reproduce the reference log exactly"
    );
}

#[test]
fn garbage_tail_counts_one_lost_record_and_keeps_the_log() {
    let path = tmp("garbage.wal");
    let recovered = journal_then(&path, |p| {
        let mut f = OpenOptions::new().append(true).open(p).unwrap();
        f.write_all(b"\x00\xde\xad\xbe\xef not a frame at all")
            .unwrap();
    });
    assert_eq!(recovered.records_lost, 1, "one garbage blob, one loss");
    // Nothing framed was lost, so the log is the complete reference log.
    assert_eq!(
        recovered.engine.format_decision_log(),
        reference_log(&trace())
    );
}

#[test]
fn empty_journal_file_recovers_to_a_fresh_engine() {
    let path = tmp("empty.wal");
    std::fs::write(&path, b"").unwrap();
    let recovered = AdmissionEngine::recover(
        &path,
        vec![xscale_ideal()],
        Box::new(OnlineGreedy),
        config(),
        jconfig(),
    )
    .unwrap();
    assert!(!recovered.had_snapshot);
    assert_eq!(recovered.replayed, 0);
    assert_eq!(recovered.records_lost, 0);
    assert_eq!(recovered.engine.metrics().recoveries, 1);
}

/// The recovered engine is not just a museum piece: after a corruption
/// recovery it keeps serving, journaling into the truncated file, and a
/// second recovery sees the new records.
#[test]
fn recovered_engine_keeps_journaling_after_truncation() {
    let path = tmp("continue.wal");
    let recovered = journal_then(&path, |p| {
        let len = std::fs::metadata(p).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(p)
            .unwrap()
            .set_len(len - 1)
            .unwrap();
    });
    let mut engine = recovered.engine;
    let clock = engine.clock();
    let task = rt_model::Task::new(1000, 250.0, 1000)
        .unwrap()
        .with_penalty(4.0);
    engine
        .apply(&EventRecord::new(
            clock + 1.0,
            rt_model::io::EventKind::Arrive(task),
        ))
        .unwrap();
    engine
        .apply(&EventRecord::new(
            clock + 2.0,
            rt_model::io::EventKind::Tick,
        ))
        .unwrap();
    drop(engine);

    let again = AdmissionEngine::recover(
        &path,
        vec![xscale_ideal()],
        Box::new(OnlineGreedy),
        config(),
        jconfig(),
    )
    .unwrap();
    assert_eq!(again.records_lost, 0, "the continued journal is clean");
    assert_eq!(again.engine.metrics().recoveries, 1);
}
