//! End-to-end smoke tests for the `dvs_admitd` binary: the stdin/stdout
//! protocol, the shutdown stats dump and its balance invariant, the TCP
//! listener, and `--replay` over a saved event-trace file.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use dvs_admit::json::{get, parse_object, JsonValue};
use rt_model::io::{save_event_trace, EventKind, EventRecord};
use rt_model::Task;

const BIN: &str = env!("CARGO_BIN_EXE_dvs_admitd");

fn spawn(args: &[&str]) -> Child {
    Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dvs_admitd")
}

fn num(pairs: &[(String, JsonValue)], key: &str) -> f64 {
    get(pairs, key)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("stats missing numeric {key:?}"))
}

/// Asserts the stats invariant the CI smoke job checks:
/// `accepted + rejected + shed == arrivals`.
fn assert_balanced(stats_line: &str, expected_arrivals: f64) {
    let kv = parse_object(stats_line)
        .unwrap_or_else(|e| panic!("stats line does not parse ({e}): {stats_line}"));
    assert_eq!(get(&kv, "op").and_then(JsonValue::as_str), Some("stats"));
    let arrivals = num(&kv, "arrivals");
    assert_eq!(arrivals, expected_arrivals);
    assert_eq!(
        num(&kv, "accepted") + num(&kv, "rejected") + num(&kv, "shed"),
        arrivals,
        "balance violated: {stats_line}"
    );
}

const TRACE: &str = "\
{\"op\":\"arrive\",\"at\":0,\"id\":1,\"cycles\":50.0,\"period\":1000,\"penalty\":9.0}\n\
{\"op\":\"arrive\",\"at\":1,\"id\":2,\"cycles\":400.0,\"period\":1000,\"penalty\":0.5}\n\
{\"op\":\"arrive\",\"at\":2,\"id\":3,\"cycles\":80.0,\"period\":1000,\"penalty\":4.0}\n\
{\"op\":\"tick\",\"at\":250}\n\
{\"op\":\"depart\",\"at\":300,\"id\":1}\n\
{\"op\":\"tick\",\"at\":500}\n\
";

#[test]
fn stdin_session_balances_on_eof() {
    for threads in ["1", "4"] {
        let mut child = spawn(&["--stdin", "--threads", threads]);
        child
            .stdin
            .take()
            .unwrap()
            .write_all(TRACE.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).unwrap();
        let last = stdout.lines().last().expect("no output");
        assert_balanced(last, 3.0);
        // One response per request plus the EOF stats dump.
        assert_eq!(stdout.lines().count(), 7, "stdout: {stdout}");
    }
}

#[test]
fn shutdown_request_dumps_stats_inline() {
    let mut child = spawn(&["--stdin", "--policy", "threshold=2.0"]);
    let input = format!("{TRACE}{{\"op\":\"shutdown\"}}\n");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_balanced(stdout.lines().last().unwrap(), 3.0);
}

#[test]
fn tcp_listener_serves_and_shuts_down() {
    let mut child = spawn(&[
        "--listen",
        "127.0.0.1:0",
        "--power",
        "cubic",
        "--policy",
        "watermark=0.8,0.5,2.0",
    ]);
    let mut banner = String::new();
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    child_out.read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"));

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"{\"op\":\"arrive\",\"at\":0,\"id\":1,\"cycles\":50.0,\"period\":1000,\"penalty\":9.0}\n")
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let kv = parse_object(line.trim()).unwrap();
    assert_eq!(get(&kv, "ok"), Some(&JsonValue::Bool(true)));
    assert_eq!(
        get(&kv, "decision").and_then(JsonValue::as_str),
        Some("accepted")
    );

    line.clear();
    stream.write_all(b"{\"op\":\"stats\"}\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_balanced(line.trim(), 1.0);

    stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_balanced(line.trim(), 1.0);

    let status = child.wait().unwrap();
    assert!(status.success());
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(stderr.contains("\"op\":\"stats\""), "stderr: {stderr}");
}

#[test]
fn replay_mode_round_trips_a_saved_trace() {
    let dir = std::env::temp_dir().join(format!("dvs-admitd-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.events");
    let events = vec![
        EventRecord::new(
            0.0,
            EventKind::Arrive(Task::new(1, 50.0, 1000).unwrap().with_penalty(9.0)),
        ),
        EventRecord::new(
            1.0,
            EventKind::Arrive(Task::new(2, 400.0, 1000).unwrap().with_penalty(0.5)),
        ),
        EventRecord::new(250.0, EventKind::Tick),
        EventRecord::new(400.0, EventKind::Depart(rt_model::TaskId::new(1))),
        EventRecord::new(500.0, EventKind::Tick),
    ];
    save_event_trace(&path, &events).unwrap();

    let out = Command::new(BIN)
        .args(["--replay", path.to_str().unwrap(), "--power", "cubic"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_balanced(stdout.lines().last().unwrap(), 2.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_fail_with_a_message() {
    for args in [
        &["--listen"][..],
        &["--policy", "nope"][..],
        &["--threads", "0"][..],
        &["--frobnicate"][..],
    ] {
        let mut child = spawn(args);
        child.stdin.take();
        let out = child.wait_with_output().unwrap();
        assert!(
            !out.status.success(),
            "args {args:?} unexpectedly succeeded"
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("error:"),
            "args {args:?}"
        );
    }
}
