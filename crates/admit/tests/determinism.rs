//! The engine's determinism contract: replaying the same event trace
//! under any `DVS_THREADS` produces a bit-identical decision log and
//! deterministic-metrics summary.

use dvs_admit::{AdmissionEngine, EngineConfig, TraceSpec, WatermarkPolicy};
use dvs_power::presets::{cubic_ideal, xscale_ideal};
use reject_sched::online::OnlineGreedy;

/// Serialises tests that touch the process-global `DVS_THREADS` variable.
fn with_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var(dvs_exec::THREADS_ENV, n);
    let out = f();
    std::env::remove_var(dvs_exec::THREADS_ENV);
    out
}

fn replayed(spec: TraceSpec, domains: usize, watermark: bool) -> (String, String) {
    let trace = spec.generate().unwrap();
    let cpus = (0..domains)
        .map(|i| {
            if i % 2 == 0 {
                cubic_ideal()
            } else {
                xscale_ideal()
            }
        })
        .collect();
    let policy: Box<dyn dvs_admit::EnginePolicy> = if watermark {
        Box::new(WatermarkPolicy::new(0.7, 0.4, 2.0).unwrap())
    } else {
        Box::new(OnlineGreedy)
    };
    let mut engine = AdmissionEngine::new(
        cpus,
        policy,
        EngineConfig::default()
            .resolve_every(2)
            .resolve_budget(5_000),
    )
    .unwrap();
    dvs_admit::trace::replay(&mut engine, &trace).unwrap();
    (
        engine.format_decision_log(),
        engine.metrics().deterministic_summary(),
    )
}

#[test]
fn decision_log_is_bit_identical_across_thread_counts() {
    for seed in [1u64, 9, 23] {
        for (domains, watermark) in [(1, false), (2, true)] {
            let spec = TraceSpec::new(18, 2.4, seed);
            let (log1, sum1) = with_threads("1", || replayed(spec, domains, watermark));
            assert!(
                log1.contains("accepted") || log1.contains("rejected"),
                "seed {seed}: empty decision log"
            );
            for threads in ["2", "4", "8"] {
                let (log, sum) = with_threads(threads, || replayed(spec, domains, watermark));
                assert_eq!(
                    log, log1,
                    "seed {seed} domains {domains}: decision log diverged at {threads} threads"
                );
                assert_eq!(
                    sum, sum1,
                    "seed {seed} domains {domains}: metrics diverged at {threads} threads"
                );
            }
        }
    }
}

fn replayed_warm(spec: TraceSpec, warm: bool) -> (String, String) {
    let trace = spec.generate().unwrap();
    let mut engine = AdmissionEngine::new(
        vec![xscale_ideal()],
        Box::new(OnlineGreedy),
        EngineConfig::default().resolve_every(1).warm_start(warm),
    )
    .unwrap();
    dvs_admit::trace::replay(&mut engine, &trace).unwrap();
    let m = engine.metrics();
    // The comparable slice across warm/cold: every decision counter and
    // cost bit, but not the node/skip counters (warm-starting is allowed
    // to spend fewer nodes — that is the point).
    let decisions = format!(
        "arrivals={} admitted={} rejected={} shed={} readmitted={} energy={:x} accrued={:x} \
         charged={:x}",
        m.arrivals,
        m.admitted,
        m.rejected,
        m.shed,
        m.readmitted,
        m.energy.to_bits(),
        m.penalty_accrued.to_bits(),
        m.penalty_charged.to_bits()
    );
    (engine.format_decision_log(), decisions)
}

/// The hot-path optimizations of this crate — memoized pricing (always
/// on), the clean-domain re-solve short circuit (always on) and the
/// warm-started incremental re-solve (toggleable) — must never change a
/// decision: across ≥10 seeds and every thread count, warm-started
/// replays produce the same decision log and cost bits as the naive
/// cold-start path.
#[test]
fn warm_start_decision_logs_match_cold_across_threads_and_seeds() {
    for seed in 0..10u64 {
        let spec = TraceSpec::new(14, 2.2, seed);
        let (ref_log, ref_decisions) = with_threads("1", || replayed_warm(spec, false));
        for threads in ["1", "2", "4", "8"] {
            for warm in [false, true] {
                let (log, decisions) = with_threads(threads, || replayed_warm(spec, warm));
                assert_eq!(
                    log, ref_log,
                    "seed {seed} threads {threads} warm {warm}: decision log diverged"
                );
                assert_eq!(
                    decisions, ref_decisions,
                    "seed {seed} threads {threads} warm {warm}: decision counters diverged"
                );
            }
        }
    }
}

#[test]
fn repeated_replays_are_reproducible_within_one_thread_count() {
    let spec = TraceSpec::new(14, 1.8, 5);
    let (a_log, a_sum) = with_threads("4", || replayed(spec, 2, false));
    let (b_log, b_sum) = with_threads("4", || replayed(spec, 2, false));
    assert_eq!(a_log, b_log);
    assert_eq!(a_sum, b_sum);
}
