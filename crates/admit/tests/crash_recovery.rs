//! The recovery invariant, end to end: kill a journaled engine at an
//! arbitrary point, recover `snapshot + replay of the journal tail`, feed
//! the rest of the trace, and the decision log is bit-identical to an
//! uninterrupted run — at every `DVS_THREADS`, across many seeds, and
//! across a real SIGKILL of the `dvs_admitd` process.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use dvs_admit::{AdmissionEngine, EngineConfig, JournalConfig, TraceSpec};
use dvs_power::presets::xscale_ideal;
use reject_sched::online::OnlineGreedy;
use rt_model::io::EventRecord;

/// Serialises tests that touch the process-global `DVS_THREADS` variable.
fn with_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var(dvs_exec::THREADS_ENV, n);
    let out = f();
    std::env::remove_var(dvs_exec::THREADS_ENV);
    out
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvs_admit_crash_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn config() -> EngineConfig {
    EngineConfig::default()
        .resolve_every(2)
        .resolve_budget(5_000)
}

fn jconfig() -> JournalConfig {
    // A short cadence so even small traces cross several snapshots.
    JournalConfig {
        snapshot_every: 8,
        ..JournalConfig::default()
    }
}

fn journaled_engine(path: &PathBuf) -> AdmissionEngine {
    let _ = std::fs::remove_file(path);
    let mut engine =
        AdmissionEngine::new(vec![xscale_ideal()], Box::new(OnlineGreedy), config()).unwrap();
    let journal = dvs_admit::Journal::create(path, jconfig()).unwrap();
    engine.attach_journal(journal);
    engine
}

/// Run the whole trace uninterrupted; the reference artifacts.
fn uninterrupted(trace: &[EventRecord], path: &PathBuf) -> (String, String) {
    let mut engine = journaled_engine(path);
    for e in trace {
        engine.apply(e).unwrap();
    }
    (
        engine.format_decision_log(),
        engine.metrics().deterministic_summary(),
    )
}

/// Run `cut` events, drop the engine cold (no drain, no final snapshot —
/// the journal has everything because appends flush before the ack),
/// recover from the file, and run the rest.
fn killed_and_recovered(trace: &[EventRecord], cut: usize, path: &PathBuf) -> (String, String) {
    {
        let mut engine = journaled_engine(path);
        for e in &trace[..cut] {
            engine.apply(e).unwrap();
        }
        // Dropped here mid-flight: the crash.
    }
    let recovered = AdmissionEngine::recover(
        path,
        vec![xscale_ideal()],
        Box::new(OnlineGreedy),
        config(),
        jconfig(),
    )
    .unwrap();
    assert_eq!(recovered.records_lost, 0, "clean kill must lose nothing");
    let mut engine = recovered.engine;
    assert_eq!(engine.metrics().recoveries, 1);
    for e in &trace[cut..] {
        engine.apply(e).unwrap();
    }
    (
        engine.format_decision_log(),
        engine.metrics().deterministic_summary(),
    )
}

/// ≥10 seeds × DVS_THREADS {1,2,4,8}: a kill at a seed-dependent cut
/// point recovers to a bit-identical decision log and deterministic
/// metrics summary (the balance invariant holds across the recovery
/// boundary because `deterministic_summary` quantifies over it).
#[test]
fn kill_and_recover_is_bit_identical_across_seeds_and_threads() {
    for seed in 0..10u64 {
        let trace = TraceSpec::new(14, 2.2, seed).generate().unwrap();
        let cut = 1 + (seed as usize * 7 + 3) % (trace.len() - 1);
        let ref_path = tmp(&format!("ref_{seed}.wal"));
        let (ref_log, ref_sum) = with_threads("1", || uninterrupted(&trace, &ref_path));
        assert!(
            ref_log.contains("accepted") || ref_log.contains("rejected"),
            "seed {seed}: empty decision log"
        );
        for threads in ["1", "2", "4", "8"] {
            let path = tmp(&format!("cut_{seed}_{threads}.wal"));
            let (log, sum) = with_threads(threads, || killed_and_recovered(&trace, cut, &path));
            assert_eq!(
                log, ref_log,
                "seed {seed} cut {cut} threads {threads}: decision log diverged after recovery"
            );
            assert_eq!(
                sum, ref_sum,
                "seed {seed} cut {cut} threads {threads}: metrics diverged after recovery"
            );
        }
    }
}

/// Killing the engine *again* right after recovery (before any new event)
/// and recovering a second time still converges to the reference log.
#[test]
fn double_kill_double_recover_converges() {
    let trace = TraceSpec::new(14, 2.4, 42).generate().unwrap();
    let ref_path = tmp("double_ref.wal");
    let (ref_log, ref_sum) = with_threads("1", || uninterrupted(&trace, &ref_path));

    with_threads("1", || {
        let path = tmp("double_cut.wal");
        {
            let mut engine = journaled_engine(&path);
            for e in &trace[..trace.len() / 3] {
                engine.apply(e).unwrap();
            }
        }
        let once = AdmissionEngine::recover(
            &path,
            vec![xscale_ideal()],
            Box::new(OnlineGreedy),
            config(),
            jconfig(),
        )
        .unwrap();
        let mut engine = once.engine;
        for e in &trace[trace.len() / 3..2 * trace.len() / 3] {
            engine.apply(e).unwrap();
        }
        drop(engine); // second crash

        let twice = AdmissionEngine::recover(
            &path,
            vec![xscale_ideal()],
            Box::new(OnlineGreedy),
            config(),
            jconfig(),
        )
        .unwrap();
        let mut engine = twice.engine;
        assert_eq!(engine.metrics().recoveries, 2);
        for e in &trace[2 * trace.len() / 3..] {
            engine.apply(e).unwrap();
        }
        assert_eq!(engine.format_decision_log(), ref_log);
        assert_eq!(engine.metrics().deterministic_summary(), ref_sum);
    });
}

/// A graceful drain (snapshot_now) followed by recovery restores from the
/// snapshot with zero tail replay.
#[test]
fn drain_snapshot_recovers_without_replay() {
    with_threads("2", || {
        let trace = TraceSpec::new(12, 2.0, 7).generate().unwrap();
        let path = tmp("drain.wal");
        let mut engine = journaled_engine(&path);
        for e in &trace {
            engine.apply(e).unwrap();
        }
        let ref_log = engine.format_decision_log();
        engine.snapshot_now().unwrap();
        drop(engine);

        let recovered = AdmissionEngine::recover(
            &path,
            vec![xscale_ideal()],
            Box::new(OnlineGreedy),
            config(),
            jconfig(),
        )
        .unwrap();
        assert!(recovered.had_snapshot);
        assert_eq!(recovered.replayed, 0, "drain snapshot covers the whole log");
        assert_eq!(recovered.engine.format_decision_log(), ref_log);
    });
}

/// Recovering a journal path that does not exist yet starts fresh: no
/// recovery counted, engine empty, journal attached and usable.
#[test]
fn recover_missing_journal_starts_fresh() {
    let path = tmp("fresh.wal");
    let _ = std::fs::remove_file(&path);
    let recovered = AdmissionEngine::recover(
        &path,
        vec![xscale_ideal()],
        Box::new(OnlineGreedy),
        config(),
        jconfig(),
    )
    .unwrap();
    assert!(!recovered.had_snapshot);
    assert_eq!(recovered.replayed, 0);
    let mut engine = recovered.engine;
    assert_eq!(engine.metrics().recoveries, 0);
    let trace = TraceSpec::new(6, 1.5, 1).generate().unwrap();
    for e in &trace {
        engine.apply(e).unwrap();
    }
    assert!(engine.metrics().journal_records > 0);
}

// ---------------------------------------------------------------------------
// Process-level: a real SIGKILL of dvs_admitd over its stdin protocol.
// ---------------------------------------------------------------------------

fn spawn_admitd(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_dvs_admitd"))
        .args(args)
        .env(dvs_exec::THREADS_ENV, "2")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dvs_admitd")
}

/// Feed `lines` one at a time, reading the response after each so every
/// acknowledged request is known to be journaled before we proceed.
fn feed(child: &mut Child, reader: &mut impl BufRead, lines: &[String]) -> Vec<String> {
    let stdin = child.stdin.as_mut().unwrap();
    let mut responses = Vec::new();
    for line in lines {
        writeln!(stdin, "{line}").unwrap();
        stdin.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(
            resp.contains("\"ok\":true"),
            "request {line:?} failed: {resp}"
        );
        responses.push(resp);
    }
    responses
}

fn request_log(child: &mut Child, reader: &mut impl BufRead) -> String {
    let stdin = child.stdin.as_mut().unwrap();
    writeln!(stdin, "{{\"op\":\"log\"}}").unwrap();
    stdin.flush().unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\":true"), "log request failed: {resp}");
    resp
}

fn trace_requests(seed: u64) -> Vec<String> {
    let trace = TraceSpec::new(10, 2.0, seed).generate().unwrap();
    trace
        .iter()
        .map(|e| {
            use rt_model::io::EventKind;
            match &e.kind {
                EventKind::Arrive(t) => {
                    let deadline = if t.deadline() == t.period() {
                        String::new()
                    } else {
                        format!(",\"deadline\":{}", t.deadline())
                    };
                    format!(
                        "{{\"op\":\"arrive\",\"at\":{},\"id\":{},\"cycles\":{},\"period\":{}{deadline},\"penalty\":{}}}",
                        e.at,
                        t.id().index(),
                        t.wcec(),
                        t.period(),
                        t.penalty()
                    )
                }
                EventKind::Depart(id) => {
                    format!("{{\"op\":\"depart\",\"at\":{},\"id\":{}}}", e.at, id.index())
                }
                EventKind::Tick => format!("{{\"op\":\"tick\",\"at\":{}}}", e.at),
            }
        })
        .collect()
}

/// SIGKILL `dvs_admitd` halfway through a session, restart it with
/// `--recover`, stream the rest: the final decision log matches an
/// uninterrupted server bit for bit.
#[test]
#[cfg(unix)]
fn sigkill_and_recover_matches_uninterrupted_server() {
    for seed in [3u64, 11, 29] {
        let requests = trace_requests(seed);
        let cut = requests.len() / 2;

        // Reference: one server, no interruption.
        let ref_wal = tmp(&format!("proc_ref_{seed}.wal"));
        let _ = std::fs::remove_file(&ref_wal);
        let mut child = spawn_admitd(&["--stdin", "--journal", ref_wal.to_str().unwrap()]);
        let mut reader = BufReader::new(child.stdout.take().unwrap());
        feed(&mut child, &mut reader, &requests);
        let ref_log = request_log(&mut child, &mut reader);
        drop(child.stdin.take());
        child.wait().unwrap();

        // Interrupted: stream half, SIGKILL, restart with --recover.
        let wal = tmp(&format!("proc_cut_{seed}.wal"));
        let _ = std::fs::remove_file(&wal);
        let mut child = spawn_admitd(&["--stdin", "--journal", wal.to_str().unwrap()]);
        let mut reader = BufReader::new(child.stdout.take().unwrap());
        feed(&mut child, &mut reader, &requests[..cut]);
        child.kill().unwrap(); // SIGKILL — no drain, no snapshot
        child.wait().unwrap();

        let mut child = spawn_admitd(&["--stdin", "--journal", wal.to_str().unwrap(), "--recover"]);
        let mut reader = BufReader::new(child.stdout.take().unwrap());
        feed(&mut child, &mut reader, &requests[cut..]);
        let log = request_log(&mut child, &mut reader);
        drop(child.stdin.take());
        child.wait().unwrap();

        assert_eq!(
            log, ref_log,
            "seed {seed}: recovered server's decision log diverged"
        );
    }
}
