//! Behavioral tests for the admission engine: event validation, the
//! shedding economics of the re-solve pass, watermark hysteresis, and the
//! metrics balance invariant.

use dvs_admit::{
    AdmissionEngine, AdmitError, EngineConfig, TraceSpec, Verdict, WatermarkPolicy,
    RESERVED_ANCHOR_ID,
};
use dvs_power::presets::cubic_ideal;
use reject_sched::online::OnlineGreedy;
use rt_model::io::{EventKind, EventRecord};
use rt_model::{Task, TaskId};

fn engine() -> AdmissionEngine {
    AdmissionEngine::new(
        vec![cubic_ideal()],
        Box::new(OnlineGreedy),
        EngineConfig::default(),
    )
    .unwrap()
}

fn arrive(at: f64, task: Task) -> EventRecord {
    EventRecord::new(at, EventKind::Arrive(task))
}

/// A task priced to be admitted by the myopic greedy rule on an empty
/// cubic domain with the default 1000-tick horizon (`ΔE = 1000·u³`).
fn cheap(id: usize, u: f64, penalty: f64) -> Task {
    Task::new(id, u * 1000.0, 1000)
        .unwrap()
        .with_penalty(penalty)
}

#[test]
fn rejects_time_regressions_and_bad_ids() {
    let mut e = engine();
    e.apply(&arrive(10.0, cheap(1, 0.1, 50.0))).unwrap();
    assert!(matches!(
        e.apply(&arrive(5.0, cheap(2, 0.1, 50.0))),
        Err(AdmitError::TimeRegression { .. })
    ));
    assert!(matches!(
        e.apply(&arrive(10.0, cheap(1, 0.1, 50.0))),
        Err(AdmitError::DuplicateTask(_))
    ));
    assert!(matches!(
        e.apply(&arrive(
            10.0,
            Task::new(RESERVED_ANCHOR_ID, 1.0, 1000).unwrap()
        )),
        Err(AdmitError::ReservedId(_))
    ));
    assert!(matches!(
        e.apply(&EventRecord::new(11.0, EventKind::Depart(TaskId::new(99)))),
        Err(AdmitError::UnknownTask(_))
    ));
    // Errors must not corrupt the ledger: the first task is still active.
    assert_eq!(e.active_len(0), 1);
}

#[test]
fn resolve_sheds_unprofitable_commitments_and_charges_penalties() {
    let mut e = engine();
    // u = 0.5 each: alone either costs ΔE = 125; together the second costs
    // marginal 1000·(1 − 0.125) = 875. Both clear their own admission bar
    // at arrival (penalty 130 ≥ 125 for the first), but the pair at u = 1.0
    // burns 1000 energy per horizon while shedding one saves 875 at a
    // penalty of only 130 — the re-solve must notice and drop exactly one.
    e.apply(&arrive(0.0, cheap(1, 0.5, 130.0))).unwrap();
    let d = e.apply(&arrive(0.0, cheap(2, 0.5, 900.0))).unwrap();
    assert!(matches!(d[0].verdict, Verdict::Accepted { .. }));
    assert_eq!(e.active_len(0), 2);

    let sheds = e.apply(&EventRecord::new(1.0, EventKind::Tick)).unwrap();
    assert_eq!(sheds.len(), 1, "expected exactly one shed, got {sheds:?}");
    assert_eq!(sheds[0].task, TaskId::new(1), "the cheap-penalty task goes");
    assert!(matches!(sheds[0].verdict, Verdict::Shed { domain: 0 }));
    assert_eq!(e.active_len(0), 1);

    let m = e.metrics();
    assert_eq!(m.admitted, 2);
    assert_eq!(m.shed, 1);
    assert_eq!(m.accepted(), 1);
    assert_eq!(m.accepted() + m.rejected + m.standing_shed(), m.arrivals);
    assert_eq!(m.penalty_charged, 130.0, "shed penalty charged once");
    assert!(m.resolves >= 1);
}

#[test]
fn resolve_keeps_profitable_commitments_untouched() {
    let mut e = engine();
    e.apply(&arrive(0.0, cheap(1, 0.3, 500.0))).unwrap();
    e.apply(&arrive(0.0, cheap(2, 0.2, 500.0))).unwrap();
    let sheds = e.apply(&EventRecord::new(10.0, EventKind::Tick)).unwrap();
    assert!(sheds.is_empty());
    assert_eq!(e.active_len(0), 2);
    assert_eq!(e.metrics().shed, 0);
}

#[test]
fn regret_trigger_fires_without_periodic_resolves() {
    let mut e = AdmissionEngine::new(
        vec![cubic_ideal()],
        Box::new(OnlineGreedy),
        EngineConfig::default()
            .resolve_every(0)
            .regret_threshold(100.0),
    )
    .unwrap();
    e.apply(&arrive(0.0, cheap(1, 0.5, 130.0))).unwrap();
    e.apply(&arrive(0.0, cheap(2, 0.5, 900.0))).unwrap();
    // Regret = max(0, 875 − 130) + max(0, 875 − 900) = 745 > 100.
    assert!(e.regret().unwrap() > 100.0);
    let sheds = e.apply(&EventRecord::new(1.0, EventKind::Tick)).unwrap();
    assert_eq!(sheds.len(), 1);
    assert!(
        (e.regret().unwrap()).abs() < 1e-9,
        "regret cleared after shed"
    );
}

#[test]
fn watermark_policy_engages_and_disengages_with_hysteresis() {
    let mut policy = WatermarkPolicy::new(0.6, 0.3, 4.0).unwrap();
    let mut e = AdmissionEngine::new(
        vec![cubic_ideal()],
        Box::new(policy.clone()),
        EngineConfig::default().resolve_every(0),
    )
    .unwrap();
    // Below the high watermark the plain rule applies: u = 0.5 costs 125,
    // penalty 130 clears it.
    let d = e.apply(&arrive(0.0, cheap(1, 0.5, 130.0))).unwrap();
    assert!(matches!(d[0].verdict, Verdict::Accepted { .. }));
    // Now fill = 0.5 / s_max ≥ 0.6 is false… next arrival pushes the check:
    // u = 0.2 marginal from 0.5 is 1000·(0.343 − 0.125) = 218; penalty 230
    // clears the plain bar but fill 0.5 < 0.6 keeps the hedge off.
    let d = e.apply(&arrive(1.0, cheap(2, 0.2, 230.0))).unwrap();
    assert!(matches!(d[0].verdict, Verdict::Accepted { .. }));
    // fill = 0.7 ≥ 0.6 → engaged. Marginal for u = 0.1 from 0.7 is
    // 1000·(0.512 − 0.343) = 169; penalty 300 clears the plain bar but not
    // θ·ΔE = 676 → rejected under reservation.
    let d = e.apply(&arrive(2.0, cheap(3, 0.1, 300.0))).unwrap();
    assert!(matches!(d[0].verdict, Verdict::Rejected));

    // Mirror the latch on a standalone policy to observe the flag.
    use dvs_admit::EnginePolicy;
    let oracle_engine = engine(); // for an oracle instance shape
    let _ = oracle_engine;
    let oracle = reject_sched::Instance::new(
        rt_model::TaskSet::try_from_tasks([Task::new(0, 0.0, 1000).unwrap()]).unwrap(),
        cubic_ideal(),
    )
    .unwrap();
    assert!(!policy.is_engaged());
    policy.decide(&oracle, 0.7, &cheap(9, 0.1, 300.0)).unwrap();
    assert!(policy.is_engaged(), "crossing high engages");
    policy.decide(&oracle, 0.45, &cheap(9, 0.1, 300.0)).unwrap();
    assert!(policy.is_engaged(), "between watermarks stays engaged");
    policy.decide(&oracle, 0.2, &cheap(9, 0.1, 300.0)).unwrap();
    assert!(!policy.is_engaged(), "reaching low disengages");
}

#[test]
fn resolve_policy_never_costs_more_than_myopic_greedy() {
    // The acceptance criterion behind experiment E7, checked here on a
    // small grid so regressions surface in the unit suite first.
    for seed in [3u64, 11] {
        for load in [1.2, 2.2] {
            let trace = TraceSpec::new(16, load, seed).generate().unwrap();
            let run = |resolve: bool| {
                let config = if resolve {
                    EngineConfig::default().resolve_every(1)
                } else {
                    EngineConfig::default().resolve_every(0)
                };
                let mut e =
                    AdmissionEngine::new(vec![cubic_ideal()], Box::new(OnlineGreedy), config)
                        .unwrap();
                dvs_admit::trace::replay(&mut e, &trace).unwrap();
                e.metrics().total_cost()
            };
            let myopic = run(false);
            let resolving = run(true);
            assert!(
                resolving <= myopic + 1e-9,
                "seed {seed} load {load}: re-solve {resolving} > myopic {myopic}"
            );
        }
    }
}

#[test]
fn balance_invariant_holds_on_generated_traces() {
    for seed in 0..4u64 {
        let trace = TraceSpec::new(20, 2.0, seed).generate().unwrap();
        let mut e = AdmissionEngine::new(
            vec![cubic_ideal(), cubic_ideal()],
            Box::new(OnlineGreedy),
            EngineConfig::default(),
        )
        .unwrap();
        dvs_admit::trace::replay(&mut e, &trace).unwrap();
        let m = e.metrics();
        assert_eq!(m.arrivals, 20);
        assert_eq!(m.accepted() + m.rejected + m.standing_shed(), m.arrivals);
        assert_eq!(m.departures, 20);
        assert!(m.energy >= 0.0 && m.penalty_accrued >= 0.0);
    }
}

#[test]
fn pinned_arrivals_are_placed_only_on_their_pin_domain() {
    let mut e = AdmissionEngine::new(
        vec![cubic_ideal(), cubic_ideal()],
        Box::new(OnlineGreedy),
        EngineConfig::default(),
    )
    .unwrap();
    // Load domain 0 so the cheapest-marginal rule would pick the empty
    // domain 1 for any later arrival.
    let d = e.apply(&arrive(0.0, cheap(1, 0.5, 1000.0))).unwrap();
    assert!(matches!(d[0].verdict, Verdict::Accepted { domain: 0 }));
    // A pin to the loaded domain overrides the cheaper placement…
    let d = e
        .apply(&arrive(1.0, cheap(2, 0.3, 1000.0).with_domain(0)))
        .unwrap();
    assert!(
        matches!(d[0].verdict, Verdict::Accepted { domain: 0 }),
        "pinned task placed off its pin: {d:?}"
    );
    // …while the identical unpinned task takes the cheap empty domain.
    let d = e.apply(&arrive(2.0, cheap(3, 0.3, 1000.0))).unwrap();
    assert!(
        matches!(d[0].verdict, Verdict::Accepted { domain: 1 }),
        "unpinned task lost legacy cheapest-marginal placement: {d:?}"
    );
    assert_eq!(e.active_len(0), 2);
    assert_eq!(e.active_len(1), 1);
}

#[test]
fn out_of_range_pins_are_refused_before_any_state_changes() {
    let mut e = engine();
    let err = e
        .apply(&arrive(0.0, cheap(1, 0.1, 50.0).with_domain(3)))
        .unwrap_err();
    assert!(
        matches!(err, AdmitError::InvalidDomain { domain: 3, .. }),
        "wrong error: {err}"
    );
    assert_eq!(err.kind(), "invalid-domain");
    assert_eq!(e.active_len(0), 0);
    assert_eq!(e.metrics().arrivals, 0, "refused arrival was counted");
}

#[test]
fn snapshots_round_trip_domain_pins() {
    let config = EngineConfig::default();
    let mut a = AdmissionEngine::new(
        vec![cubic_ideal(), cubic_ideal()],
        Box::new(OnlineGreedy),
        config,
    )
    .unwrap();
    // One pinned admitted task, one pinned standing rejection (an
    // infeasible density on its pin domain), one unpinned admitted task.
    a.apply(&arrive(0.0, cheap(1, 0.4, 900.0).with_domain(1)))
        .unwrap();
    a.apply(&arrive(
        1.0,
        Task::new(2, 2000.0, 1000)
            .unwrap()
            .with_penalty(5.0)
            .with_domain(0),
    ))
    .unwrap();
    a.apply(&arrive(2.0, cheap(3, 0.2, 900.0))).unwrap();
    let snap = a.encode_snapshot();
    assert!(
        snap.contains("dvs-admit-snapshot"),
        "unexpected header: {snap}"
    );

    let mut b = AdmissionEngine::new(
        vec![cubic_ideal(), cubic_ideal()],
        Box::new(OnlineGreedy),
        config,
    )
    .unwrap();
    b.restore_snapshot(&snap).unwrap();
    assert_eq!(b.encode_snapshot(), snap, "snapshot does not round-trip");
    // The restored engine keeps making the same decisions: a departure of
    // the pinned task must guard (and log) on the pin domain in both.
    let da = a
        .apply(&EventRecord::new(3.0, EventKind::Depart(TaskId::new(1))))
        .unwrap();
    let db = b
        .apply(&EventRecord::new(3.0, EventKind::Depart(TaskId::new(1))))
        .unwrap();
    assert_eq!(da, db, "post-restore decisions diverged");
    assert_eq!(a.format_decision_log(), b.format_decision_log());
}
