//! Newline-delimited JSON protocol and the serving loops behind
//! `dvs_admitd`.
//!
//! One request per line, one response per line. Requests are flat JSON
//! objects with an `"op"` field:
//!
//! ```text
//! {"op":"arrive","at":0.0,"id":1,"cycles":30.0,"period":100,"penalty":2.5}
//! {"op":"arrive","at":1.0,"id":2,"cycles":45.0,"period":100,"deadline":60,"penalty":5.0}
//! {"op":"depart","at":5.0,"id":1}
//! {"op":"tick","at":10.0}
//! {"op":"stats"}
//! {"op":"log"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`; decisions carry `"decision"`
//! (`"accepted"` with its `"domain"`, or `"rejected"`), ticks report the
//! `"shed"` id list, `stats`/`shutdown` return the full metrics registry
//! (see [`AdmissionEngine::stats_json`]), and `log` dumps the engine's
//! decision log (the determinism suite's bit-compared artifact). Invalid
//! lines yield a **structured error** —
//! `{"ok":false,"kind":"…","error":"…"}`, with `"id"` when the error is
//! about a task (duplicate arrival, departure of an unknown or
//! already-departed id) — and never terminate the session: an erroring
//! request leaves the engine untouched (see
//! [`AdmissionEngine::apply_opts`]) and is safe to retry.
//!
//! The same handler serves stdin/stdout ([`serve_lines`]) and TCP
//! connections ([`serve_tcp`], one thread per connection over a shared
//! engine). The engine core itself stays `DVS_THREADS`-deterministic —
//! concurrency only affects the interleaving of *independent sessions'*
//! requests, never the outcome of a given event sequence.
//!
//! ## Robustness controls
//!
//! [`ServeOptions`] and [`ServerControl`] layer the overload/drain policy
//! on top:
//!
//! * **Read timeouts** (`read_timeout`) bound how long a connection may
//!   sit idle mid-request, reaping slow-loris clients; a timed-out session
//!   ends with [`SessionEnd::TimedOut`] instead of blocking a worker
//!   forever.
//! * **Backpressure** (`overload_threshold`): when more requests than the
//!   threshold are in flight across sessions, excess events are applied on
//!   the engine's degraded myopic fast path — admission verdicts are
//!   unchanged (pricing is reservation-based and myopic-identical), only
//!   re-solve passes are skipped, so the server sheds *optimization* work,
//!   never availability. Counted in `backpressure_sheds`.
//! * **Graceful drain** ([`ServerControl::request_drain`], wired to
//!   SIGTERM by the binary): the accept loop stops, each session finishes
//!   the requests it has already buffered and ends with
//!   [`SessionEnd::Drained`], and the binary then fsyncs and snapshots the
//!   journal.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rt_model::io::{EventKind, EventRecord};
use rt_model::{Task, TaskId};

use crate::engine::{AdmissionEngine, Decision, Verdict};
use crate::json::{self, JsonValue};
use crate::replication::{self, RoleContext};
use crate::AdmitError;

/// Outcome of handling one request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Handled {
    /// The response line (no trailing newline).
    pub response: String,
    /// Whether the request asked the server to shut down.
    pub shutdown: bool,
}

/// A structured request error: machine-readable `kind`, the task id it is
/// about (when there is one), and the human-readable message.
#[derive(Debug)]
struct ReqError {
    kind: &'static str,
    id: Option<usize>,
    msg: String,
}

impl ReqError {
    fn protocol(msg: impl Into<String>) -> Self {
        ReqError {
            kind: "bad-request",
            id: None,
            msg: msg.into(),
        }
    }

    fn admit(e: &AdmitError) -> Self {
        ReqError {
            kind: e.kind(),
            id: e.task_id().map(|t| t.index()),
            msg: e.to_string(),
        }
    }
}

fn err_response(e: &ReqError) -> String {
    let id = e.id.map_or_else(String::new, |i| format!(",\"id\":{i}"));
    format!(
        "{{\"ok\":false,\"kind\":\"{}\",\"error\":\"{}\"{id}}}",
        e.kind,
        json::escape(&e.msg)
    )
}

fn num_field(pairs: &[(String, JsonValue)], key: &'static str) -> Result<f64, ReqError> {
    json::get(pairs, key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| ReqError::protocol(format!("missing or non-numeric field {key:?}")))
}

/// Formats the decisions an event produced as decision-log lines (one per
/// line, trailing newline), exactly as [`AdmissionEngine::format_decision_log`]
/// renders them — the per-event slice a router stitches into its merged
/// cluster log.
fn dlog_lines(decisions: &[Decision]) -> String {
    let mut out = String::new();
    for d in decisions {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Whether the request asked for its decision-log lines to be echoed
/// (`"dlog":true`).
fn wants_dlog(pairs: &[(String, JsonValue)]) -> bool {
    json::get(pairs, "dlog") == Some(&JsonValue::Bool(true))
}

fn shed_ids(decisions: &[Decision]) -> Vec<usize> {
    decisions
        .iter()
        .filter(|d| matches!(d.verdict, Verdict::Shed { .. }))
        .map(|d| d.task.index())
        .collect()
}

fn ids_json(ids: &[usize]) -> String {
    let items: Vec<String> = ids.iter().map(usize::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Parses and executes one request line against the engine.
///
/// Never panics and never returns `Err`: protocol and engine errors are
/// encoded in the response so a misbehaving client cannot take the server
/// down.
pub fn handle_line(engine: &mut AdmissionEngine, line: &str) -> Handled {
    handle_line_with(engine, line, &mut json::Scratch::default())
}

/// [`handle_line`], but parsing into a caller-provided [`json::Scratch`]
/// so a long-lived session reuses its request buffers instead of
/// allocating per line. The serving loops keep one scratch per session.
pub fn handle_line_with(
    engine: &mut AdmissionEngine,
    line: &str,
    scratch: &mut json::Scratch,
) -> Handled {
    handle_line_opts(engine, line, scratch, false)
}

/// [`handle_line_with`] with an explicit fast-path flag: `fast = true`
/// applies events on the engine's degraded myopic path (the backpressure
/// response — see [`AdmissionEngine::apply_opts`]).
pub fn handle_line_opts(
    engine: &mut AdmissionEngine,
    line: &str,
    scratch: &mut json::Scratch,
    fast: bool,
) -> Handled {
    let mut shutdown = false;
    let response = match handle_inner(engine, line, scratch, &mut shutdown, fast) {
        Ok(r) => r,
        Err(e) => err_response(&e),
    };
    Handled { response, shutdown }
}

fn handle_inner(
    engine: &mut AdmissionEngine,
    line: &str,
    scratch: &mut json::Scratch,
    shutdown: &mut bool,
    fast: bool,
) -> Result<String, ReqError> {
    let pairs = json::parse_object_into(line, scratch)
        .map_err(|e| ReqError::protocol(format!("bad request: {e}")))?;
    let op = json::get(pairs, "op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ReqError::protocol("missing field \"op\""))?;
    match op {
        "arrive" => {
            let at = num_field(pairs, "at")?;
            let id = num_field(pairs, "id")? as usize;
            let cycles = num_field(pairs, "cycles")?;
            let period = num_field(pairs, "period")? as u64;
            let penalty = num_field(pairs, "penalty")?;
            if !penalty.is_finite() || penalty < 0.0 {
                return Err(ReqError::protocol(format!("invalid penalty {penalty}")));
            }
            let mut task = Task::new(id, cycles, period)
                .map_err(|e| ReqError::protocol(e.to_string()))?
                .with_penalty(penalty);
            if let Some(d) = json::get(pairs, "deadline").and_then(JsonValue::as_f64) {
                task = task
                    .with_deadline(d as u64)
                    .map_err(|e| ReqError::protocol(e.to_string()))?;
            }
            if let Some(d) = json::get(pairs, "domain").and_then(JsonValue::as_f64) {
                if d < 0.0 || d.fract() != 0.0 {
                    return Err(ReqError::protocol(format!("invalid domain {d}")));
                }
                task = task.with_domain(d as usize);
            }
            let echo = wants_dlog(pairs);
            let decisions = engine
                .apply_opts(&EventRecord::new(at, EventKind::Arrive(task)), fast)
                .map_err(|e| ReqError::admit(&e))?;
            let verdict = decisions
                .iter()
                .find(|d| d.task == task.id())
                .map(|d| d.verdict)
                .ok_or_else(|| ReqError::protocol("engine returned no verdict"))?;
            let dlog = if echo {
                format!(",\"dlog\":\"{}\"", json::escape(&dlog_lines(&decisions)))
            } else {
                String::new()
            };
            Ok(match verdict {
                Verdict::Accepted { domain } => format!(
                    "{{\"ok\":true,\"decision\":\"accepted\",\"id\":{id},\"domain\":{domain}{dlog}}}"
                ),
                _ => format!("{{\"ok\":true,\"decision\":\"rejected\",\"id\":{id}{dlog}}}"),
            })
        }
        "depart" => {
            let at = num_field(pairs, "at")?;
            let id = num_field(pairs, "id")? as usize;
            let echo = wants_dlog(pairs);
            let decisions = engine
                .apply_opts(
                    &EventRecord::new(at, EventKind::Depart(TaskId::new(id))),
                    fast,
                )
                .map_err(|e| ReqError::admit(&e))?;
            let dlog = if echo {
                format!(",\"dlog\":\"{}\"", json::escape(&dlog_lines(&decisions)))
            } else {
                String::new()
            };
            Ok(format!(
                "{{\"ok\":true,\"id\":{id},\"shed\":{}{dlog}}}",
                ids_json(&shed_ids(&decisions))
            ))
        }
        "tick" => {
            let at = num_field(pairs, "at")?;
            let echo = wants_dlog(pairs);
            let decisions = engine
                .apply_opts(&EventRecord::new(at, EventKind::Tick), fast)
                .map_err(|e| ReqError::admit(&e))?;
            let dlog = if echo {
                format!(",\"dlog\":\"{}\"", json::escape(&dlog_lines(&decisions)))
            } else {
                String::new()
            };
            Ok(format!(
                "{{\"ok\":true,\"shed\":{},\"resolves\":{}{dlog}}}",
                ids_json(&shed_ids(&decisions)),
                engine.metrics().resolves
            ))
        }
        "export" => {
            let local = num_field(pairs, "domain")? as usize;
            let payload = engine
                .export_domain(local)
                .map_err(|e| ReqError::admit(&e))?;
            Ok(format!(
                "{{\"ok\":true,\"op\":\"export\",\"domain\":{local},\"payload\":\"{}\"}}",
                json::escape(&payload)
            ))
        }
        "import" => {
            let key = json::get(pairs, "key")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| ReqError::protocol("missing or non-string field \"key\""))?;
            let payload = json::get(pairs, "payload")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| ReqError::protocol("missing or non-string field \"payload\""))?;
            let local = engine
                .import_domain(key, payload)
                .map_err(|e| ReqError::admit(&e))?;
            Ok(format!(
                "{{\"ok\":true,\"op\":\"import\",\"local\":{local}}}"
            ))
        }
        "layout" => {
            // One token per local domain, in index order: `+` live /
            // `-` fenced, suffixed with the import key for domains that
            // arrived via migration ("+2:5"). Keys are whitespace-free
            // by construction, so space-joining is unambiguous.
            let tokens: Vec<String> = engine
                .domain_layout()
                .into_iter()
                .map(|(fenced, key)| {
                    let mark = if fenced { '-' } else { '+' };
                    match key {
                        Some(k) => format!("{mark}{k}"),
                        None => mark.to_string(),
                    }
                })
                .collect();
            Ok(format!(
                "{{\"ok\":true,\"op\":\"layout\",\"domains\":{},\"layout\":\"{}\"}}",
                engine.domain_count(),
                json::escape(&tokens.join(" "))
            ))
        }
        "present" => {
            // Task-presence inventory for router restarts: every present
            // task as `id:domain` (`id:-` for an unpinned standing
            // rejection), plus the departed (burned) id set. Both are
            // space-joined; ids and domains are plain integers so the
            // encoding is unambiguous.
            let tasks: Vec<String> = engine
                .present_tasks()
                .into_iter()
                .map(|(id, pin)| match pin {
                    Some(d) => format!("{}:{d}", id.index()),
                    None => format!("{}:-", id.index()),
                })
                .collect();
            let departed: Vec<String> =
                engine.departed_ids().map(|id| id.index().to_string()).collect();
            Ok(format!(
                "{{\"ok\":true,\"op\":\"present\",\"tasks\":\"{}\",\"departed\":\"{}\"}}",
                json::escape(&tasks.join(" ")),
                json::escape(&departed.join(" "))
            ))
        }
        "stats" => Ok(format!("{{\"ok\":true,{}", &engine.stats_json()[1..])),
        // Role-less servers are plain primaries; failover deployments
        // intercept these two ops in `handle_line_role` before the lock.
        "role" | "promote" => Ok(format!(
            "{{\"ok\":true,\"role\":\"primary\",\"epoch\":{}}}",
            engine.epoch()
        )),
        "log" => Ok(format!(
            "{{\"ok\":true,\"decisions\":{},\"log\":\"{}\"}}",
            engine.decision_log().len(),
            json::escape(&engine.format_decision_log())
        )),
        "shutdown" => {
            *shutdown = true;
            Ok(format!("{{\"ok\":true,{}", &engine.stats_json()[1..]))
        }
        other => Err(ReqError::protocol(format!("unknown op {other:?}"))),
    }
}

/// Role-aware request dispatch for failover deployments.
///
/// Two request classes must be decided **before** taking the engine lock:
///
/// * `{"op":"promote"}` executes [`replication::promote`], which waits
///   for the replica loop to park — and the replica loop only checks its
///   park flag between lock acquisitions, so promoting from inside the
///   lock would deadlock.
/// * Write ops (`arrive`/`depart`/`tick`) on a **follower** are refused
///   with the structured kind `not-primary` — a follower's engine state
///   is owned by the replication stream, and interleaving client writes
///   would fork it from the primary's history. Reads (`stats`, `log`)
///   are served from the mirror state, which is exactly what a failover
///   drill wants to inspect.
///
/// `{"op":"role"}` reports `{"role":"follower"|"primary","epoch":N}`.
/// With `role = None` (a plain primary, no failover deployment) every op
/// falls through to [`handle_line_opts`] under the lock.
pub fn handle_line_role(
    engine: &Mutex<AdmissionEngine>,
    line: &str,
    scratch: &mut json::Scratch,
    fast: bool,
    role: Option<&RoleContext>,
) -> Handled {
    if let Some(ctx) = role {
        let op = json::parse_object_into(line, scratch)
            .ok()
            .and_then(|pairs| {
                json::get(pairs, "op")
                    .and_then(JsonValue::as_str)
                    .map(String::from)
            });
        match op.as_deref() {
            Some("promote") => {
                let response = match replication::promote(engine, ctx) {
                    Ok(epoch) => {
                        format!("{{\"ok\":true,\"role\":\"primary\",\"epoch\":{epoch}}}")
                    }
                    Err(e) => err_response(&ReqError::admit(&e)),
                };
                return Handled {
                    response,
                    shutdown: false,
                };
            }
            Some("role") => {
                let role_name = if ctx.role.is_primary() {
                    "primary"
                } else {
                    "follower"
                };
                let epoch = {
                    let g = engine
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    g.epoch()
                };
                return Handled {
                    response: format!("{{\"ok\":true,\"role\":\"{role_name}\",\"epoch\":{epoch}}}"),
                    shutdown: false,
                };
            }
            Some("arrive" | "depart" | "tick" | "export" | "import") if !ctx.role.is_primary() => {
                return Handled {
                    response: err_response(&ReqError {
                        kind: "not-primary",
                        id: None,
                        msg: "this node is a follower; promote it or address the primary"
                            .to_string(),
                    }),
                    shutdown: false,
                };
            }
            Some("stats" | "log") if !ctx.role.is_primary() => {
                // Follower read-serving: answer from the mirror state and
                // stamp how stale the answer may be (milliseconds since
                // the replica loop last heard from the primary), so a
                // router hedging reads to this standby can bound the lag.
                let mut guard = engine
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let mut handled = handle_line_opts(&mut guard, line, scratch, fast);
                drop(guard);
                if let Some(stripped) = handled.response.strip_suffix('}') {
                    handled.response =
                        format!("{stripped},\"stale_by\":{}}}", ctx.role.stale_by_ms());
                }
                return handled;
            }
            _ => {}
        }
    }
    let mut guard = engine
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    handle_line_opts(&mut guard, line, scratch, fast)
}

/// How a serving session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client closed the stream.
    Eof,
    /// The client requested shutdown.
    Shutdown,
    /// The server was draining and the session stopped at a batch
    /// boundary.
    Drained,
    /// The connection idled past its read timeout (slow-loris reaping).
    TimedOut,
}

/// Per-session serving knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Socket read timeout applied to TCP connections by [`serve_tcp`]
    /// (`None` = block forever, the right choice for stdin).
    pub read_timeout: Option<Duration>,
    /// Degrade to the myopic fast path when more than this many requests
    /// are in flight across sessions (`None` disables backpressure).
    pub overload_threshold: Option<usize>,
}

/// Shared control/observability block for the serving loops: drain
/// signalling, the in-flight request gauge that drives backpressure, and
/// the idle-timeout counter.
#[derive(Debug, Default)]
pub struct ServerControl {
    drain: AtomicBool,
    pending: AtomicUsize,
    timeouts: AtomicU64,
}

impl ServerControl {
    /// Creates a control block (not draining, nothing in flight).
    #[must_use]
    pub fn new() -> Self {
        ServerControl::default()
    }

    /// Asks every serving loop to drain: the accept loop stops taking
    /// connections and each session ends at its next batch boundary.
    pub fn request_drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    /// Requests currently being handled across sessions.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Connections reaped by the read timeout so far.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }
}

/// Serves a newline-delimited session from `reader` to `writer` under the
/// given options and control block. Blank lines are ignored.
///
/// Both sides are buffered internally. Responses are flushed per request
/// *batch*, not per line: the writer drains whenever the read buffer is
/// empty — i.e. just before the next read could block — so pipelined
/// clients get one syscall per burst while interactive clients still see
/// every response before the server waits on them. (The engine's
/// write-ahead journal, when attached, is flushed per *event* inside
/// `apply` — a decision is journaled before its response is even
/// formatted, regardless of response batching.)
///
/// A drain request is honoured at batch boundaries: buffered requests are
/// finished first, then the session ends with [`SessionEnd::Drained`]. A
/// read that fails with `WouldBlock`/`TimedOut` (the socket read timeout)
/// ends the session with [`SessionEnd::TimedOut`].
///
/// # Errors
///
/// Propagates I/O errors on the transport (protocol errors are reported
/// in-band).
pub fn serve_session<R: Read, W: Write>(
    engine: &Mutex<AdmissionEngine>,
    reader: R,
    writer: W,
    opts: &ServeOptions,
    ctl: &ServerControl,
) -> std::io::Result<SessionEnd> {
    serve_session_role(engine, reader, writer, opts, ctl, None)
}

/// [`serve_session`] with a failover [`RoleContext`]: control ops and
/// follower write-gating are dispatched through [`handle_line_role`].
///
/// # Errors
///
/// Propagates I/O errors on the transport (protocol errors are reported
/// in-band).
pub fn serve_session_role<R: Read, W: Write>(
    engine: &Mutex<AdmissionEngine>,
    reader: R,
    writer: W,
    opts: &ServeOptions,
    ctl: &ServerControl,
    role: Option<&RoleContext>,
) -> std::io::Result<SessionEnd> {
    let mut reader = BufReader::new(reader);
    let mut writer = BufWriter::new(writer);
    let mut line = String::new();
    let mut scratch = json::Scratch::default();
    loop {
        if reader.buffer().is_empty() {
            writer.flush()?;
            if ctl.draining() {
                return Ok(SessionEnd::Drained);
            }
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                writer.flush()?;
                return Ok(SessionEnd::Eof);
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                ctl.timeouts.fetch_add(1, Ordering::Relaxed);
                writer.flush()?;
                return Ok(SessionEnd::TimedOut);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        ctl.pending.fetch_add(1, Ordering::SeqCst);
        let fast = opts
            .overload_threshold
            .is_some_and(|th| ctl.pending.load(Ordering::SeqCst) > th);
        let handled = handle_line_role(engine, request, &mut scratch, fast, role);
        ctl.pending.fetch_sub(1, Ordering::SeqCst);
        writer.write_all(handled.response.as_bytes())?;
        writer.write_all(b"\n")?;
        if handled.shutdown {
            writer.flush()?;
            return Ok(SessionEnd::Shutdown);
        }
    }
}

/// [`serve_session`] with default options and a throwaway control block,
/// returning `true` if the session ended with a `shutdown` request
/// (rather than EOF). The stdin/stdout serving path.
///
/// # Errors
///
/// Propagates I/O errors on the transport.
pub fn serve_lines<R: Read, W: Write>(
    engine: &Mutex<AdmissionEngine>,
    reader: R,
    writer: W,
) -> std::io::Result<bool> {
    let end = serve_session(
        engine,
        reader,
        writer,
        &ServeOptions::default(),
        &ServerControl::new(),
    )?;
    Ok(end == SessionEnd::Shutdown)
}

/// Accept loop: serves every connection on `listener` (one thread per
/// connection) over the shared engine until a session requests shutdown
/// or a drain is signalled.
///
/// `drain_signal`, when given, is polled every accept iteration and
/// promoted into [`ServerControl::request_drain`] — the bridge from a
/// `SIGTERM` handler's static flag to the serving loops. On shutdown or
/// drain the loop stops accepting, asks every live session to drain, and
/// joins the workers (sessions end at their next batch boundary or read
/// timeout).
///
/// # Errors
///
/// Propagates listener errors (per-connection I/O errors only end that
/// connection).
pub fn serve_tcp(
    listener: &TcpListener,
    engine: &Arc<Mutex<AdmissionEngine>>,
    opts: ServeOptions,
    ctl: &Arc<ServerControl>,
    drain_signal: Option<&AtomicBool>,
) -> std::io::Result<()> {
    serve_tcp_role(listener, engine, opts, ctl, drain_signal, None)
}

/// [`serve_tcp`] with a failover [`RoleContext`] shared by every session
/// (so any connection may promote, and follower write-gating is uniform).
///
/// # Errors
///
/// Propagates listener errors (per-connection I/O errors only end that
/// connection).
pub fn serve_tcp_role(
    listener: &TcpListener,
    engine: &Arc<Mutex<AdmissionEngine>>,
    opts: ServeOptions,
    ctl: &Arc<ServerControl>,
    drain_signal: Option<&AtomicBool>,
    role: Option<&Arc<RoleContext>>,
) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    listener.set_nonblocking(true)?;
    let mut workers = Vec::new();
    loop {
        if let Some(flag) = drain_signal {
            if flag.load(Ordering::SeqCst) {
                ctl.request_drain();
            }
        }
        if stop.load(Ordering::SeqCst) || ctl.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = Arc::clone(engine);
                let stop = Arc::clone(&stop);
                let ctl = Arc::clone(ctl);
                let role = role.map(Arc::clone);
                workers.push(std::thread::spawn(move || {
                    stream.set_nonblocking(false).expect("stream mode");
                    // Responses are small and latency-sensitive; batching is
                    // handled by serve_session's BufWriter, so Nagle only
                    // adds delay on the final partial segment of each flush.
                    let _ = stream.set_nodelay(true);
                    if let Some(t) = opts.read_timeout {
                        let _ = stream.set_read_timeout(Some(t));
                    }
                    let reader = stream.try_clone().expect("clone stream");
                    if let Ok(SessionEnd::Shutdown) =
                        serve_session_role(&engine, reader, stream, &opts, &ctl, role.as_deref())
                    {
                        stop.store(true, Ordering::SeqCst);
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    // Ask the remaining sessions to finish their buffered work and exit.
    ctl.request_drain();
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::json::parse_object;
    use dvs_power::presets::cubic_ideal;
    use reject_sched::online::OnlineGreedy;

    fn engine() -> AdmissionEngine {
        AdmissionEngine::new(
            vec![cubic_ideal()],
            Box::new(OnlineGreedy),
            EngineConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn arrive_depart_tick_round_trip() {
        let mut e = engine();
        let r = handle_line(
            &mut e,
            r#"{"op":"arrive","at":0,"id":1,"cycles":30.0,"period":1000,"penalty":2.5}"#,
        );
        assert!(!r.shutdown);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            json::get(&kv, "decision").unwrap().as_str(),
            Some("accepted")
        );
        let r = handle_line(&mut e, r#"{"op":"tick","at":10}"#);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "shed"), Some(&JsonValue::Arr(vec![])));
        let r = handle_line(&mut e, r#"{"op":"depart","at":20,"id":1}"#);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "ok"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn malformed_lines_do_not_kill_the_session() {
        let mut e = engine();
        for bad in [
            "not json",
            "{}",
            r#"{"op":"arrive","at":0}"#,
            r#"{"op":"warp","at":0}"#,
            r#"{"op":"depart","at":0,"id":99}"#,
        ] {
            let r = handle_line(&mut e, bad);
            assert!(!r.shutdown);
            let kv = parse_object(&r.response).unwrap();
            assert_eq!(json::get(&kv, "ok"), Some(&JsonValue::Bool(false)), "{bad}");
        }
        // The session still works afterwards.
        let r = handle_line(&mut e, r#"{"op":"stats"}"#);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "ok"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn errors_are_structured_with_kind_and_id() {
        let mut e = engine();
        // Unknown departure names the task and the kind.
        let r = handle_line(&mut e, r#"{"op":"depart","at":0,"id":99}"#);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(
            json::get(&kv, "kind").unwrap().as_str(),
            Some("unknown-task")
        );
        assert_eq!(json::get(&kv, "id").unwrap().as_f64(), Some(99.0));
        // Protocol errors use the bad-request kind, without an id.
        let r = handle_line(&mut e, "not json");
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(
            json::get(&kv, "kind").unwrap().as_str(),
            Some("bad-request")
        );
        assert!(json::get(&kv, "id").is_none());
    }

    #[test]
    fn duplicate_and_stale_ids_yield_typed_errors_not_hangs() {
        let mut e = engine();
        let arrive = r#"{"op":"arrive","at":0,"id":1,"cycles":30.0,"period":1000,"penalty":2.5}"#;
        assert!(handle_line(&mut e, arrive).response.contains("\"ok\":true"));
        // Duplicate while present.
        let r = handle_line(&mut e, arrive);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(
            json::get(&kv, "kind").unwrap().as_str(),
            Some("duplicate-task")
        );
        // Departed: both re-arrival and re-departure are stale.
        handle_line(&mut e, r#"{"op":"depart","at":1,"id":1}"#);
        let r = handle_line(
            &mut e,
            r#"{"op":"arrive","at":2,"id":1,"cycles":30.0,"period":1000,"penalty":2.5}"#,
        );
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(
            json::get(&kv, "kind").unwrap().as_str(),
            Some("already-departed")
        );
        let r = handle_line(&mut e, r#"{"op":"depart","at":3,"id":1}"#);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(
            json::get(&kv, "kind").unwrap().as_str(),
            Some("already-departed")
        );
        // None of the errors perturbed the engine: balance still holds.
        let m = e.metrics();
        assert_eq!(m.arrivals, 1);
        assert_eq!(m.accepted() + m.rejected + m.standing_shed(), m.arrivals);
    }

    #[test]
    fn stats_and_shutdown_dump_the_registry() {
        let mut e = engine();
        handle_line(
            &mut e,
            r#"{"op":"arrive","at":0,"id":1,"cycles":900.0,"period":1000,"penalty":0.001}"#,
        );
        let r = handle_line(&mut e, r#"{"op":"stats"}"#);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "arrivals").unwrap().as_f64(), Some(1.0));
        let r = handle_line(&mut e, r#"{"op":"shutdown"}"#);
        assert!(r.shutdown);
        let kv = parse_object(&r.response).unwrap();
        let arrivals = json::get(&kv, "arrivals").unwrap().as_f64().unwrap();
        let accepted = json::get(&kv, "accepted").unwrap().as_f64().unwrap();
        let rejected = json::get(&kv, "rejected").unwrap().as_f64().unwrap();
        let shed = json::get(&kv, "shed").unwrap().as_f64().unwrap();
        assert_eq!(accepted + rejected + shed, arrivals);
    }

    #[test]
    fn log_op_dumps_the_decision_log() {
        let mut e = engine();
        handle_line(
            &mut e,
            r#"{"op":"arrive","at":0,"id":1,"cycles":30.0,"period":1000,"penalty":2.5}"#,
        );
        let r = handle_line(&mut e, r#"{"op":"log"}"#);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "decisions").unwrap().as_f64(), Some(1.0));
        let log = json::get(&kv, "log").unwrap().as_str().unwrap().to_string();
        assert_eq!(log, e.format_decision_log());
        assert!(log.contains("accepted@0"));
    }

    #[test]
    fn serve_lines_over_buffers() {
        let e = Mutex::new(engine());
        let input = b"{\"op\":\"arrive\",\"at\":0,\"id\":7,\"cycles\":10.0,\"period\":100,\"penalty\":9.0}\n\n{\"op\":\"shutdown\"}\n".to_vec();
        let mut out = Vec::new();
        let ended = serve_lines(&e, &input[..], &mut out).unwrap();
        assert!(ended);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"decision\""));
        assert!(lines[1].contains("\"op\":\"stats\""));
    }

    #[test]
    fn drain_request_stops_the_session_at_a_batch_boundary() {
        let e = Mutex::new(engine());
        let ctl = ServerControl::new();
        ctl.request_drain();
        let input =
            b"{\"op\":\"arrive\",\"at\":0,\"id\":7,\"cycles\":10.0,\"period\":100,\"penalty\":9.0}\n"
                .to_vec();
        let mut out = Vec::new();
        let end = serve_session(&e, &input[..], &mut out, &ServeOptions::default(), &ctl).unwrap();
        // Drain honoured before any read: nothing was handled.
        assert_eq!(end, SessionEnd::Drained);
        assert!(out.is_empty());
    }

    #[test]
    fn overload_threshold_degrades_ticks_to_the_fast_path() {
        let e = Mutex::new(engine());
        let ctl = ServerControl::new();
        let opts = ServeOptions {
            read_timeout: None,
            // pending is 1 while each request is handled, so every event
            // exceeds the threshold: permanent overload.
            overload_threshold: Some(0),
        };
        let input = b"{\"op\":\"arrive\",\"at\":0,\"id\":1,\"cycles\":30.0,\"period\":1000,\"penalty\":2.5}\n{\"op\":\"tick\",\"at\":10}\n{\"op\":\"tick\",\"at\":20}\n".to_vec();
        let mut out = Vec::new();
        let end = serve_session(&e, &input[..], &mut out, &opts, &ctl).unwrap();
        assert_eq!(end, SessionEnd::Eof);
        let g = e.lock().unwrap();
        let m = g.metrics();
        assert_eq!(m.backpressure_sheds, 3, "every event took the fast path");
        assert_eq!(m.resolves, 0, "fast-path ticks skip re-solve passes");
        assert_eq!(m.ticks, 2);
        assert_eq!(m.admitted, 1, "admission verdicts are not degraded");
    }
}
