//! Newline-delimited JSON protocol and the serving loops behind
//! `dvs_admitd`.
//!
//! One request per line, one response per line. Requests are flat JSON
//! objects with an `"op"` field:
//!
//! ```text
//! {"op":"arrive","at":0.0,"id":1,"cycles":30.0,"period":100,"penalty":2.5}
//! {"op":"arrive","at":1.0,"id":2,"cycles":45.0,"period":100,"deadline":60,"penalty":5.0}
//! {"op":"depart","at":5.0,"id":1}
//! {"op":"tick","at":10.0}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`; decisions carry `"decision"`
//! (`"accepted"` with its `"domain"`, or `"rejected"`), ticks report the
//! `"shed"` id list, and `stats`/`shutdown` return the full metrics
//! registry (see [`AdmissionEngine::stats_json`]). Malformed lines yield
//! `{"ok":false,"error":"…"}` and do not terminate the session.
//!
//! The same handler serves stdin/stdout ([`serve_lines`]) and TCP
//! connections ([`serve_tcp`], one thread per connection over a shared
//! engine). The engine core itself stays `DVS_THREADS`-deterministic —
//! concurrency only affects the interleaving of *independent sessions'*
//! requests, never the outcome of a given event sequence.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rt_model::io::{EventKind, EventRecord};
use rt_model::{Task, TaskId};

use crate::engine::{AdmissionEngine, Decision, Verdict};
use crate::json::{self, JsonValue};

/// Outcome of handling one request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Handled {
    /// The response line (no trailing newline).
    pub response: String,
    /// Whether the request asked the server to shut down.
    pub shutdown: bool,
}

fn err_response(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json::escape(msg))
}

fn num_field(pairs: &[(String, JsonValue)], key: &'static str) -> Result<f64, String> {
    json::get(pairs, key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn shed_ids(decisions: &[Decision]) -> Vec<usize> {
    decisions
        .iter()
        .filter(|d| matches!(d.verdict, Verdict::Shed { .. }))
        .map(|d| d.task.index())
        .collect()
}

fn ids_json(ids: &[usize]) -> String {
    let items: Vec<String> = ids.iter().map(usize::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Parses and executes one request line against the engine.
///
/// Never panics and never returns `Err`: protocol and engine errors are
/// encoded in the response so a misbehaving client cannot take the server
/// down.
pub fn handle_line(engine: &mut AdmissionEngine, line: &str) -> Handled {
    handle_line_with(engine, line, &mut json::Scratch::default())
}

/// [`handle_line`], but parsing into a caller-provided [`json::Scratch`]
/// so a long-lived session reuses its request buffers instead of
/// allocating per line. The serving loops keep one scratch per session.
pub fn handle_line_with(
    engine: &mut AdmissionEngine,
    line: &str,
    scratch: &mut json::Scratch,
) -> Handled {
    let mut shutdown = false;
    let response = match handle_inner(engine, line, scratch, &mut shutdown) {
        Ok(r) => r,
        Err(msg) => err_response(&msg),
    };
    Handled { response, shutdown }
}

fn handle_inner(
    engine: &mut AdmissionEngine,
    line: &str,
    scratch: &mut json::Scratch,
    shutdown: &mut bool,
) -> Result<String, String> {
    let pairs = json::parse_object_into(line, scratch).map_err(|e| format!("bad request: {e}"))?;
    let op = json::get(pairs, "op")
        .and_then(JsonValue::as_str)
        .ok_or("missing field \"op\"")?;
    match op {
        "arrive" => {
            let at = num_field(pairs, "at")?;
            let id = num_field(pairs, "id")? as usize;
            let cycles = num_field(pairs, "cycles")?;
            let period = num_field(pairs, "period")? as u64;
            let penalty = num_field(pairs, "penalty")?;
            if !penalty.is_finite() || penalty < 0.0 {
                return Err(format!("invalid penalty {penalty}"));
            }
            let mut task = Task::new(id, cycles, period)
                .map_err(|e| e.to_string())?
                .with_penalty(penalty);
            if let Some(d) = json::get(pairs, "deadline").and_then(JsonValue::as_f64) {
                task = task.with_deadline(d as u64).map_err(|e| e.to_string())?;
            }
            let decisions = engine
                .apply(&EventRecord::new(at, EventKind::Arrive(task)))
                .map_err(|e| e.to_string())?;
            let verdict = decisions
                .iter()
                .find(|d| d.task == task.id())
                .map(|d| d.verdict)
                .ok_or("engine returned no verdict")?;
            Ok(match verdict {
                Verdict::Accepted { domain } => format!(
                    "{{\"ok\":true,\"decision\":\"accepted\",\"id\":{id},\"domain\":{domain}}}"
                ),
                _ => format!("{{\"ok\":true,\"decision\":\"rejected\",\"id\":{id}}}"),
            })
        }
        "depart" => {
            let at = num_field(pairs, "at")?;
            let id = num_field(pairs, "id")? as usize;
            let decisions = engine
                .apply(&EventRecord::new(at, EventKind::Depart(TaskId::new(id))))
                .map_err(|e| e.to_string())?;
            Ok(format!(
                "{{\"ok\":true,\"id\":{id},\"shed\":{}}}",
                ids_json(&shed_ids(&decisions))
            ))
        }
        "tick" => {
            let at = num_field(pairs, "at")?;
            let decisions = engine
                .apply(&EventRecord::new(at, EventKind::Tick))
                .map_err(|e| e.to_string())?;
            Ok(format!(
                "{{\"ok\":true,\"shed\":{},\"resolves\":{}}}",
                ids_json(&shed_ids(&decisions)),
                engine.metrics().resolves
            ))
        }
        "stats" => Ok(format!("{{\"ok\":true,{}", &engine.stats_json()[1..])),
        "shutdown" => {
            *shutdown = true;
            Ok(format!("{{\"ok\":true,{}", &engine.stats_json()[1..]))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Serves a newline-delimited session from `reader` to `writer`,
/// returning `true` if the session ended with a `shutdown` request
/// (rather than EOF). Blank lines are ignored.
///
/// Both sides are buffered internally. Responses are flushed per request
/// *batch*, not per line: the writer drains whenever the read buffer is
/// empty — i.e. just before the next read could block — so pipelined
/// clients get one syscall per burst while interactive clients still see
/// every response before the server waits on them.
///
/// # Errors
///
/// Propagates I/O errors on the transport (protocol errors are reported
/// in-band).
pub fn serve_lines<R: Read, W: Write>(
    engine: &Mutex<AdmissionEngine>,
    reader: R,
    writer: W,
) -> std::io::Result<bool> {
    let mut reader = BufReader::new(reader);
    let mut writer = BufWriter::new(writer);
    let mut line = String::new();
    let mut scratch = json::Scratch::default();
    loop {
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            writer.flush()?;
            return Ok(false);
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let handled = {
            let mut guard = engine
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            handle_line_with(&mut guard, request, &mut scratch)
        };
        writer.write_all(handled.response.as_bytes())?;
        writer.write_all(b"\n")?;
        if handled.shutdown {
            writer.flush()?;
            return Ok(true);
        }
    }
}

/// Accept loop: serves every connection on `listener` (one thread per
/// connection) over the shared engine until a session requests shutdown.
///
/// # Errors
///
/// Propagates listener errors (per-connection I/O errors only end that
/// connection).
pub fn serve_tcp(
    listener: &TcpListener,
    engine: &Arc<Mutex<AdmissionEngine>>,
) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    listener.set_nonblocking(true)?;
    let mut workers = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = Arc::clone(engine);
                let stop = Arc::clone(&stop);
                workers.push(std::thread::spawn(move || {
                    stream.set_nonblocking(false).expect("stream mode");
                    // Responses are small and latency-sensitive; batching is
                    // handled by serve_lines' BufWriter, so Nagle only adds
                    // delay on the final partial segment of each flush.
                    let _ = stream.set_nodelay(true);
                    let reader = stream.try_clone().expect("clone stream");
                    if let Ok(true) = serve_lines(&engine, reader, stream) {
                        stop.store(true, Ordering::SeqCst);
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::json::parse_object;
    use dvs_power::presets::cubic_ideal;
    use reject_sched::online::OnlineGreedy;

    fn engine() -> AdmissionEngine {
        AdmissionEngine::new(
            vec![cubic_ideal()],
            Box::new(OnlineGreedy),
            EngineConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn arrive_depart_tick_round_trip() {
        let mut e = engine();
        let r = handle_line(
            &mut e,
            r#"{"op":"arrive","at":0,"id":1,"cycles":30.0,"period":1000,"penalty":2.5}"#,
        );
        assert!(!r.shutdown);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            json::get(&kv, "decision").unwrap().as_str(),
            Some("accepted")
        );
        let r = handle_line(&mut e, r#"{"op":"tick","at":10}"#);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "shed"), Some(&JsonValue::Arr(vec![])));
        let r = handle_line(&mut e, r#"{"op":"depart","at":20,"id":1}"#);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "ok"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn malformed_lines_do_not_kill_the_session() {
        let mut e = engine();
        for bad in [
            "not json",
            "{}",
            r#"{"op":"arrive","at":0}"#,
            r#"{"op":"warp","at":0}"#,
            r#"{"op":"depart","at":0,"id":99}"#,
        ] {
            let r = handle_line(&mut e, bad);
            assert!(!r.shutdown);
            let kv = parse_object(&r.response).unwrap();
            assert_eq!(json::get(&kv, "ok"), Some(&JsonValue::Bool(false)), "{bad}");
        }
        // The session still works afterwards.
        let r = handle_line(&mut e, r#"{"op":"stats"}"#);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "ok"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn stats_and_shutdown_dump_the_registry() {
        let mut e = engine();
        handle_line(
            &mut e,
            r#"{"op":"arrive","at":0,"id":1,"cycles":900.0,"period":1000,"penalty":0.001}"#,
        );
        let r = handle_line(&mut e, r#"{"op":"stats"}"#);
        let kv = parse_object(&r.response).unwrap();
        assert_eq!(json::get(&kv, "arrivals").unwrap().as_f64(), Some(1.0));
        let r = handle_line(&mut e, r#"{"op":"shutdown"}"#);
        assert!(r.shutdown);
        let kv = parse_object(&r.response).unwrap();
        let arrivals = json::get(&kv, "arrivals").unwrap().as_f64().unwrap();
        let accepted = json::get(&kv, "accepted").unwrap().as_f64().unwrap();
        let rejected = json::get(&kv, "rejected").unwrap().as_f64().unwrap();
        let shed = json::get(&kv, "shed").unwrap().as_f64().unwrap();
        assert_eq!(accepted + rejected + shed, arrivals);
    }

    #[test]
    fn serve_lines_over_buffers() {
        let e = Mutex::new(engine());
        let input = b"{\"op\":\"arrive\",\"at\":0,\"id\":7,\"cycles\":10.0,\"period\":100,\"penalty\":9.0}\n\n{\"op\":\"shutdown\"}\n".to_vec();
        let mut out = Vec::new();
        let ended = serve_lines(&e, &input[..], &mut out).unwrap();
        assert!(ended);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"decision\""));
        assert!(lines[1].contains("\"op\":\"stats\""));
    }
}
