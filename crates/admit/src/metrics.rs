//! Built-in metrics registry for the admission engine.
//!
//! Counters are **monotonic** (they only ever increase) and gauges are
//! derived from engine state at dump time, Prometheus-style. The registry
//! separates the deterministic part — decision counters, integrated
//! energy/penalty — from the wall-clock part (the decision-latency
//! histogram), so the determinism suite can pin the former while the
//! latter remains free to vary run-to-run.

use std::time::Duration;

/// Number of latency buckets: powers of two of microseconds,
/// `< 1 µs, < 2 µs, …, < 2¹⁴ µs`, plus a final overflow bucket.
pub const LATENCY_BUCKETS: usize = 16;

/// A fixed log₂-scale histogram of decision latencies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        // Bucket k holds latencies in [2^(k-1), 2^k) µs; bucket 0 is < 1 µs.
        let idx = (64 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.counts[idx] += 1;
    }

    /// Per-bucket observation counts.
    #[must_use]
    pub fn counts(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.counts
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Renders the counts as a JSON array.
    #[must_use]
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        format!("[{}]", items.join(","))
    }
}

/// The engine's monotonic counters and cumulative cost accounting.
///
/// `admitted` counts admission decisions; `shed` counts re-optimization
/// evictions of admitted tasks and `readmitted` counts their returns to
/// service (each readmission pairs with an earlier shed, so
/// `shed − readmitted ≥ 0` is the number of *currently* shed tasks —
/// [`Metrics::standing_shed`]). The net acceptance figure the `stats`
/// dump exposes is `accepted = admitted − standing_shed`, which balances
/// against arrivals: `accepted + rejected + standing_shed == arrivals`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Arrive events observed.
    pub arrivals: u64,
    /// Arrivals admitted at decision time.
    pub admitted: u64,
    /// Arrivals rejected at decision time.
    pub rejected: u64,
    /// Shed events: admitted tasks evicted by a re-solve.
    pub shed: u64,
    /// Readmission events: shed tasks returned to service.
    pub readmitted: u64,
    /// Depart events observed.
    pub departures: u64,
    /// Tick events observed.
    pub ticks: u64,
    /// Re-solve passes executed.
    pub resolves: u64,
    /// Re-solve passes whose budget expired mid-search.
    pub resolves_degraded: u64,
    /// Re-solve passes skipped because no arrive/depart/shed/readmit
    /// occurred on the domain since its last re-solve concluded (the
    /// repeat solve is guaranteed to reach the same conclusion).
    pub resolves_skipped: u64,
    /// Work units (search nodes) spent across all re-solves.
    pub resolve_nodes: u64,
    /// Wall-clock time spent handling events (nondeterministic; drives
    /// the events/sec figure in the stats dump).
    pub handling: Duration,
    /// Events handled (arrive + depart + tick), the numerator of
    /// events/sec.
    pub events: u64,
    /// Energy integrated over time across all domains.
    pub energy: f64,
    /// Penalty accrued at rate `vᵢ/H` while unserved tasks are present
    /// (the continuous mirror of the paper's per-hyper-period objective).
    pub penalty_accrued: f64,
    /// Lump-sum penalties charged on reject/shed decisions — exactly the
    /// accounting of the simulator's late-rejection recovery path.
    pub penalty_charged: f64,
    /// Wall-clock admission-decision latencies (nondeterministic).
    pub latency: LatencyHistogram,
    /// Valid records in the write-ahead journal (events, outcomes, and
    /// snapshots), including those inherited across recoveries.
    pub journal_records: u64,
    /// Engine snapshots written into the journal.
    pub snapshots_taken: u64,
    /// Times this engine state was reconstructed from a journal
    /// (`snapshot + replay of the event tail`).
    pub recoveries: u64,
    /// Journal records dropped during recovery because the file's tail was
    /// torn or failed its CRC (recovery keeps the last valid prefix).
    pub records_lost: u64,
    /// Events applied on the degraded myopic fast path because the server
    /// was shedding load (re-solve passes skipped under backpressure).
    pub backpressure_sheds: u64,
    /// Journal frames applied from a replication stream (follower side:
    /// events, outcomes, snapshots, and epoch markers mirrored so far).
    /// The primary's `journal_records` minus this is the replication lag
    /// in records.
    pub repl_records: u64,
    /// Bytes mirrored from a replication stream (follower side). The
    /// primary's journal length minus this is the lag in bytes.
    pub repl_bytes: u64,
    /// Torn replication-stream tails resynchronised: partial frames left
    /// by a mid-frame disconnect, dropped by the mirror's torn-tail scan
    /// and re-fetched from the primary on reconnect.
    pub repl_torn_tails: u64,
    /// Replication-stream reconnect attempts after a lost primary
    /// connection (follower side).
    pub repl_reconnects: u64,
    /// Heartbeat deadlines missed while following a primary (lease-expiry
    /// signal for auto-promotion).
    pub heartbeat_misses: u64,
    /// Fencing-epoch advances observed (promotions on the primary,
    /// mirrored epoch-begin records on a follower).
    pub epoch_bumps: u64,
    /// Replication writes rejected because they carried a stale epoch — a
    /// deposed primary's late frames fenced off after a failover.
    pub epoch_rejects: u64,
}

impl Metrics {
    /// Tasks currently shed (shed events minus readmission events).
    #[must_use]
    pub fn standing_shed(&self) -> u64 {
        self.shed - self.readmitted
    }

    /// Net admissions surviving re-optimization.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.admitted - self.standing_shed()
    }

    /// Total replay cost: integrated energy plus integrated penalty.
    #[must_use]
    pub fn total_cost(&self) -> f64 {
        self.energy + self.penalty_accrued
    }

    /// Events handled per wall-clock second of handling time
    /// (nondeterministic). Zero before any event has been timed.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.handling.as_secs_f64();
        if secs <= 0.0 || self.events == 0 {
            return 0.0;
        }
        self.events as f64 / secs
    }

    /// The deterministic slice of the registry as one comparable string:
    /// every *decision* counter and cost, excluding the latency histogram,
    /// the durability counters (`journal_records`, `snapshots_taken`,
    /// `recoveries`, `records_lost`, `backpressure_sheds`), and the
    /// replication counters (`repl_*`, `heartbeat_misses`, `epoch_*`) —
    /// those depend on whether a journal/replica is attached and where a
    /// crash or disconnect fell, which the recovery and failover
    /// invariants deliberately quantify over.
    #[must_use]
    pub fn deterministic_summary(&self) -> String {
        format!(
            "arrivals={} admitted={} rejected={} shed={} readmitted={} departures={} ticks={} \
             resolves={} degraded={} skipped={} nodes={} energy={:x} accrued={:x} charged={:x}",
            self.arrivals,
            self.admitted,
            self.rejected,
            self.shed,
            self.readmitted,
            self.departures,
            self.ticks,
            self.resolves,
            self.resolves_degraded,
            self.resolves_skipped,
            self.resolve_nodes,
            self.energy.to_bits(),
            self.penalty_accrued.to_bits(),
            self.penalty_charged.to_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_nanos(300)); // < 1 µs → bucket 0
        h.record(Duration::from_micros(1)); // [1, 2) → bucket 1
        h.record(Duration::from_micros(3)); // [2, 4) → bucket 2
        h.record(Duration::from_secs(3600)); // overflow bucket
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[2], 1);
        assert_eq!(h.counts()[LATENCY_BUCKETS - 1], 1);
        assert_eq!(h.total(), 4);
        assert!(h.to_json().starts_with("[1,1,1,0"));
    }

    #[test]
    fn accepted_balances_against_arrivals() {
        let m = Metrics {
            arrivals: 10,
            admitted: 7,
            rejected: 3,
            shed: 3,
            readmitted: 1,
            ..Metrics::default()
        };
        assert_eq!(m.standing_shed(), 2);
        assert_eq!(m.accepted(), 5);
        assert_eq!(m.accepted() + m.rejected + m.standing_shed(), m.arrivals);
    }

    #[test]
    fn deterministic_summary_excludes_latency() {
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        a.latency.record(Duration::from_micros(5));
        b.latency.record(Duration::from_secs(1));
        a.handling = Duration::from_micros(5);
        b.handling = Duration::from_secs(1);
        assert_eq!(a.deterministic_summary(), b.deterministic_summary());
    }

    #[test]
    fn deterministic_summary_excludes_durability_counters() {
        // A journaled run and a bare run of the same trace must compare
        // equal on the deterministic slice even though only one of them
        // wrote records, took snapshots, or recovered.
        let mut a = Metrics::default();
        let b = Metrics::default();
        a.journal_records = 100;
        a.snapshots_taken = 3;
        a.recoveries = 1;
        a.records_lost = 2;
        a.backpressure_sheds = 40;
        assert_eq!(a.deterministic_summary(), b.deterministic_summary());
    }

    #[test]
    fn events_per_sec_derives_from_handling_time() {
        let mut m = Metrics::default();
        assert_eq!(m.events_per_sec(), 0.0);
        m.events = 500;
        assert_eq!(m.events_per_sec(), 0.0, "no handling time yet");
        m.handling = Duration::from_millis(250);
        assert!((m.events_per_sec() - 2000.0).abs() < 1e-9);
    }
}
