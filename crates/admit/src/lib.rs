//! # dvs-admit — stateful online admission control with re-optimization
//!
//! The serving layer of the workspace: where `reject-sched`'s online
//! module decides a *fixed, ordered* arrival list once, this crate runs an
//! **event-driven admission server**. An [`AdmissionEngine`] consumes a
//! timestamped stream of `Arrive` / `Depart` / `Tick` events, keeps a
//! per-power-domain ledger of committed utilization, admits or rejects
//! through a pluggable policy ([`EnginePolicy`] — every offline
//! `AdmissionPolicy` plugs in unchanged, plus the hysteresis
//! [`WatermarkPolicy`]), and **revisits its commitments**: on ticks, or
//! when the estimated shedding profit (regret) crosses a threshold, it
//! runs a node-budgeted offline re-solve over the active set and sheds
//! tasks that are no longer worth their energy, charging their penalties
//! exactly as the simulator's late-rejection recovery path does.
//!
//! The front-end is the `dvs_admitd` binary: newline-delimited JSON over
//! stdin/stdout or TCP (one thread per connection, zero dependencies),
//! with a built-in metrics registry dumped by the `stats` request and on
//! shutdown. The engine core is deterministic under `DVS_THREADS` — see
//! the [`engine`] module docs for the contract.
//!
//! ```
//! use dvs_admit::{AdmissionEngine, EngineConfig};
//! use dvs_power::presets::cubic_ideal;
//! use reject_sched::online::OnlineGreedy;
//! use rt_model::io::{EventKind, EventRecord};
//! use rt_model::Task;
//!
//! let mut engine = AdmissionEngine::new(
//!     vec![cubic_ideal()],
//!     Box::new(OnlineGreedy),
//!     EngineConfig::default(),
//! )
//! .unwrap();
//! let task = Task::new(1, 300.0, 1000).unwrap().with_penalty(5.0);
//! let decisions = engine
//!     .apply(&EventRecord::new(0.0, EventKind::Arrive(task)))
//!     .unwrap();
//! assert_eq!(decisions.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
mod error;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod replication;
pub mod server;
pub mod trace;

pub use client::{AdmitClient, ClientConfig, ClientError, ClientMetrics, LocalMyopic};
pub use engine::{
    AdmissionEngine, Decision, EngineConfig, EnginePolicy, Recovered, Verdict, WatermarkPolicy,
    RESERVED_ANCHOR_ID,
};
pub use error::AdmitError;
pub use journal::{FsyncPolicy, Journal, JournalConfig, JournalError};
pub use metrics::Metrics;
pub use replication::{
    FollowEnd, FollowerOptions, ReplicationHub, Role, RoleContext, HEARTBEAT_BYTE,
};
pub use trace::TraceSpec;
