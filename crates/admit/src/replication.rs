//! Hot-standby replication and epoch-fenced failover for the admission
//! server.
//!
//! ## Topology and protocol
//!
//! The **primary** is an ordinary journaled [`AdmissionEngine`]: every
//! applied event is CRC-framed into its write-ahead journal before the
//! decision is acknowledged. Replication simply ships that same byte
//! stream: a follower connects to the primary's replication listener,
//! sends a one-line handshake, and receives the journal's frames from its
//! resume cursor onward —
//!
//! ```text
//! follower → primary   DVS-REPL v1 <cursor-bytes> <fence-epoch>\n
//! primary → follower   OK <primary-epoch>\n            (then raw frames)
//! primary → follower   ERR <kind> <detail>\n           (then close)
//! ```
//!
//! The follower appends every received byte to a local **mirror** file —
//! byte-identical to the primary's journal prefix — and applies each
//! complete `E` frame to its own engine. Because the engine is
//! deterministic (the `DVS_THREADS` contract), replaying the same event
//! bytes reproduces the primary's decision log bit-for-bit: the standby
//! *is* a recovery, streamed continuously instead of run after a crash.
//!
//! When the journal is idle the primary emits a single [`HEARTBEAT_BYTE`]
//! between frames so the follower can distinguish "quiet primary" from
//! "dead primary". Heartbeats are stripped before the mirror is written
//! (they are liveness signals, not journal content).
//!
//! ## Torn frames and resynchronisation
//!
//! A connection can die mid-frame; the follower's mirror then ends in a
//! partial frame. On every (re)connect the follower re-runs the journal's
//! torn-tail scan ([`journal::scan_bytes`]) over its mirror: the valid
//! prefix becomes the resume cursor, the torn tail is truncated and
//! counted ([`Metrics::repl_torn_tails`](crate::Metrics)), and the
//! handshake re-requests the stream from exactly that byte — nothing is
//! lost, because the primary still holds the full journal.
//!
//! ## Epoch fencing and the failover state machine
//!
//! Every journal carries **epoch-begin** (`B`) records; the handshake
//! carries each side's epoch too. The fence is monotone: a follower that
//! has observed epoch *n* refuses streams and records from any epoch
//! < *n* (`stale-epoch`), so a deposed primary that limps back cannot
//! overwrite a promoted follower's history.
//!
//! ```text
//!            stream / heartbeats             promote (epoch n+1)
//! FOLLOWER ────────────────────── FOLLOWER ───────────────────── PRIMARY
//!    │   lease expiry / explicit {"op":"promote"}: park the        │
//!    │   replica loop, drain the mirror tail into the engine,      │
//!    │   attach the mirror as the live journal, fsync a `B n+1`    │
//!    │   record, then accept writes.                               │
//!    └── old primary reconnecting with epoch ≤ n is fenced off ────┘
//! ```
//!
//! Promotion ([`promote`]) resumes serving from the replay cursor: the
//! `events` counter in `stats` tells clients how much of their stream
//! survived, and the engine's validate-before-mutate idempotency makes
//! at-least-once resend safe (see the `client` module).

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rt_model::io::parse_event_line;

use crate::engine::AdmissionEngine;
use crate::journal::{self, check_frame, FrameCheck, JournalConfig, JournalError, RecordKind};
use crate::{AdmitError, Journal};

/// Liveness byte the primary sends between frames when the journal is
/// idle. Distinct from the frame magic, and only ever emitted at a frame
/// boundary, so a follower can strip it unambiguously.
pub const HEARTBEAT_BYTE: u8 = 0xA9;

/// Handshake protocol tag.
const HELLO_PREFIX: &str = "DVS-REPL v1 ";

/// How long [`promote`] waits for the replica loop to park before giving
/// up (the loop checks its flags every socket-read timeout).
const PARK_TIMEOUT: Duration = Duration::from_secs(5);

fn io_err(e: std::io::Error) -> AdmitError {
    AdmitError::Journal(JournalError::Io(e))
}

// ---------------------------------------------------------------------------
// Primary side: the replication hub
// ---------------------------------------------------------------------------

/// Shared state of the primary's replication hub.
#[derive(Debug, Default)]
pub struct ReplicationHub {
    /// The primary's current epoch, read into every handshake reply.
    epoch: AtomicU64,
    /// Set to stop the hub's accept and streaming loops.
    shutdown: AtomicBool,
    /// Set when a follower with a *higher* epoch connected: this primary
    /// has been deposed and its late writes are being fenced off.
    deposed: AtomicBool,
    /// Frame bytes streamed to followers (all connections).
    bytes_sent: AtomicU64,
    /// Heartbeat bytes sent.
    heartbeats_sent: AtomicU64,
    /// Follower connections accepted.
    followers_seen: AtomicU64,
    /// Handshakes rejected for carrying a stale epoch.
    stale_rejects: AtomicU64,
}

impl ReplicationHub {
    /// Creates a hub serving the given epoch.
    #[must_use]
    pub fn new(epoch: u64) -> Self {
        let hub = ReplicationHub::default();
        hub.epoch.store(epoch, Ordering::SeqCst);
        hub
    }

    /// Updates the epoch advertised to connecting followers.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::SeqCst);
    }

    /// Asks the hub's loops to stop.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a follower with a higher epoch has fenced this primary off.
    #[must_use]
    pub fn deposed(&self) -> bool {
        self.deposed.load(Ordering::SeqCst)
    }

    /// Frame bytes streamed to followers so far.
    #[must_use]
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Heartbeats sent so far.
    #[must_use]
    pub fn heartbeats_sent(&self) -> u64 {
        self.heartbeats_sent.load(Ordering::Relaxed)
    }

    /// Follower connections accepted so far.
    #[must_use]
    pub fn followers_seen(&self) -> u64 {
        self.followers_seen.load(Ordering::Relaxed)
    }

    /// Handshakes rejected for a stale (or fencing) epoch.
    #[must_use]
    pub fn stale_rejects(&self) -> u64 {
        self.stale_rejects.load(Ordering::Relaxed)
    }
}

/// Tuning knobs for the primary's streaming loops.
#[derive(Debug, Clone, Copy)]
pub struct HubOptions {
    /// Journal-file poll interval while idle.
    pub poll: Duration,
    /// Idle interval after which a heartbeat byte is sent.
    pub heartbeat_every: Duration,
}

impl Default for HubOptions {
    fn default() -> Self {
        HubOptions {
            poll: Duration::from_millis(2),
            heartbeat_every: Duration::from_millis(50),
        }
    }
}

/// Accept loop of the primary's replication listener: one streaming
/// thread per follower, until [`ReplicationHub::shutdown`].
///
/// # Errors
///
/// Propagates listener errors (per-connection errors only end that
/// connection).
pub fn serve_hub(
    listener: &TcpListener,
    journal_path: &Path,
    hub: &Arc<ReplicationHub>,
    opts: HubOptions,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut workers = Vec::new();
    loop {
        if hub.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                hub.followers_seen.fetch_add(1, Ordering::Relaxed);
                let hub = Arc::clone(hub);
                let path = journal_path.to_path_buf();
                workers.push(std::thread::spawn(move || {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    let _ = stream_to_follower(stream, &path, &hub, opts);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

/// Handles one follower connection: handshake, then forward the journal's
/// complete frames from the requested cursor, heartbeating while idle.
fn stream_to_follower(
    stream: TcpStream,
    journal_path: &Path,
    hub: &ReplicationHub,
    opts: HubOptions,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let mut hello = String::new();
    reader.read_line(&mut hello)?;
    let (cursor, fence) = match parse_hello(&hello) {
        Some(v) => v,
        None => {
            let _ = writeln!(stream, "ERR bad-handshake {}", hello.trim().len());
            return Ok(());
        }
    };
    let epoch = hub.epoch.load(Ordering::SeqCst);
    if fence > epoch {
        // A follower from a later term: this primary is deposed. Refuse
        // to stream (its late writes must not propagate) and flag it.
        hub.deposed.store(true, Ordering::SeqCst);
        hub.stale_rejects.fetch_add(1, Ordering::Relaxed);
        let _ = writeln!(
            stream,
            "ERR stale-epoch {epoch} behind follower fence {fence}"
        );
        return Ok(());
    }
    let mut file = File::open(journal_path)?;
    let len = file.seek(SeekFrom::End(0))?;
    if cursor > len {
        let _ = writeln!(
            stream,
            "ERR cursor follower at {cursor} ahead of journal {len}"
        );
        return Ok(());
    }
    file.seek(SeekFrom::Start(cursor))?;
    writeln!(stream, "OK {epoch}")?;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut last_sent = Instant::now();
    loop {
        if hub.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let n = file.read(&mut chunk)?;
        if n > 0 {
            pending.extend_from_slice(&chunk[..n]);
        }
        // Forward only complete, CRC-valid frames: heartbeats then always
        // land at frame boundaries, and local tail corruption stops here
        // instead of propagating to the standby.
        let mut fwd = 0usize;
        loop {
            match check_frame(&pending, fwd) {
                FrameCheck::Complete { end } => fwd = end,
                FrameCheck::Incomplete => break,
                FrameCheck::Invalid => return Ok(()),
            }
        }
        if fwd > 0 {
            stream.write_all(&pending[..fwd])?;
            pending.drain(..fwd);
            hub.bytes_sent.fetch_add(fwd as u64, Ordering::Relaxed);
            last_sent = Instant::now();
        } else if n == 0 {
            if last_sent.elapsed() >= opts.heartbeat_every {
                stream.write_all(&[HEARTBEAT_BYTE])?;
                hub.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
                last_sent = Instant::now();
            }
            std::thread::sleep(opts.poll);
        }
    }
}

fn parse_hello(line: &str) -> Option<(u64, u64)> {
    let rest = line.trim().strip_prefix(HELLO_PREFIX)?;
    let (cursor, fence) = rest.split_once(' ')?;
    Some((cursor.parse().ok()?, fence.parse().ok()?))
}

// ---------------------------------------------------------------------------
// Role: the failover state machine shared between server and replica loop
// ---------------------------------------------------------------------------

/// The serving role of a process, shared between the request-serving
/// sessions (which gate writes and execute promotions) and the replica
/// loop (which parks when a promotion is requested).
#[derive(Debug)]
pub struct Role {
    primary: AtomicBool,
    promote_requested: AtomicBool,
    parked: AtomicBool,
    stop: AtomicBool,
    /// Construction instant, the zero point for [`Role::stale_by_ms`].
    born: Instant,
    /// Milliseconds after `born` at which the replica loop last heard
    /// from its primary (applied a record, completed a handshake, or saw
    /// a heartbeat).
    heard_ms: AtomicU64,
}

impl Role {
    /// A primary role (writes accepted; no replica loop).
    #[must_use]
    pub fn primary() -> Self {
        Role {
            primary: AtomicBool::new(true),
            promote_requested: AtomicBool::new(false),
            parked: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            born: Instant::now(),
            heard_ms: AtomicU64::new(0),
        }
    }

    /// A follower role (writes rejected until promotion).
    #[must_use]
    pub fn follower() -> Self {
        Role {
            primary: AtomicBool::new(false),
            promote_requested: AtomicBool::new(false),
            parked: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            born: Instant::now(),
            heard_ms: AtomicU64::new(0),
        }
    }

    /// Records contact with the primary: the replica loop calls this
    /// whenever it applies a record, completes a handshake, or receives
    /// a heartbeat, resetting the staleness clock read by
    /// [`Role::stale_by_ms`].
    pub fn note_heard(&self) {
        self.heard_ms
            .store(self.born.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// Milliseconds since the replica loop last heard from the primary —
    /// the `stale_by` bound a follower attaches to read responses
    /// (`stats`/`log`) so clients hedging reads to a standby know how far
    /// behind the answer may be. A primary is never stale (returns 0).
    #[must_use]
    pub fn stale_by_ms(&self) -> u64 {
        if self.is_primary() {
            return 0;
        }
        (self.born.elapsed().as_millis() as u64)
            .saturating_sub(self.heard_ms.load(Ordering::Relaxed))
    }

    /// Whether this process currently accepts writes.
    #[must_use]
    pub fn is_primary(&self) -> bool {
        self.primary.load(Ordering::SeqCst)
    }

    /// Asks the replica loop to park for promotion.
    pub fn request_promote(&self) {
        self.promote_requested.store(true, Ordering::SeqCst);
    }

    /// Whether a promotion has been requested.
    #[must_use]
    pub fn promote_requested(&self) -> bool {
        self.promote_requested.load(Ordering::SeqCst)
    }

    /// Asks the replica loop to stop (process shutdown). The request is
    /// consumed by the next [`run_follower`] start, so a stopped standby
    /// can be restarted with the same [`Role`].
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested.
    #[must_use]
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Whether the replica loop has parked (or never ran).
    #[must_use]
    pub fn parked(&self) -> bool {
        self.parked.load(Ordering::SeqCst)
    }

    fn set_primary(&self) {
        self.primary.store(true, Ordering::SeqCst);
    }

    fn park(&self) {
        self.parked.store(true, Ordering::SeqCst);
    }

    fn unpark(&self) {
        self.parked.store(false, Ordering::SeqCst);
    }
}

/// Everything a serving session needs to gate writes by role and execute
/// an `{"op":"promote"}` request: the shared [`Role`], the mirror path
/// that becomes the live journal, and the journal config to reopen it
/// with.
#[derive(Debug)]
pub struct RoleContext {
    /// The shared role cell.
    pub role: Role,
    /// The follower's mirror file (the promoted node's journal).
    pub mirror: PathBuf,
    /// Journal config for the promoted journal.
    pub jconfig: JournalConfig,
}

impl RoleContext {
    /// A follower context mirroring into `mirror`.
    #[must_use]
    pub fn follower<P: Into<PathBuf>>(mirror: P, jconfig: JournalConfig) -> Self {
        RoleContext {
            role: Role::follower(),
            mirror: mirror.into(),
            jconfig,
        }
    }
}

// ---------------------------------------------------------------------------
// Follower side: mirror, apply, lease
// ---------------------------------------------------------------------------

/// Follower tuning knobs.
#[derive(Debug, Clone)]
pub struct FollowerOptions {
    /// Primary's replication address (`host:port`).
    pub primary: String,
    /// Path of the local mirror file (byte-identical journal prefix).
    pub mirror: PathBuf,
    /// Socket read timeout — also the granularity at which the loop
    /// checks its stop/promote flags.
    pub read_timeout: Duration,
    /// Silence (no frames, no heartbeats) after which a heartbeat miss is
    /// counted and the lease is considered expired.
    pub heartbeat_timeout: Duration,
    /// Reconnect backoff base (doubled per consecutive failure, jittered).
    pub backoff_base: Duration,
    /// Reconnect backoff cap.
    pub backoff_cap: Duration,
    /// Jitter seed (deterministic backoff in tests).
    pub seed: u64,
    /// Return [`FollowEnd::LeaseExpired`] when the lease lapses instead
    /// of reconnecting forever — the auto-promotion trigger.
    pub exit_on_lease_expiry: bool,
}

impl Default for FollowerOptions {
    fn default() -> Self {
        FollowerOptions {
            primary: String::new(),
            mirror: PathBuf::new(),
            read_timeout: Duration::from_millis(25),
            heartbeat_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
            seed: 0x5EED_CAFE,
            exit_on_lease_expiry: false,
        }
    }
}

/// Why [`run_follower`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowEnd {
    /// [`Role::request_stop`] was seen.
    Stopped,
    /// [`Role::request_promote`] was seen: the loop parked so
    /// [`promote`] can take over the mirror.
    PromoteRequested,
    /// The lease expired with `exit_on_lease_expiry` set.
    LeaseExpired,
    /// The primary is from an older term than our fence (it was deposed);
    /// following it would roll history back.
    StaleSource,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential backoff with deterministic jitter: `base·2^attempt` capped
/// at `cap`, plus a jitter draw in `[0, base)`.
#[must_use]
pub fn backoff_delay(base: Duration, cap: Duration, attempt: u32, rng: &mut u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let capped = exp.min(cap);
    let jitter_nanos = if base.as_nanos() == 0 {
        0
    } else {
        splitmix(rng) % base.as_nanos().min(u128::from(u64::MAX)) as u64
    };
    capped + Duration::from_nanos(jitter_nanos)
}

/// Applies one scanned/streamed journal record to a follower engine.
/// `E` frames replay the event, `B` frames advance the fence (stale ones
/// are the fenced-off late writes), `X`/`I` frames replay live-resharding
/// domain moves, `O`/`S` frames are mirror-only.
fn apply_record(
    engine: &mut AdmissionEngine,
    kind: RecordKind,
    payload: &str,
) -> Result<(), AdmitError> {
    match kind {
        RecordKind::Event => {
            let (flag, line) = payload.split_once(' ').ok_or_else(|| {
                AdmitError::Journal(JournalError::Replay {
                    record: 0,
                    reason: "missing fast-path flag".to_string(),
                })
            })?;
            let fast = flag == "f";
            let event = parse_event_line(line).map_err(|e| {
                AdmitError::Journal(JournalError::Replay {
                    record: 0,
                    reason: e.to_string(),
                })
            })?;
            engine.apply_opts(&event, fast)?;
        }
        RecordKind::Epoch => {
            let epoch = payload.trim().parse::<u64>().map_err(|e| {
                AdmitError::Journal(JournalError::Replay {
                    record: 0,
                    reason: format!("bad epoch payload: {e}"),
                })
            })?;
            engine.observe_epoch(epoch)?;
        }
        RecordKind::Export => {
            let (local, _) = payload.split_once(' ').ok_or_else(|| {
                AdmitError::Journal(JournalError::Replay {
                    record: 0,
                    reason: "malformed export record".to_string(),
                })
            })?;
            let local: usize = local.parse().map_err(|_| {
                AdmitError::Journal(JournalError::Replay {
                    record: 0,
                    reason: format!("bad export index {local:?}"),
                })
            })?;
            engine.export_domain(local)?;
        }
        RecordKind::Import => {
            let (key, body) = payload.split_once(' ').ok_or_else(|| {
                AdmitError::Journal(JournalError::Replay {
                    record: 0,
                    reason: "malformed import record".to_string(),
                })
            })?;
            engine.import_domain(key, body)?;
        }
        RecordKind::Outcome | RecordKind::Snapshot => {}
    }
    engine.metrics_mut().repl_records += 1;
    Ok(())
}

/// Resynchronises the follower engine with its mirror file: torn-tail
/// scan, replay of any records past the engine's applied cursor, torn
/// tail truncated and counted. Returns the byte cursor to resume the
/// stream from. Creates the mirror if it does not exist.
fn resync_mirror(engine: &Mutex<AdmissionEngine>, mirror: &Path) -> Result<u64, AdmitError> {
    if !mirror.exists() {
        File::create(mirror).map_err(io_err)?;
        return Ok(0);
    }
    let mut data = Vec::new();
    File::open(mirror)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(io_err)?;
    let scan = journal::scan_bytes(&data);
    let mut g = engine
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let applied = g.metrics().repl_records as usize;
    for rec in scan.records.iter().skip(applied) {
        apply_record(&mut g, rec.kind, &rec.payload)?;
    }
    if scan.bytes_lost() > 0 {
        g.metrics_mut().repl_torn_tails += 1;
        OpenOptions::new()
            .write(true)
            .open(mirror)
            .and_then(|f| f.set_len(scan.valid_len))
            .map_err(io_err)?;
    }
    g.metrics_mut().repl_bytes = scan.valid_len;
    Ok(scan.valid_len)
}

/// The follower loop: resync the mirror, connect to the primary, stream
/// frames into the mirror and the engine, maintain the heartbeat lease,
/// and reconnect (from the torn-tail-scanned cursor) when the connection
/// drops. Returns when stopped, parked for promotion, fenced off by a
/// stale source, or — with `exit_on_lease_expiry` — when the primary's
/// lease lapses.
///
/// The engine must not have a journal attached while following (the
/// mirror file *is* the journal; [`promote`] attaches it on failover).
///
/// # Errors
///
/// Mirror I/O failures and replay errors propagate; connection failures
/// are retried with backoff.
pub fn run_follower(
    engine: &Mutex<AdmissionEngine>,
    role: &Role,
    opts: &FollowerOptions,
) -> Result<FollowEnd, AdmitError> {
    // A stop request addressed the *previous* loop; starting consumes it.
    role.stop.store(false, Ordering::SeqCst);
    role.unpark();
    let result = follow_inner(engine, role, opts);
    role.park();
    result
}

fn follow_inner(
    engine: &Mutex<AdmissionEngine>,
    role: &Role,
    opts: &FollowerOptions,
) -> Result<FollowEnd, AdmitError> {
    let mut rng = opts.seed;
    let mut attempt: u32 = 0;
    let mut last_heard = Instant::now();
    let mut connected_once = false;
    loop {
        if role.stopping() {
            return Ok(FollowEnd::Stopped);
        }
        if role.promote_requested() {
            return Ok(FollowEnd::PromoteRequested);
        }
        let cursor = resync_mirror(engine, &opts.mirror)?;
        let fence = {
            let g = engine
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g.epoch()
        };
        match TcpStream::connect(&opts.primary) {
            Ok(stream) => {
                if connected_once {
                    let mut g = engine
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    g.metrics_mut().repl_reconnects += 1;
                }
                connected_once = true;
                attempt = 0;
                last_heard = Instant::now();
                role.note_heard();
                match stream_session(engine, role, opts, stream, cursor, fence, &mut last_heard)? {
                    SessionOutcome::Disconnected => {}
                    SessionOutcome::End(end) => return Ok(end),
                }
            }
            Err(_) => {
                let delay = backoff_delay(opts.backoff_base, opts.backoff_cap, attempt, &mut rng);
                attempt = attempt.saturating_add(1);
                sleep_checked(role, delay);
            }
        }
        if last_heard.elapsed() >= opts.heartbeat_timeout {
            let mut g = engine
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g.metrics_mut().heartbeat_misses += 1;
            drop(g);
            last_heard = Instant::now();
            if opts.exit_on_lease_expiry {
                return Ok(FollowEnd::LeaseExpired);
            }
        }
    }
}

/// Sleeps in small slices so stop/promote flags stay responsive.
fn sleep_checked(role: &Role, total: Duration) {
    let slice = Duration::from_millis(5);
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if role.stopping() || role.promote_requested() {
            return;
        }
        std::thread::sleep(slice.min(deadline.saturating_duration_since(Instant::now())));
    }
}

enum SessionOutcome {
    /// Connection lost; reconnect from a rescanned cursor.
    Disconnected,
    /// The loop should return with this end.
    End(FollowEnd),
}

fn stream_session(
    engine: &Mutex<AdmissionEngine>,
    role: &Role,
    opts: &FollowerOptions,
    stream: TcpStream,
    cursor: u64,
    fence: u64,
    last_heard: &mut Instant,
) -> Result<SessionOutcome, AdmitError> {
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(opts.read_timeout))
        .map_err(io_err)?;
    let mut stream = stream;
    if writeln!(stream, "{HELLO_PREFIX}{cursor} {fence}").is_err() {
        return Ok(SessionOutcome::Disconnected);
    }
    // Read the one-line handshake reply byte-at-a-time so the frame bytes
    // after it are not swallowed by a buffered reader.
    let reply = match read_reply_line(&mut stream, opts.heartbeat_timeout) {
        Some(r) => r,
        None => return Ok(SessionOutcome::Disconnected),
    };
    if let Some(epoch) = reply.strip_prefix("OK ") {
        let epoch: u64 = epoch.trim().parse().map_err(|_| {
            AdmitError::Journal(JournalError::Replay {
                record: 0,
                reason: format!("bad handshake reply {reply:?}"),
            })
        })?;
        let mut g = engine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if epoch < fence {
            g.metrics_mut().epoch_rejects += 1;
            return Ok(SessionOutcome::End(FollowEnd::StaleSource));
        }
        g.observe_epoch(epoch)?;
    } else if reply.starts_with("ERR stale-epoch") {
        // The primary itself detected it is behind our fence.
        let mut g = engine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        g.metrics_mut().epoch_rejects += 1;
        return Ok(SessionOutcome::End(FollowEnd::StaleSource));
    } else {
        return Ok(SessionOutcome::Disconnected);
    }
    *last_heard = Instant::now();
    role.note_heard();
    let mut mirror = OpenOptions::new()
        .append(true)
        .open(&opts.mirror)
        .map_err(io_err)?;
    // `buf` holds the unconsumed suffix of the stream (always starting at
    // a frame boundary); `mirrored` of its bytes are already on disk —
    // partial frames are flushed eagerly so a kill here leaves exactly
    // the torn tail the next resync's scan expects.
    let mut buf: Vec<u8> = Vec::new();
    let mut mirrored = 0usize;
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if role.stopping() {
            return Ok(SessionOutcome::End(FollowEnd::Stopped));
        }
        if role.promote_requested() {
            return Ok(SessionOutcome::End(FollowEnd::PromoteRequested));
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Ok(SessionOutcome::Disconnected),
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if last_heard.elapsed() >= opts.heartbeat_timeout {
                    let mut g = engine
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    g.metrics_mut().heartbeat_misses += 1;
                    drop(g);
                    *last_heard = Instant::now();
                    if opts.exit_on_lease_expiry {
                        return Ok(SessionOutcome::End(FollowEnd::LeaseExpired));
                    }
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Ok(SessionOutcome::Disconnected),
        };
        *last_heard = Instant::now();
        role.note_heard();
        buf.extend_from_slice(&chunk[..n]);
        loop {
            if mirrored == 0 && buf.first() == Some(&HEARTBEAT_BYTE) {
                buf.remove(0);
                continue;
            }
            match check_frame(&buf, 0) {
                FrameCheck::Complete { end } => {
                    mirror.write_all(&buf[mirrored..end]).map_err(io_err)?;
                    let (kind, payload) = decode_checked_frame(&buf[..end]);
                    let mut g = engine
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let res = apply_record(&mut g, kind, &payload);
                    g.metrics_mut().repl_bytes += end as u64;
                    let stale = matches!(res, Err(AdmitError::StaleEpoch { .. }));
                    if stale {
                        g.metrics_mut().epoch_rejects += 1;
                        drop(g);
                        return Ok(SessionOutcome::End(FollowEnd::StaleSource));
                    }
                    drop(g);
                    res?;
                    buf.drain(..end);
                    mirrored = 0;
                }
                FrameCheck::Incomplete => {
                    mirror.write_all(&buf[mirrored..]).map_err(io_err)?;
                    mirrored = buf.len();
                    break;
                }
                FrameCheck::Invalid => {
                    // Corrupted in flight: drop the connection and let the
                    // resync scan truncate whatever reached the mirror.
                    return Ok(SessionOutcome::Disconnected);
                }
            }
        }
    }
}

/// Decodes a frame already validated by [`check_frame`].
fn decode_checked_frame(frame: &[u8]) -> (RecordKind, String) {
    let scan = journal::scan_bytes(frame);
    let rec = &scan.records[0];
    (rec.kind, rec.payload.clone())
}

fn read_reply_line(stream: &mut TcpStream, deadline: Duration) -> Option<String> {
    let start = Instant::now();
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => {
                if byte[0] == b'\n' {
                    return String::from_utf8(line).ok();
                }
                line.push(byte[0]);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if start.elapsed() > deadline {
                    return None;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

// ---------------------------------------------------------------------------
// Promotion
// ---------------------------------------------------------------------------

/// Promotes a parked follower to primary: waits for the replica loop to
/// park, drains any mirror tail into the engine (torn bytes truncated and
/// counted), attaches the mirror as the live journal, fsyncs an
/// epoch-begin record one past the highest epoch observed, and flips the
/// role. Idempotent: promoting a primary returns its current epoch.
///
/// Returns the new epoch.
///
/// # Errors
///
/// * [`AdmitError::Journal`] for mirror I/O or replay failures, or if the
///   replica loop failed to park within the timeout.
/// * [`AdmitError::StaleEpoch`] cannot occur here (the epoch is derived
///   from the fence), but replay errors propagate.
pub fn promote(engine: &Mutex<AdmissionEngine>, ctx: &RoleContext) -> Result<u64, AdmitError> {
    if ctx.role.is_primary() {
        let g = engine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        return Ok(g.epoch());
    }
    ctx.role.request_promote();
    let deadline = Instant::now() + PARK_TIMEOUT;
    while !ctx.role.parked() {
        if Instant::now() > deadline {
            return Err(AdmitError::Journal(JournalError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "replica loop did not park for promotion",
            ))));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    if !ctx.mirror.exists() {
        File::create(&ctx.mirror).map_err(io_err)?;
    }
    let mut data = Vec::new();
    File::open(&ctx.mirror)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(io_err)?;
    let scan = journal::scan_bytes(&data);
    let mut g = engine
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let applied = g.metrics().repl_records as usize;
    for rec in scan.records.iter().skip(applied) {
        apply_record(&mut g, rec.kind, &rec.payload)?;
    }
    if scan.bytes_lost() > 0 {
        g.metrics_mut().repl_torn_tails += 1;
    }
    g.metrics_mut().repl_bytes = scan.valid_len;
    let journal = Journal::append_to(&ctx.mirror, ctx.jconfig, &scan).map_err(io_err)?;
    g.attach_journal(journal);
    let new_epoch = g.epoch() + 1;
    g.begin_epoch(new_epoch)?;
    ctx.role.set_primary();
    Ok(new_epoch)
}
