use std::error::Error;
use std::fmt;

use reject_sched::SchedError;
use rt_model::{ModelError, TaskId};

use crate::journal::JournalError;

/// Error raised by the admission engine and its serving front-end.
#[derive(Debug)]
#[non_exhaustive]
pub enum AdmitError {
    /// An event carried a timestamp earlier than the engine clock.
    TimeRegression {
        /// The offending timestamp.
        at: f64,
        /// The engine clock when the event was applied.
        clock: f64,
    },
    /// An arriving task's identifier is already present (active or
    /// unserved) in the system.
    DuplicateTask(TaskId),
    /// A departure named an identifier not present in the system.
    UnknownTask(TaskId),
    /// An event referenced an identifier that already departed: a stale
    /// duplicate (client retry, replayed stream) rather than a new task —
    /// rejected without mutating any ledger.
    AlreadyDeparted(TaskId),
    /// An arriving task used the identifier reserved for the engine's
    /// internal billing-horizon anchor.
    ReservedId(TaskId),
    /// The engine was configured with an empty domain list.
    NoDomains,
    /// An arriving task was pinned to a power domain the engine does not
    /// have.
    InvalidDomain {
        /// The arriving task.
        task: TaskId,
        /// The out-of-range pin.
        domain: usize,
        /// Number of domains the engine serves.
        domains: usize,
    },
    /// An arriving task was pinned to a power domain that has been
    /// exported to another shard (live resharding): the local slot is
    /// fenced and accepts no further work.
    DomainFenced {
        /// The arriving task.
        task: TaskId,
        /// The fenced local domain index.
        domain: usize,
    },
    /// A domain export/import (live-resharding migration) failed: bad
    /// payload, out-of-range index, or an inconsistent retry.
    Migration {
        /// What went wrong.
        reason: String,
    },
    /// A configuration parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A scheduling-layer error (oracles, re-solve).
    Sched(SchedError),
    /// A task-model error.
    Model(ModelError),
    /// The write-ahead journal failed (I/O, corrupt snapshot).
    Journal(JournalError),
    /// A fencing-epoch write did not advance past the current epoch: a
    /// deposed primary's late write after a failover, or a promotion that
    /// lost the race to a higher term.
    StaleEpoch {
        /// The epoch the write carried.
        epoch: u64,
        /// The fence it failed to clear.
        current: u64,
    },
}

impl AdmitError {
    /// Short stable machine-readable discriminator, used by the serving
    /// layer's structured JSON error responses.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            AdmitError::TimeRegression { .. } => "time-regression",
            AdmitError::DuplicateTask(_) => "duplicate-task",
            AdmitError::UnknownTask(_) => "unknown-task",
            AdmitError::AlreadyDeparted(_) => "already-departed",
            AdmitError::ReservedId(_) => "reserved-id",
            AdmitError::NoDomains => "no-domains",
            AdmitError::InvalidDomain { .. } => "invalid-domain",
            AdmitError::DomainFenced { .. } => "domain-fenced",
            AdmitError::Migration { .. } => "migration",
            AdmitError::InvalidParameter { .. } => "invalid-parameter",
            AdmitError::Sched(_) => "sched",
            AdmitError::Model(_) => "model",
            AdmitError::Journal(_) => "journal",
            AdmitError::StaleEpoch { .. } => "stale-epoch",
        }
    }

    /// The task identifier the error is about, when there is one.
    #[must_use]
    pub fn task_id(&self) -> Option<TaskId> {
        match self {
            AdmitError::DuplicateTask(id)
            | AdmitError::UnknownTask(id)
            | AdmitError::AlreadyDeparted(id)
            | AdmitError::ReservedId(id) => Some(*id),
            AdmitError::InvalidDomain { task, .. } => Some(*task),
            AdmitError::DomainFenced { task, .. } => Some(*task),
            _ => None,
        }
    }
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::TimeRegression { at, clock } => {
                write!(f, "event at t={at} behind the engine clock t={clock}")
            }
            AdmitError::DuplicateTask(id) => write!(f, "task {id} is already present"),
            AdmitError::UnknownTask(id) => write!(f, "task {id} is not present"),
            AdmitError::AlreadyDeparted(id) => write!(f, "task {id} already departed"),
            AdmitError::ReservedId(id) => {
                write!(f, "task id {id} is reserved for the billing-horizon anchor")
            }
            AdmitError::NoDomains => write!(f, "engine needs at least one power domain"),
            AdmitError::InvalidDomain {
                task,
                domain,
                domains,
            } => {
                write!(
                    f,
                    "task {task} is pinned to domain {domain}, engine has {domains}"
                )
            }
            AdmitError::DomainFenced { task, domain } => {
                write!(
                    f,
                    "task {task} is pinned to domain {domain}, which was exported to another shard"
                )
            }
            AdmitError::Migration { reason } => write!(f, "migration failed: {reason}"),
            AdmitError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            AdmitError::Sched(e) => write!(f, "scheduling error: {e}"),
            AdmitError::Model(e) => write!(f, "task model error: {e}"),
            AdmitError::Journal(e) => write!(f, "journal error: {e}"),
            AdmitError::StaleEpoch { epoch, current } => {
                write!(f, "stale epoch {epoch} behind the current fence {current}")
            }
        }
    }
}

impl Error for AdmitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AdmitError::Sched(e) => Some(e),
            AdmitError::Model(e) => Some(e),
            AdmitError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedError> for AdmitError {
    fn from(e: SchedError) -> Self {
        AdmitError::Sched(e)
    }
}

impl From<ModelError> for AdmitError {
    fn from(e: ModelError) -> Self {
        AdmitError::Model(e)
    }
}

impl From<JournalError> for AdmitError {
    fn from(e: JournalError) -> Self {
        AdmitError::Journal(e)
    }
}
