//! The stateful admission-control engine.
//!
//! [`AdmissionEngine`] consumes a timestamped event stream
//! ([`EventRecord`]: `Arrive`, `Depart`, `Tick`) and maintains, per power
//! domain, the committed utilization and the ledger of admitted tasks.
//! Admission is decided by a pluggable [`EnginePolicy`] — any of the
//! offline crate's [`AdmissionPolicy`] implementations wrapped as-is, or
//! the new stateful [`WatermarkPolicy`] with high/low hysteresis — and
//! commitments are *revisited*: on `Tick` (and on departures when a regret
//! threshold is configured) the engine runs a node-budgeted offline
//! re-solve over the active set and sheds now-unprofitable tasks, charging
//! their penalties exactly as the simulator's late-rejection recovery path
//! does.
//!
//! ## Economics: the billing horizon
//!
//! The offline objective is *per hyper-period*: `E*(u) = L·rate(u)` versus
//! penalties `vᵢ`. An online engine sees no fixed task set, so it fixes a
//! **billing horizon** `H` ([`EngineConfig::horizon`]) and prices every
//! decision per `H` ticks: a task is worth admitting when
//! `vᵢ ≥ θ·H·(rate(u+uᵢ) − rate(u))`. Internally this is implemented by
//! consulting the *oracle instance* — a one-task instance whose anchor
//! task (reserved id, zero cycles) pins the hyper-period to `H` — so the
//! existing [`AdmissionPolicy`] implementations work unmodified. Re-solve
//! instances embed the same anchor; when all task periods divide `H` (true
//! for the default generator period set with `H = 1000`) the re-solve
//! economics coincide exactly with the engine's own accounting.
//!
//! ## Reservation-consistent shedding and the dominance theorem
//!
//! Shedding interacts with admission: naively, evicting a task frees
//! capacity, later arrivals the myopic engine would refuse get admitted,
//! and those divergent admissions can backfire — the re-solving engine
//! can then end up *costlier* than the myopic one it was meant to
//! dominate. This engine closes that hole with two rules:
//!
//! 1. **Reservations.** A shed task keeps its admission-pricing
//!    reservation until it departs: admission decisions are priced at the
//!    *reserved* utilization (served + shed-but-present), so the
//!    accept/reject trajectory is identical to the myopic engine's on any
//!    event stream, and shedding never invites thrashing re-admissions.
//! 2. **Serve-all guard.** The re-solve optimizes over served *and*
//!    reserved tasks (it may readmit), and after every arrival and
//!    departure the engine reverts to serving everything admitted if the
//!    reserved set has stopped being collectively profitable at the new
//!    background load.
//!
//! Together these make the engine's instantaneous cost rate (energy at
//! the served utilization plus `vᵢ/H` per unserved task) never exceed the
//! myopic engine's at any point in time, for a convex energy-rate model —
//! so `total_cost(re-solve) ≤ total_cost(myopic)` holds on **every**
//! trace, not just on average. Experiment E7 measures the margin.
//!
//! ## Determinism contract
//!
//! Given the same event stream and configuration, the decision log is
//! **bit-identical regardless of `DVS_THREADS`**: admission decisions are
//! pure arithmetic, and the re-solve uses the *sequential* node-budgeted
//! branch & bound (`solve_within`), whose incumbent is reproducible by
//! construction. Only the wall-clock decision-latency histogram in the
//! metrics registry varies between runs.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::time::Instant;

use dvs_power::Processor;
use reject_sched::algorithms::{BranchBound, MarginalGreedy};
use reject_sched::anytime::{BudgetedPolicy, SolveBudget, SolveQuality};
use reject_sched::online::AdmissionPolicy;
use reject_sched::{Instance, RejectionPolicy, SchedError, Solution};
use rt_model::io::{parse_event_line, EventKind, EventRecord};
use rt_model::{Task, TaskId, TaskSet};

use crate::journal::{self, Journal, JournalConfig, JournalError, RecordKind};
use crate::metrics::Metrics;
use crate::AdmitError;

/// Task identifier reserved for the engine's billing-horizon anchor task
/// (a zero-cycle, zero-penalty task that pins oracle and re-solve
/// instances to the configured horizon). Arrivals may not use it.
pub const RESERVED_ANCHOR_ID: usize = usize::MAX;

/// Tolerance below which a re-solve improvement is treated as a tie (no
/// shedding on numerical noise).
const RESOLVE_EPSILON: f64 = 1e-9;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Billing horizon `H` in ticks: penalties are per `H`, energy is
    /// priced as `H·rate(u)`. Should be a common multiple of expected task
    /// periods for exact re-solve consistency (see the [module
    /// docs](self)).
    pub horizon: u64,
    /// Run a re-solve every `k`-th `Tick` (`None` disables periodic
    /// re-solves; regret-triggered ones still run if configured).
    pub resolve_every: Option<u64>,
    /// Re-solve as soon as the estimated shedding profit (regret) exceeds
    /// this, checked on ticks *and* departures. `None` disables.
    pub regret_threshold: Option<f64>,
    /// Node budget per re-solve pass, handed to the sequential anytime
    /// branch & bound. Deterministic by construction.
    pub resolve_budget: u64,
    /// Seed each re-solve's incumbent with the domain's standing accepted
    /// set (warm start). The tighter initial bound prunes more of the
    /// search under the same node budget; when the search completes within
    /// budget the decisions are identical to a cold start (the engine acts
    /// only on strict cost improvements, and warm start can only change
    /// the result on ties or budget expiry — in its favour).
    pub warm_start: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            horizon: 1000,
            resolve_every: Some(1),
            regret_threshold: None,
            resolve_budget: 20_000,
            warm_start: true,
        }
    }
}

impl EngineConfig {
    /// Sets the billing horizon.
    #[must_use]
    pub fn horizon(mut self, ticks: u64) -> Self {
        self.horizon = ticks.max(1);
        self
    }

    /// Re-solve every `k` ticks (`0` disables).
    #[must_use]
    pub fn resolve_every(mut self, k: u64) -> Self {
        self.resolve_every = if k == 0 { None } else { Some(k) };
        self
    }

    /// Re-solve when regret exceeds `threshold`.
    #[must_use]
    pub fn regret_threshold(mut self, threshold: f64) -> Self {
        self.regret_threshold = Some(threshold);
        self
    }

    /// Sets the re-solve node budget.
    #[must_use]
    pub fn resolve_budget(mut self, nodes: u64) -> Self {
        self.resolve_budget = nodes.max(1);
        self
    }

    /// Enables or disables warm-started re-solves.
    #[must_use]
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }
}

/// An admission decision rule consulted by the engine.
///
/// Unlike the offline [`AdmissionPolicy`] (stateless `&self`), engine
/// policies may carry state across decisions (`&mut self`) — the
/// [`WatermarkPolicy`]'s hysteresis latch needs exactly that. Every
/// `AdmissionPolicy` is an `EnginePolicy` via a blanket impl, so
/// `OnlineGreedy` and `ThresholdPolicy` plug in unchanged.
pub trait EnginePolicy: Send {
    /// Short stable identifier (used in reports and logs).
    fn name(&self) -> &'static str;

    /// Whether to admit `task` on a domain with committed utilization `u`.
    ///
    /// `oracle` is the domain's billing-horizon instance: use
    /// `oracle.marginal_energy(u, du)` and `oracle.processor()` — its task
    /// list is the anchor only and carries no information.
    ///
    /// # Errors
    ///
    /// Oracle errors propagate.
    fn decide(&mut self, oracle: &Instance, u: f64, task: &Task) -> Result<bool, SchedError>;

    /// Serializes the policy's mutable decision state for an engine
    /// snapshot. `None` (the default, correct for stateless policies)
    /// means there is nothing to persist; a stateful policy — like
    /// [`WatermarkPolicy`]'s hysteresis latch — must return its state here
    /// or recovery will replay decisions from a reset latch.
    fn snapshot_state(&self) -> Option<String> {
        None
    }

    /// Restores state captured by [`EnginePolicy::snapshot_state`].
    ///
    /// # Errors
    ///
    /// A human-readable reason when `state` is not recognized. The default
    /// (stateless) implementation rejects any state string.
    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        Err(format!(
            "policy {:?} is stateless but the snapshot carries state {state:?}",
            self.name()
        ))
    }
}

impl<P: AdmissionPolicy + Send> EnginePolicy for P {
    fn name(&self) -> &'static str {
        AdmissionPolicy::name(self)
    }

    fn decide(&mut self, oracle: &Instance, u: f64, task: &Task) -> Result<bool, SchedError> {
        self.admit(oracle, u, task)
    }
}

/// Reservation policy with high/low watermark hysteresis.
///
/// While the domain's committed utilization is below `high · s_max` the
/// policy admits by the plain myopic rule. Crossing the high watermark
/// *engages* reservation mode: admissions must now clear a hedged bar
/// `vᵢ ≥ θ·ΔE`, keeping headroom for denser future arrivals. The mode
/// stays engaged — even as rejections keep utilization flat — until
/// departures pull utilization down to the low watermark, which prevents
/// the rapid engage/disengage flapping a single threshold would produce.
#[derive(Debug, Clone, PartialEq)]
pub struct WatermarkPolicy {
    high: f64,
    low: f64,
    theta: f64,
    engaged: bool,
}

impl WatermarkPolicy {
    /// Creates the policy. `low ≤ high` are fractions of the domain's
    /// maximum speed in `[0, 1]`; `θ ≥ 1` is the hedge applied while
    /// engaged.
    ///
    /// # Errors
    ///
    /// [`AdmitError::InvalidParameter`] for out-of-range values.
    pub fn new(high: f64, low: f64, theta: f64) -> Result<Self, AdmitError> {
        if !(0.0..=1.0).contains(&high) || !high.is_finite() {
            return Err(AdmitError::InvalidParameter {
                name: "high watermark",
                value: high,
            });
        }
        if !(0.0..=1.0).contains(&low) || low > high {
            return Err(AdmitError::InvalidParameter {
                name: "low watermark",
                value: low,
            });
        }
        if !theta.is_finite() || theta < 1.0 {
            return Err(AdmitError::InvalidParameter {
                name: "θ",
                value: theta,
            });
        }
        Ok(WatermarkPolicy {
            high,
            low,
            theta,
            engaged: false,
        })
    }

    /// Whether reservation mode is currently engaged.
    #[must_use]
    pub fn is_engaged(&self) -> bool {
        self.engaged
    }
}

impl EnginePolicy for WatermarkPolicy {
    fn name(&self) -> &'static str {
        "watermark"
    }

    fn decide(&mut self, oracle: &Instance, u: f64, task: &Task) -> Result<bool, SchedError> {
        let s_max = oracle.processor().max_speed();
        let fill = u / s_max;
        if fill >= self.high {
            self.engaged = true;
        } else if fill <= self.low {
            self.engaged = false;
        }
        if !oracle.processor().is_feasible(u + task.utilization()) {
            return Ok(false);
        }
        let hedge = if self.engaged { self.theta } else { 1.0 };
        Ok(task.penalty() >= hedge * oracle.marginal_energy(u, task.utilization())?)
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(if self.engaged { "engaged" } else { "idle" }.to_string())
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        match state {
            "engaged" => self.engaged = true,
            "idle" => self.engaged = false,
            other => return Err(format!("unknown watermark state {other:?}")),
        }
        Ok(())
    }
}

/// The outcome recorded for one task at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Admitted onto the given power domain.
    Accepted {
        /// Domain index.
        domain: usize,
    },
    /// Refused at arrival.
    Rejected,
    /// Previously admitted, evicted by a re-solve on the given domain.
    Shed {
        /// Domain index.
        domain: usize,
    },
    /// Previously shed, returned to service because shedding stopped
    /// being profitable at the current background load.
    Readmitted {
        /// Domain index.
        domain: usize,
    },
}

/// One entry of the engine's decision log.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Engine clock when the decision was made.
    pub at: f64,
    /// The task decided on.
    pub task: TaskId,
    /// The outcome.
    pub verdict: Verdict,
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.verdict {
            Verdict::Accepted { domain } => {
                write!(f, "t={:.6} {} accepted@{domain}", self.at, self.task)
            }
            Verdict::Rejected => write!(f, "t={:.6} {} rejected", self.at, self.task),
            Verdict::Shed { domain } => write!(f, "t={:.6} {} shed@{domain}", self.at, self.task),
            Verdict::Readmitted { domain } => {
                write!(f, "t={:.6} {} readmitted@{domain}", self.at, self.task)
            }
        }
    }
}

/// One power domain's ledger.
#[derive(Debug)]
struct Domain {
    cpu: Processor,
    /// One-task instance (the anchor) pinning the hyper-period to the
    /// billing horizon: the pricing oracle for this domain.
    oracle: Instance,
    /// Served tasks, in admission order.
    active: Vec<Task>,
    /// Shed-but-present tasks, in shed order: they accrue penalty, hold
    /// their admission reservation, and may be readmitted.
    reserved: Vec<Task>,
    /// Cached `Σ uᵢ` over `active` (recomputed on every mutation).
    committed: f64,
    /// Cached re-solve instance over `active ∪ reserved ∪ {anchor}`,
    /// rebuilt only when that union changes — guard readmissions and
    /// re-solve sheds move tasks *between* the two ledgers without
    /// touching the union, so the instance (and its density order, prefix
    /// sums, and pricing memo) is reused across ticks.
    resolve_cache: Option<Instance>,
    /// The task union changed since `resolve_cache` was built.
    union_dirty: bool,
    /// An arrive/depart/shed/readmit occurred since the last re-solve
    /// concluded for this domain. While false, a re-solve is guaranteed to
    /// reach the same conclusion it just reached ("keep the current
    /// serving choice"), so the engine skips it entirely.
    needs_resolve: bool,
    /// The domain was exported to another shard (live resharding): its
    /// ledgers are empty, it accepts no further work, and it contributes
    /// nothing to the energy integral (the importing shard owns it now).
    fenced: bool,
    /// The migration payload this domain was exported as, kept so a
    /// retried export (router crash between export and import) returns
    /// byte-identical bytes instead of re-encoding an empty domain.
    export_payload: Option<String>,
}

impl Domain {
    fn recompute_committed(&mut self) {
        // `Sum<f64>`'s identity is -0.0; `+ 0.0` keeps the empty ledger
        // printing as plain 0 on the wire.
        self.committed = self.active.iter().map(Task::utilization).sum::<f64>() + 0.0;
    }

    /// The admission-pricing utilization: served plus reserved. Identical
    /// to what the never-shedding myopic engine would have committed.
    fn priced(&self) -> f64 {
        self.committed + self.reserved.iter().map(Task::utilization).sum::<f64>()
    }

    /// Marks a change to the `active ∪ reserved` union (arrival accepted,
    /// task departed): the cached instance is stale and the next re-solve
    /// must run.
    fn mark_union_changed(&mut self) {
        self.union_dirty = true;
        self.needs_resolve = true;
    }

    /// Marks a change to the served/reserved *split* only (guard
    /// readmission): the cached instance stays valid but the next
    /// re-solve must run.
    fn mark_split_changed(&mut self) {
        self.needs_resolve = true;
    }
}

/// The event-driven admission-control engine. See the [module
/// docs](self) for the model and the determinism contract.
pub struct AdmissionEngine {
    domains: Vec<Domain>,
    policy: Box<dyn EnginePolicy>,
    config: EngineConfig,
    clock: f64,
    /// Present-but-unserved tasks (rejected or shed, not yet departed),
    /// accruing penalty at `vᵢ/H`: `(id, penalty, domain pin)`. The pin
    /// scopes the serve-all guard when the task departs.
    unserved: Vec<(TaskId, f64, Option<usize>)>,
    decisions: Vec<Decision>,
    metrics: Metrics,
    ticks_since_resolve: u64,
    /// Identifiers of tasks that have departed, kept so stale duplicates
    /// (client retries, replayed streams) are rejected with a typed error
    /// instead of being mistaken for fresh arrivals or unknown tasks.
    departed: BTreeSet<TaskId>,
    /// The write-ahead journal, when durability is enabled.
    journal: Option<Journal>,
    /// Replication fencing epoch: bumped when this engine begins (or a
    /// promoted follower resumes) serving as primary.
    epoch: u64,
    /// Migration idempotency keys: every domain import is recorded under
    /// the key the router supplied, so a retried import (after a crash or
    /// timeout on the first attempt) lands on the same local index
    /// instead of duplicating the domain.
    imported: BTreeMap<String, usize>,
}

impl AdmissionEngine {
    /// Creates an engine over one processor per power domain.
    ///
    /// # Errors
    ///
    /// * [`AdmitError::NoDomains`] for an empty domain list.
    /// * Oracle-construction errors propagate.
    pub fn new(
        cpus: Vec<Processor>,
        policy: Box<dyn EnginePolicy>,
        config: EngineConfig,
    ) -> Result<Self, AdmitError> {
        if cpus.is_empty() {
            return Err(AdmitError::NoDomains);
        }
        Self::with_domains(cpus, policy, config)
    }

    /// Like [`AdmissionEngine::new`] but accepts an empty domain list: the
    /// shape of a freshly added shard in a live-resharding cluster, which
    /// starts with no domains and grows them via
    /// [`AdmissionEngine::import_domain`]. Until a domain is imported,
    /// every pinned arrival is an [`AdmitError::InvalidDomain`] and every
    /// unpinned one is rejected.
    ///
    /// # Errors
    ///
    /// Oracle-construction errors propagate.
    pub fn with_domains(
        cpus: Vec<Processor>,
        policy: Box<dyn EnginePolicy>,
        config: EngineConfig,
    ) -> Result<Self, AdmitError> {
        let mut domains = Vec::with_capacity(cpus.len());
        for cpu in cpus {
            let anchor = Task::new(RESERVED_ANCHOR_ID, 0.0, config.horizon)?;
            let oracle = Instance::new(TaskSet::try_from_tasks([anchor])?, cpu.clone())?;
            domains.push(Domain {
                cpu,
                oracle,
                active: Vec::new(),
                reserved: Vec::new(),
                committed: 0.0,
                resolve_cache: None,
                union_dirty: true,
                needs_resolve: false,
                fenced: false,
                export_payload: None,
            });
        }
        Ok(AdmissionEngine {
            domains,
            policy,
            config,
            clock: 0.0,
            unserved: Vec::new(),
            decisions: Vec::new(),
            metrics: Metrics::default(),
            ticks_since_resolve: 0,
            departed: BTreeSet::new(),
            journal: None,
            epoch: 1,
            imported: BTreeMap::new(),
        })
    }

    /// The engine clock (timestamp of the last applied event).
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Number of power domains.
    #[must_use]
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Committed utilization of domain `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn committed(&self, d: usize) -> f64 {
        self.domains[d].committed
    }

    /// Number of active (admitted, not yet departed or shed) tasks on
    /// domain `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn active_len(&self, d: usize) -> usize {
        self.domains[d].active.len()
    }

    /// Number of shed-but-present (reserved) tasks on domain `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn reserved_len(&self, d: usize) -> usize {
        self.domains[d].reserved.len()
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable registry access for the replication layer (follower-side
    /// counters are advanced outside the apply path).
    pub(crate) fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The full decision log, in decision order.
    #[must_use]
    pub fn decision_log(&self) -> &[Decision] {
        &self.decisions
    }

    /// The decision log as one line per decision — the artifact the
    /// determinism suite compares bit-for-bit across thread counts.
    #[must_use]
    pub fn format_decision_log(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// The configured policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Advances the engine clock to `at`, integrating energy (per domain,
    /// at the committed utilization's optimal rate) and unserved-penalty
    /// accrual (`vᵢ/H` per present unserved task). No decisions are made.
    ///
    /// # Errors
    ///
    /// * [`AdmitError::TimeRegression`] if `at` is behind the clock.
    /// * Oracle errors propagate.
    pub fn advance_to(&mut self, at: f64) -> Result<(), AdmitError> {
        if !at.is_finite() || at < self.clock {
            return Err(AdmitError::TimeRegression {
                at,
                clock: self.clock,
            });
        }
        let dt = at - self.clock;
        if dt > 0.0 {
            let mut rate = 0.0;
            // Fenced (exported) domains contribute nothing: the importing
            // shard integrates their energy now, and counting an
            // always-on processor's idle power twice would break the
            // cluster-vs-single-engine cost identity.
            for d in self.domains.iter().filter(|d| !d.fenced) {
                rate += d.cpu.energy_rate(d.committed).map_err(SchedError::Power)?;
            }
            self.metrics.energy += rate * dt;
            let penalty_rate: f64 =
                self.unserved.iter().map(|(_, v, _)| v).sum::<f64>() / self.config.horizon as f64;
            self.metrics.penalty_accrued += penalty_rate * dt;
            self.clock = at;
        }
        Ok(())
    }

    /// Applies one event, returning the decisions it produced (the
    /// admission verdict for an arrival; any sheds for a tick or
    /// departure that triggered a re-solve). Equivalent to
    /// [`AdmissionEngine::apply_opts`] on the normal (non-degraded) path.
    ///
    /// # Errors
    ///
    /// See [`AdmissionEngine::apply_opts`].
    pub fn apply(&mut self, event: &EventRecord) -> Result<Vec<Decision>, AdmitError> {
        self.apply_opts(event, false)
    }

    /// Applies one event, optionally on the degraded myopic **fast path**
    /// (`fast = true`): admission decisions are made exactly as usual —
    /// pricing already uses the reserved utilization, so the accept/reject
    /// trajectory is myopic-identical by construction — but tick and
    /// regret re-solve passes are skipped, bounding per-event work under
    /// overload. The serving layer engages the fast path for backpressure;
    /// [`Metrics::backpressure_sheds`] counts these events.
    ///
    /// Events are **validated before any state is mutated**: an event that
    /// returns an error has not advanced the clock, touched a ledger, or
    /// been journaled, so an erroring client request is invisible to
    /// recovery replay and safe to retry.
    ///
    /// When a journal is attached, the event and its decision outcomes are
    /// framed and flushed (and periodically a snapshot embedded) before
    /// this method returns — i.e. before any caller can acknowledge the
    /// decision.
    ///
    /// # Errors
    ///
    /// * [`AdmitError::TimeRegression`] for out-of-order timestamps.
    /// * [`AdmitError::DuplicateTask`] / [`AdmitError::ReservedId`] /
    ///   [`AdmitError::AlreadyDeparted`] for invalid arrivals,
    ///   [`AdmitError::UnknownTask`] / [`AdmitError::AlreadyDeparted`] for
    ///   departures of absent tasks.
    /// * Oracle and solver errors propagate (internal failures, unlike the
    ///   validation errors above — they may leave the clock advanced).
    /// * [`AdmitError::Journal`] when the write-ahead journal cannot be
    ///   written.
    pub fn apply_opts(
        &mut self,
        event: &EventRecord,
        fast: bool,
    ) -> Result<Vec<Decision>, AdmitError> {
        let handling_started = Instant::now();
        self.validate(event)?;
        if fast {
            self.metrics.backpressure_sheds += 1;
        }
        self.advance_to(event.at)?;
        let first_new = self.decisions.len();
        let out = match &event.kind {
            EventKind::Arrive(task) => {
                let started = Instant::now();
                let out = self.arrive(*task);
                self.metrics.latency.record(started.elapsed());
                out
            }
            EventKind::Depart(id) => self.depart(*id, fast),
            EventKind::Tick => self.tick(fast),
        }?;
        // Counted before journaling so an embedded snapshot's `events`
        // includes the event that triggered it — recovery trusts that
        // counter to tell clients how much of their stream survived.
        self.metrics.events += 1;
        self.journal_apply(event, fast, first_new)?;
        self.metrics.handling += handling_started.elapsed();
        Ok(out)
    }

    /// Rejects invalid events *before* any state is touched, so an
    /// erroring event is a no-op (and is never journaled).
    fn validate(&self, event: &EventRecord) -> Result<(), AdmitError> {
        if !event.at.is_finite() || event.at < self.clock {
            return Err(AdmitError::TimeRegression {
                at: event.at,
                clock: self.clock,
            });
        }
        match &event.kind {
            EventKind::Arrive(task) => {
                let id = task.id();
                if id.index() == RESERVED_ANCHOR_ID {
                    return Err(AdmitError::ReservedId(id));
                }
                if let Some(domain) = task.domain() {
                    if domain >= self.domains.len() {
                        return Err(AdmitError::InvalidDomain {
                            task: id,
                            domain,
                            domains: self.domains.len(),
                        });
                    }
                    if self.domains[domain].fenced {
                        return Err(AdmitError::DomainFenced { task: id, domain });
                    }
                }
                if self.departed.contains(&id) {
                    return Err(AdmitError::AlreadyDeparted(id));
                }
                if self.is_present(id) {
                    return Err(AdmitError::DuplicateTask(id));
                }
            }
            EventKind::Depart(id) => {
                if !self.is_present(*id) {
                    return Err(if self.departed.contains(id) {
                        AdmitError::AlreadyDeparted(*id)
                    } else {
                        AdmitError::UnknownTask(*id)
                    });
                }
            }
            EventKind::Tick => {}
        }
        Ok(())
    }

    /// Frames the just-applied event and its outcomes into the journal,
    /// embedding a snapshot when the cadence is due, and flushes — all
    /// before the apply returns. No-op without an attached journal.
    fn journal_apply(
        &mut self,
        event: &EventRecord,
        fast: bool,
        first_new: usize,
    ) -> Result<(), AdmitError> {
        let Some(mut j) = self.journal.take() else {
            return Ok(());
        };
        j.append_event(event, fast);
        for d in &self.decisions[first_new..] {
            j.append_outcome(d);
        }
        let mut res = Ok(());
        if j.want_snapshot() {
            // Count the snapshot (and its own record) *before* encoding so
            // the snapshot's counters include it.
            self.metrics.snapshots_taken += 1;
            self.metrics.journal_records = j.records() + 1;
            let snapshot = self.encode_snapshot();
            res = j.append_snapshot(&snapshot);
        }
        let res = res.and_then(|()| j.flush());
        self.metrics.journal_records = j.records();
        self.journal = Some(j);
        res.map_err(|e| AdmitError::Journal(JournalError::Io(e)))
    }

    fn is_present(&self, id: TaskId) -> bool {
        self.unserved.iter().any(|(u, ..)| *u == id)
            || self
                .domains
                .iter()
                .any(|d| d.active.iter().any(|t| t.id() == id))
    }

    fn arrive(&mut self, task: Task) -> Result<Vec<Decision>, AdmitError> {
        self.metrics.arrivals += 1;
        // Deterministic placement. Unpinned tasks go to the domain among
        // all that can still fit them where they are cheapest (smallest
        // marginal energy); ties break towards the lowest index. With
        // identical convex processors this is least-loaded-first. A task
        // pinned to a domain (`Task::with_domain`) is only considered
        // there — the partitioned-cluster mode, where placement is the
        // router's job and each shard must reach the same verdict a
        // single engine serving all domains would. Pricing and
        // feasibility use the *reserved* utilization so the accept/reject
        // trajectory is independent of shedding (see the module docs).
        let mut best: Option<(usize, f64)> = None;
        match task.domain() {
            Some(i) => {
                let d = &self.domains[i];
                if d.cpu.is_feasible(d.priced() + task.utilization()) {
                    best = Some((i, 0.0));
                }
            }
            None => {
                for (i, d) in self.domains.iter().enumerate() {
                    if d.fenced {
                        continue;
                    }
                    if d.cpu.is_feasible(d.priced() + task.utilization()) {
                        let marginal = d
                            .oracle
                            .marginal_energy(d.priced(), task.utilization())
                            .map_err(AdmitError::Sched)?;
                        if best.is_none_or(|(_, m)| marginal < m) {
                            best = Some((i, marginal));
                        }
                    }
                }
            }
        }
        let verdict = match best {
            None => Verdict::Rejected,
            Some((i, _)) => {
                let d = &mut self.domains[i];
                let priced = d.priced();
                if self.policy.decide(&d.oracle, priced, &task)? {
                    d.active.push(task);
                    d.recompute_committed();
                    d.mark_union_changed();
                    Verdict::Accepted { domain: i }
                } else {
                    Verdict::Rejected
                }
            }
        };
        match verdict {
            Verdict::Accepted { .. } => self.metrics.admitted += 1,
            _ => {
                self.metrics.rejected += 1;
                self.metrics.penalty_charged += task.penalty();
                self.unserved
                    .push((task.id(), task.penalty(), task.domain()));
            }
        }
        let decision = Decision {
            at: self.clock,
            task: task.id(),
            verdict,
        };
        self.decisions.push(decision.clone());
        let mut out = vec![decision];
        out.extend(self.guard(task.domain())?);
        Ok(out)
    }

    /// The serve-all guard: per domain, if the reserved set has stopped
    /// being collectively profitable to keep shed at the current served
    /// load — `H·(rate(u_served + u_reserved) − rate(u_served)) ≤ Σ vᵢ` —
    /// readmit every reserved task. Run after every arrival and
    /// departure, this pins the engine's instantaneous cost rate at or
    /// below the never-shedding myopic engine's (the dominance theorem in
    /// the module docs); the next re-solve may shed any still-profitable
    /// subset again.
    ///
    /// `scope` is the domain the triggering event was pinned to, if any:
    /// a pinned arrival or departure only touches that domain's ledger,
    /// so only that domain's guard condition can have changed — and
    /// restricting the check keeps a sharded cluster's guard decisions
    /// identical to the single engine's (a shard never sees events for
    /// domains it does not own). Unpinned events check every domain, the
    /// original behavior.
    fn guard(&mut self, scope: Option<usize>) -> Result<Vec<Decision>, AdmitError> {
        let mut out = Vec::new();
        let range = match scope {
            Some(i) => i..i + 1,
            None => 0..self.domains.len(),
        };
        for i in range {
            let d = &self.domains[i];
            if d.reserved.is_empty() {
                continue;
            }
            let u_reserved: f64 = d.reserved.iter().map(Task::utilization).sum();
            let saving = d
                .oracle
                .marginal_energy(d.committed, u_reserved)
                .map_err(AdmitError::Sched)?;
            let charged: f64 = d.reserved.iter().map(Task::penalty).sum();
            if saving > charged + RESOLVE_EPSILON {
                continue; // shedding still pays for itself
            }
            let d = &mut self.domains[i];
            for task in std::mem::take(&mut d.reserved) {
                if let Some(pos) = self.unserved.iter().position(|(u, ..)| *u == task.id()) {
                    self.unserved.remove(pos);
                }
                d.active.push(task);
                self.metrics.readmitted += 1;
                let decision = Decision {
                    at: self.clock,
                    task: task.id(),
                    verdict: Verdict::Readmitted { domain: i },
                };
                self.decisions.push(decision.clone());
                out.push(decision);
            }
            d.recompute_committed();
            // Readmission shuffles the served/reserved split, not the
            // union: the cached re-solve instance stays valid.
            d.mark_split_changed();
        }
        Ok(out)
    }

    fn depart(&mut self, id: TaskId, fast: bool) -> Result<Vec<Decision>, AdmitError> {
        if let Some(pos) = self.unserved.iter().position(|(u, ..)| *u == id) {
            let (_, _, pin) = self.unserved.remove(pos);
            // A shed task departing also releases its reservation.
            for d in &mut self.domains {
                if let Some(pos) = d.reserved.iter().position(|t| t.id() == id) {
                    d.reserved.remove(pos);
                    d.mark_union_changed();
                }
            }
            self.metrics.departures += 1;
            self.departed.insert(id);
            return self.guard(pin);
        }
        for i in 0..self.domains.len() {
            let d = &mut self.domains[i];
            if let Some(pos) = d.active.iter().position(|t| t.id() == id) {
                let pin = d.active[pos].domain();
                d.active.remove(pos);
                d.recompute_committed();
                d.mark_union_changed();
                self.metrics.departures += 1;
                self.departed.insert(id);
                // Departures shift the load downward: first re-check the
                // reserved sets, then revisit commitments when a regret
                // trigger is configured (skipped on the fast path — the
                // guard is cheap arithmetic, the re-solve is not).
                let mut out = self.guard(pin)?;
                if !fast {
                    if let Some(threshold) = self.config.regret_threshold {
                        if self.regret()? > threshold {
                            out.extend(self.resolve_now()?);
                        }
                    }
                }
                return Ok(out);
            }
        }
        // Unreachable: `validate` established presence. Kept as defense in
        // depth for direct callers of the internals.
        Err(AdmitError::UnknownTask(id))
    }

    fn tick(&mut self, fast: bool) -> Result<Vec<Decision>, AdmitError> {
        self.metrics.ticks += 1;
        self.ticks_since_resolve += 1;
        if fast {
            // Degraded path: the re-solve opportunity is forfeited, not
            // deferred — `ticks_since_resolve` keeps accumulating, so the
            // next normal tick resolves if the cadence is due.
            return Ok(Vec::new());
        }
        let periodic = self
            .config
            .resolve_every
            .is_some_and(|k| self.ticks_since_resolve >= k);
        let regretful = match self.config.regret_threshold {
            Some(threshold) => self.regret()? > threshold,
            None => false,
        };
        if periodic || regretful {
            self.resolve_now()
        } else {
            Ok(Vec::new())
        }
    }

    /// Estimated profit of shedding, summed over all active tasks whose
    /// removal saves more energy (per horizon) than it charges in penalty:
    /// `Σ max(0, ΔE(uᵢ) − vᵢ)`. Zero when every commitment is still
    /// profitable. This is the trigger quantity for
    /// [`EngineConfig::regret_threshold`].
    ///
    /// # Errors
    ///
    /// Oracle errors propagate.
    pub fn regret(&self) -> Result<f64, AdmitError> {
        let mut total = 0.0;
        for d in &self.domains {
            for t in &d.active {
                let saving = d
                    .oracle
                    .marginal_energy(d.committed - t.utilization(), t.utilization())
                    .map_err(AdmitError::Sched)?;
                total += (saving - t.penalty()).max(0.0);
            }
        }
        Ok(total)
    }

    /// Runs a budgeted offline re-solve over each domain's served *and*
    /// reserved tasks, shedding the tasks the solver drops (charging
    /// their rejection penalties) and readmitting reserved tasks it picks
    /// back up. Returns the shed/readmit decisions.
    ///
    /// The solver is the *sequential* anytime branch & bound under the
    /// configured node budget (bit-deterministic regardless of
    /// `DVS_THREADS`); instances above its size limit fall back to the
    /// deterministic marginal-greedy heuristic. A domain is only touched
    /// when the re-solve strictly improves on its current serving choice.
    ///
    /// # Errors
    ///
    /// Solver errors (other than the size fallback) propagate.
    pub fn resolve_now(&mut self) -> Result<Vec<Decision>, AdmitError> {
        self.ticks_since_resolve = 0;
        let mut out = Vec::new();
        for i in 0..self.domains.len() {
            let (to_shed, to_readmit) = {
                {
                    let d = &mut self.domains[i];
                    if d.active.is_empty() && d.reserved.is_empty() {
                        continue;
                    }
                    // Short-circuit: nothing arrived, departed, shed, or
                    // was readmitted since the last re-solve concluded, so
                    // running it again is guaranteed to reach the same
                    // "keep the current serving choice" conclusion.
                    if !d.needs_resolve {
                        self.metrics.resolves_skipped += 1;
                        continue;
                    }
                    if d.union_dirty || d.resolve_cache.is_none() {
                        let anchor = Task::new(RESERVED_ANCHOR_ID, 0.0, self.config.horizon)?;
                        let mut tasks = d.active.clone();
                        tasks.extend(d.reserved.iter().copied());
                        tasks.push(anchor);
                        d.resolve_cache = Some(Instance::new(
                            TaskSet::try_from_tasks(tasks)?,
                            d.cpu.clone(),
                        )?);
                        d.union_dirty = false;
                    }
                }
                let d = &self.domains[i];
                let instance = d.resolve_cache.as_ref().expect("rebuilt above");
                let mut served_ids: Vec<TaskId> = d.active.iter().map(Task::id).collect();
                served_ids.push(TaskId::new(RESERVED_ANCHOR_ID));
                let current =
                    Solution::for_accepted(instance, "engine-active", served_ids.clone())?;
                let budget = SolveBudget::nodes(self.config.resolve_budget);
                let solved = if self.config.warm_start {
                    BranchBound::default().solve_within_seeded(instance, &budget, &served_ids)
                } else {
                    BranchBound::default().solve_within(instance, &budget)
                };
                let (resolved, degraded, nodes) = match solved {
                    Ok(any) => (
                        any.solution,
                        any.quality == SolveQuality::Degraded,
                        any.nodes_used,
                    ),
                    Err(SchedError::TooLarge { .. }) => (MarginalGreedy.solve(instance)?, true, 0),
                    Err(e) => return Err(AdmitError::Sched(e)),
                };
                self.metrics.resolves += 1;
                self.metrics.resolves_degraded += u64::from(degraded);
                self.metrics.resolve_nodes += nodes;
                if resolved.cost() + RESOLVE_EPSILON >= current.cost() {
                    // Keeping the current serving choice is best; until the
                    // ledger changes, re-solving again cannot conclude
                    // otherwise.
                    self.domains[i].needs_resolve = false;
                    continue;
                }
                let diff = current.diff(&resolved);
                let shed: Vec<TaskId> = diff
                    .removed
                    .into_iter()
                    .filter(|id| id.index() != RESERVED_ANCHOR_ID)
                    .collect();
                (shed, diff.added)
            };
            if to_shed.is_empty() && to_readmit.is_empty() {
                self.domains[i].needs_resolve = false;
                continue;
            }
            let d = &mut self.domains[i];
            for id in &to_readmit {
                if let Some(pos) = d.reserved.iter().position(|t| t.id() == *id) {
                    let task = d.reserved.remove(pos);
                    if let Some(upos) = self.unserved.iter().position(|(u, ..)| *u == *id) {
                        self.unserved.remove(upos);
                    }
                    d.active.push(task);
                    self.metrics.readmitted += 1;
                    let decision = Decision {
                        at: self.clock,
                        task: *id,
                        verdict: Verdict::Readmitted { domain: i },
                    };
                    self.decisions.push(decision.clone());
                    out.push(decision);
                }
            }
            for id in &to_shed {
                if let Some(pos) = d.active.iter().position(|t| t.id() == *id) {
                    let task = d.active.remove(pos);
                    self.unserved
                        .push((task.id(), task.penalty(), task.domain()));
                    d.reserved.push(task);
                    self.metrics.shed += 1;
                    self.metrics.penalty_charged += task.penalty();
                    let decision = Decision {
                        at: self.clock,
                        task: *id,
                        verdict: Verdict::Shed { domain: i },
                    };
                    self.decisions.push(decision.clone());
                    out.push(decision);
                }
            }
            d.recompute_committed();
            // The sheds/readmits applied above ARE the re-solve's
            // conclusion: re-solving the (unchanged) union again would
            // find the serving choice it just installed.
            d.needs_resolve = false;
        }
        Ok(out)
    }

    /// Attaches a write-ahead journal: from now on every applied event is
    /// framed and flushed before [`AdmissionEngine::apply_opts`] returns.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.metrics.journal_records = journal.records();
        self.journal = Some(journal);
    }

    /// The attached journal, if any.
    #[must_use]
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Number of distinct tasks that have departed so far (the stale-id
    /// rejection set).
    #[must_use]
    pub fn departed_count(&self) -> usize {
        self.departed.len()
    }

    /// The current fencing epoch (starts at 1; see
    /// [`AdmissionEngine::begin_epoch`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Begins serving under a strictly greater fencing epoch: the
    /// promotion step of replicated failover. When a journal is attached
    /// the epoch-begin record is framed, flushed, and fsynced before this
    /// returns, so the fence survives a crash of the new primary.
    ///
    /// # Errors
    ///
    /// * [`AdmitError::StaleEpoch`] if `epoch` does not exceed the
    ///   current one (a deposed primary trying to resume its old term).
    /// * [`AdmitError::Journal`] on I/O failure.
    pub fn begin_epoch(&mut self, epoch: u64) -> Result<(), AdmitError> {
        if epoch <= self.epoch {
            return Err(AdmitError::StaleEpoch {
                epoch,
                current: self.epoch,
            });
        }
        self.epoch = epoch;
        self.metrics.epoch_bumps += 1;
        if let Some(j) = self.journal.as_mut() {
            j.append_epoch(epoch);
            j.sync()
                .map_err(|e| AdmitError::Journal(JournalError::Io(e)))?;
            self.metrics.journal_records = j.records();
        }
        Ok(())
    }

    /// Stamps the current epoch into the journal (an epoch-begin record
    /// *without* a bump) so every journal self-describes the term it is
    /// written under, even before any failover. No-op without an attached
    /// journal.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Journal`] on I/O failure.
    pub fn stamp_epoch(&mut self) -> Result<(), AdmitError> {
        if let Some(j) = self.journal.as_mut() {
            j.append_epoch(self.epoch);
            j.flush()
                .map_err(|e| AdmitError::Journal(JournalError::Io(e)))?;
            self.metrics.journal_records = j.records();
        }
        Ok(())
    }

    /// Adopts an epoch observed in a replicated stream (a follower
    /// mirroring its primary's epoch-begin records). Equal epochs are
    /// no-ops; greater ones advance the fence without journaling (the
    /// mirror already holds the record's bytes).
    ///
    /// # Errors
    ///
    /// [`AdmitError::StaleEpoch`] when `epoch` is behind the fence — the
    /// deposed-primary late write the follower must reject.
    pub fn observe_epoch(&mut self, epoch: u64) -> Result<(), AdmitError> {
        if epoch < self.epoch {
            return Err(AdmitError::StaleEpoch {
                epoch,
                current: self.epoch,
            });
        }
        if epoch > self.epoch {
            self.epoch = epoch;
            self.metrics.epoch_bumps += 1;
        }
        Ok(())
    }

    /// Writes a snapshot into the journal immediately (flush + fsync),
    /// off the periodic cadence — the graceful-drain path. No-op without
    /// an attached journal.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Journal`] on I/O failure.
    pub fn snapshot_now(&mut self) -> Result<(), AdmitError> {
        let Some(mut j) = self.journal.take() else {
            return Ok(());
        };
        self.metrics.snapshots_taken += 1;
        self.metrics.journal_records = j.records() + 1;
        let snapshot = self.encode_snapshot();
        let res = j.append_snapshot(&snapshot);
        self.metrics.journal_records = j.records();
        self.journal = Some(j);
        res.map_err(|e| AdmitError::Journal(JournalError::Io(e)))
    }

    /// Flushes and fsyncs the journal without snapshotting. No-op without
    /// an attached journal.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Journal`] on I/O failure.
    pub fn sync_journal(&mut self) -> Result<(), AdmitError> {
        if let Some(j) = self.journal.as_mut() {
            j.sync()
                .map_err(|e| AdmitError::Journal(JournalError::Io(e)))?;
        }
        Ok(())
    }

    /// Whether domain `d` has been exported to another shard (live
    /// resharding) and is fenced against further work.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn domain_is_fenced(&self, d: usize) -> bool {
        self.domains[d].fenced
    }

    /// Number of fenced (exported) domains.
    #[must_use]
    pub fn fenced_count(&self) -> usize {
        self.domains.iter().filter(|d| d.fenced).count()
    }

    /// The engine's domain layout, one entry per local domain in index
    /// order: whether the slot is fenced (exported away), and the
    /// migration key it was imported under, when it arrived via
    /// [`AdmissionEngine::import_domain`] rather than at construction.
    /// A router reconciles its global↔local slot tables against this on
    /// startup — local indices are stable for the engine's lifetime
    /// (fencing keeps the slot, imports append), so a restarted router
    /// must adopt the layout the engine actually has, not the dense
    /// assignment a fresh fleet would have.
    #[must_use]
    pub fn domain_layout(&self) -> Vec<(bool, Option<&str>)> {
        let mut keys: Vec<Option<&str>> = vec![None; self.domains.len()];
        for (key, &local) in &self.imported {
            if let Some(slot) = keys.get_mut(local) {
                *slot = Some(key.as_str());
            }
        }
        self.domains
            .iter()
            .zip(keys)
            .map(|(d, key)| (d.fenced, key))
            .collect()
    }

    /// Every present (arrived, not yet departed) task, with the local
    /// domain it lives on: served and shed-but-reserved tasks report the
    /// domain holding their reservation, standing rejected tasks report
    /// their arrival pin (`None` when the arrival was unpinned). A
    /// restarted router rebuilds its task-presence table from this — the
    /// id→domain map that routes departures is router-side state and
    /// would otherwise be lost with the process.
    #[must_use]
    pub fn present_tasks(&self) -> Vec<(TaskId, Option<usize>)> {
        let mut out = Vec::new();
        for (d, dom) in self.domains.iter().enumerate() {
            for t in dom.active.iter().chain(dom.reserved.iter()) {
                out.push((t.id(), Some(d)));
            }
        }
        for &(id, _, pin) in &self.unserved {
            out.push((id, pin));
        }
        out
    }

    /// Identifiers of every departed task, in id order. Restores the
    /// burned-id set of a restarted router so stale duplicates are
    /// refused with the same typed error a continuously-running router
    /// would give.
    pub fn departed_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.departed.iter().copied()
    }

    /// Exports domain `local` for migration to another shard: encodes its
    /// complete deterministic state (processor spec, ledgers, pinned
    /// unserved tasks, clock, re-solve cadence) as a single-line payload,
    /// clears the ledgers, fences the domain against further work, and
    /// moves the domain's shares of the arrival/admission/rejection/shed
    /// counters out of this engine's balance (the importer adds them
    /// back, so cluster-wide sums are invariant). When a journal is
    /// attached the export record is framed and **fsynced** before the
    /// payload is returned — once these bytes leave the process, a
    /// recovered source must replay the fence or the domain would live on
    /// two shards at once.
    ///
    /// Re-exporting an already-fenced domain returns the stored payload
    /// byte-identically (the idempotent-retry path after a router crash
    /// between export and import).
    ///
    /// # Errors
    ///
    /// * [`AdmitError::Migration`] for an out-of-range index.
    /// * [`AdmitError::Journal`] on I/O failure.
    pub fn export_domain(&mut self, local: usize) -> Result<String, AdmitError> {
        let n = self.domains.len();
        let Some(d) = self.domains.get(local) else {
            return Err(AdmitError::Migration {
                reason: format!("export of domain {local}, engine has {n}"),
            });
        };
        if d.fenced {
            return d
                .export_payload
                .clone()
                .ok_or_else(|| AdmitError::Migration {
                    reason: format!("domain {local} is fenced but holds no export payload"),
                });
        }
        let payload = self.encode_export(local);
        let d = &self.domains[local];
        let n_active = d.active.len() as u64;
        let n_reserved = d.reserved.len() as u64;
        let reserved_ids: BTreeSet<TaskId> = d.reserved.iter().map(Task::id).collect();
        let n_rejected = self
            .unserved
            .iter()
            .filter(|(id, _, pin)| *pin == Some(local) && !reserved_ids.contains(id))
            .count() as u64;
        // Move the domain's counter shares out: one arrival per present
        // task, one admission per served-or-reserved task, one standing
        // shed unit per reserved task, one rejection per standing-rejected
        // task. Per-shard balance (admitted + rejected == arrivals) and
        // non-negative standing shed both survive, and the importer's
        // additions keep cluster-wide sums byte-identical to an unsharded
        // engine's.
        let m = &mut self.metrics;
        m.arrivals -= n_active + n_reserved + n_rejected;
        m.admitted -= n_active + n_reserved;
        m.shed -= n_reserved;
        m.rejected -= n_rejected;
        let d = &mut self.domains[local];
        d.active.clear();
        d.reserved.clear();
        d.recompute_committed();
        d.resolve_cache = None;
        d.union_dirty = true;
        d.needs_resolve = false;
        d.fenced = true;
        d.export_payload = Some(payload.clone());
        self.unserved.retain(|(_, _, pin)| *pin != Some(local));
        if let Some(j) = self.journal.as_mut() {
            j.append_export(local, &payload);
            j.sync()
                .map_err(|e| AdmitError::Journal(JournalError::Io(e)))?;
            self.metrics.journal_records = j.records();
        }
        Ok(payload)
    }

    /// Imports a domain exported by [`AdmissionEngine::export_domain`] on
    /// another shard, appending it as a new local domain and returning its
    /// local index. `key` is the migration idempotency key (no
    /// whitespace): importing the same key again returns the same local
    /// index without touching any state, so the router can safely retry a
    /// transfer whose acknowledgement was lost. The engine clock and
    /// re-solve cadence adopt the exported values when they are ahead
    /// (a freshly spawned shard starts at zero). When a journal is
    /// attached the import record is framed and **fsynced** before this
    /// returns — the router flips routing on this acknowledgement, so the
    /// imported state must survive a crash of the target.
    ///
    /// # Errors
    ///
    /// * [`AdmitError::Migration`] for a malformed key or payload.
    /// * [`AdmitError::Journal`] on I/O failure.
    pub fn import_domain(&mut self, key: &str, payload: &str) -> Result<usize, AdmitError> {
        if key.is_empty() || key.contains(char::is_whitespace) {
            return Err(AdmitError::Migration {
                reason: format!("import key {key:?} must be non-empty, whitespace-free"),
            });
        }
        if let Some(&local) = self.imported.get(key) {
            return Ok(local);
        }
        let exported = Self::decode_export(payload)?;
        let local = self.domains.len();
        let anchor = Task::new(RESERVED_ANCHOR_ID, 0.0, self.config.horizon)?;
        let oracle = Instance::new(TaskSet::try_from_tasks([anchor])?, exported.cpu.clone())?;
        let active: Vec<Task> = exported
            .active
            .iter()
            .map(|t| t.with_domain(local))
            .collect();
        let reserved: Vec<Task> = exported
            .reserved
            .iter()
            .map(|t| t.with_domain(local))
            .collect();
        let n_active = active.len() as u64;
        let n_reserved = reserved.len() as u64;
        let n_rejected = exported.rejected.len() as u64;
        // Reserved tasks re-enter the unserved ledger (they accrue penalty
        // and hold their reservation), then the standing-rejected ones.
        // The source's chronological interleaving is not preserved — the
        // order only affects float summation of penalty accrual, never a
        // decision.
        for t in &reserved {
            self.unserved.push((t.id(), t.penalty(), Some(local)));
        }
        for &(id, penalty) in &exported.rejected {
            self.unserved.push((id, penalty, Some(local)));
        }
        let mut domain = Domain {
            cpu: exported.cpu,
            oracle,
            active,
            reserved,
            committed: 0.0,
            resolve_cache: None,
            union_dirty: true,
            needs_resolve: exported.needs_resolve,
            fenced: false,
            export_payload: None,
        };
        domain.recompute_committed();
        self.domains.push(domain);
        let m = &mut self.metrics;
        m.arrivals += n_active + n_reserved + n_rejected;
        m.admitted += n_active + n_reserved;
        m.shed += n_reserved;
        m.rejected += n_rejected;
        self.clock = self.clock.max(exported.clock);
        self.ticks_since_resolve = self.ticks_since_resolve.max(exported.ticks_since_resolve);
        self.imported.insert(key.to_string(), local);
        if let Some(j) = self.journal.as_mut() {
            j.append_import(key, payload);
            j.sync()
                .map_err(|e| AdmitError::Journal(JournalError::Io(e)))?;
            self.metrics.journal_records = j.records();
        }
        Ok(local)
    }

    /// Encodes domain `local`'s migration payload: one line of
    /// space-separated tokens, floats as raw `f64` bits (hex), so the
    /// importing engine reconstructs bit-identical pricing state.
    fn encode_export(&self, local: usize) -> String {
        use std::fmt::Write as _;
        let d = &self.domains[local];
        let mut s = String::from("xp1");
        let cpu_spec = d.cpu.encode_spec();
        let _ = write!(
            s,
            " cpu {} {cpu_spec}",
            cpu_spec.split_ascii_whitespace().count()
        );
        let _ = write!(
            s,
            " clock {:016x} tsr {} needs {}",
            self.clock.to_bits(),
            self.ticks_since_resolve,
            u8::from(d.needs_resolve)
        );
        for (tag, ledger) in [("active", &d.active), ("reserved", &d.reserved)] {
            let _ = write!(s, " {tag} {}", ledger.len());
            for t in ledger {
                let deadline = if t.is_implicit_deadline() {
                    "-".to_string()
                } else {
                    t.deadline().to_string()
                };
                let _ = write!(
                    s,
                    " {} {:016x} {} {deadline} {:016x}",
                    t.id().index(),
                    t.wcec().to_bits(),
                    t.period(),
                    t.penalty().to_bits()
                );
            }
        }
        let reserved_ids: BTreeSet<TaskId> = d.reserved.iter().map(Task::id).collect();
        let rejected: Vec<(TaskId, f64)> = self
            .unserved
            .iter()
            .filter(|(id, _, pin)| *pin == Some(local) && !reserved_ids.contains(id))
            .map(|&(id, penalty, _)| (id, penalty))
            .collect();
        let _ = write!(s, " rej {}", rejected.len());
        for (id, penalty) in rejected {
            let _ = write!(s, " {} {:016x}", id.index(), penalty.to_bits());
        }
        s.push_str(" end");
        s
    }

    /// Decodes a migration payload produced by
    /// [`AdmissionEngine::encode_export`]. Tasks come back *unpinned*;
    /// the importer re-pins them to the new local index.
    fn decode_export(payload: &str) -> Result<ExportedDomain, AdmitError> {
        let mut tokens = payload.split_ascii_whitespace();
        xp_expect(&mut tokens, "xp1")?;
        xp_expect(&mut tokens, "cpu")?;
        let k = xp_usize(&mut tokens, "cpu token count")?;
        let mut spec = String::new();
        for i in 0..k {
            if i > 0 {
                spec.push(' ');
            }
            spec.push_str(xp_next(&mut tokens, "cpu spec token")?);
        }
        let cpu = Processor::decode_spec(&spec).map_err(|e| AdmitError::Migration {
            reason: format!("cpu spec: {e}"),
        })?;
        xp_expect(&mut tokens, "clock")?;
        let clock = Self::export_bits(xp_next(&mut tokens, "clock bits")?)?;
        xp_expect(&mut tokens, "tsr")?;
        let ticks_since_resolve = xp_u64(&mut tokens, "tsr")?;
        xp_expect(&mut tokens, "needs")?;
        let needs_resolve = match xp_next(&mut tokens, "needs flag")? {
            "0" => false,
            "1" => true,
            other => {
                return Err(AdmitError::Migration {
                    reason: format!("bad needs flag {other:?}"),
                })
            }
        };
        let mut ledgers: [Vec<Task>; 2] = [Vec::new(), Vec::new()];
        for (tag, ledger) in ["active", "reserved"].into_iter().zip(&mut ledgers) {
            xp_expect(&mut tokens, tag)?;
            let n = xp_usize(&mut tokens, "ledger length")?;
            for _ in 0..n {
                let id = xp_usize(&mut tokens, "task id")?;
                let wcec = Self::export_bits(xp_next(&mut tokens, "wcec bits")?)?;
                let period = xp_u64(&mut tokens, "period")?;
                let deadline = xp_next(&mut tokens, "deadline")?;
                let penalty = Self::export_bits(xp_next(&mut tokens, "penalty bits")?)?;
                let mut task = Task::new(id, wcec, period)
                    .map_err(|e| AdmitError::Migration {
                        reason: format!("task {id}: {e}"),
                    })?
                    .with_penalty(penalty);
                if deadline != "-" {
                    let deadline: u64 = deadline.parse().map_err(|_| AdmitError::Migration {
                        reason: format!("unparseable deadline {deadline:?}"),
                    })?;
                    task = task
                        .with_deadline(deadline)
                        .map_err(|e| AdmitError::Migration {
                            reason: format!("task {id}: {e}"),
                        })?;
                }
                ledger.push(task);
            }
        }
        let [active, reserved] = ledgers;
        xp_expect(&mut tokens, "rej")?;
        let n = xp_usize(&mut tokens, "rejected length")?;
        let mut rejected = Vec::with_capacity(n);
        for _ in 0..n {
            let id = xp_usize(&mut tokens, "rejected id")?;
            let penalty = Self::export_bits(xp_next(&mut tokens, "rejected penalty bits")?)?;
            rejected.push((TaskId::new(id), penalty));
        }
        xp_expect(&mut tokens, "end")?;
        if let Some(extra) = tokens.next() {
            return Err(AdmitError::Migration {
                reason: format!("trailing token {extra:?} after payload"),
            });
        }
        Ok(ExportedDomain {
            cpu,
            clock,
            ticks_since_resolve,
            needs_resolve,
            active,
            reserved,
            rejected,
        })
    }

    fn export_bits(tok: &str) -> Result<f64, AdmitError> {
        u64::from_str_radix(tok, 16)
            .map(f64::from_bits)
            .map_err(|_| AdmitError::Migration {
                reason: format!("unparseable f64 bits {tok:?}"),
            })
    }

    /// Serializes the engine's complete deterministic state as the `S`
    /// record payload: a line-oriented text block in which every float is
    /// stored as raw `f64` bits (hex) or via Rust's shortest round-trip
    /// `Display` — both parse back bit-identically, so an engine restored
    /// from a snapshot continues producing the exact decision log of the
    /// engine that wrote it. Caches (pricing memos, the re-solve instance)
    /// are deliberately excluded: they are rebuilt on demand and memoized
    /// pricing replays exact naive bits, so rebuilt caches cannot shift a
    /// decision.
    #[must_use]
    pub fn encode_snapshot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("dvs-admit-snapshot v2\n");
        let _ = writeln!(s, "policy {}", self.policy.name());
        if let Some(state) = self.policy.snapshot_state() {
            let _ = writeln!(s, "pstate {state}");
        }
        let regret = self
            .config
            .regret_threshold
            .map_or_else(|| "-".to_string(), |r| format!("{:016x}", r.to_bits()));
        let _ = writeln!(
            s,
            "config {} {} {regret} {} {}",
            self.config.horizon,
            self.config.resolve_every.unwrap_or(0),
            self.config.resolve_budget,
            u8::from(self.config.warm_start)
        );
        let _ = writeln!(s, "clock {:016x}", self.clock.to_bits());
        let _ = writeln!(s, "tsr {}", self.ticks_since_resolve);
        let _ = writeln!(s, "epoch {}", self.epoch);
        let m = &self.metrics;
        let _ = writeln!(
            s,
            "counters {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            m.arrivals,
            m.admitted,
            m.rejected,
            m.shed,
            m.readmitted,
            m.departures,
            m.ticks,
            m.resolves,
            m.resolves_degraded,
            m.resolves_skipped,
            m.resolve_nodes,
            m.events,
            m.journal_records,
            m.snapshots_taken,
            m.recoveries,
            m.records_lost,
            m.backpressure_sheds
        );
        let _ = writeln!(
            s,
            "costs {:016x} {:016x} {:016x}",
            m.energy.to_bits(),
            m.penalty_accrued.to_bits(),
            m.penalty_charged.to_bits()
        );
        let _ = writeln!(s, "domains {}", self.domains.len());
        for d in &self.domains {
            let _ = writeln!(
                s,
                "domain {} {} {} {}",
                u8::from(d.needs_resolve),
                d.active.len(),
                d.reserved.len(),
                u8::from(d.fenced)
            );
            // v2 embeds the processor spec, so a restoring engine can
            // rebuild domains beyond the ones it was constructed with
            // (the live-resharding import targets) and cross-check the
            // rest bit-exactly.
            let cpu_spec = d.cpu.encode_spec();
            let _ = writeln!(
                s,
                "cpu {} {cpu_spec}",
                cpu_spec.split_ascii_whitespace().count()
            );
            if let Some(payload) = &d.export_payload {
                let _ = writeln!(s, "xport {payload}");
            }
            for (tag, ledger) in [('a', &d.active), ('r', &d.reserved)] {
                for t in ledger {
                    let deadline = if t.is_implicit_deadline() {
                        "-".to_string()
                    } else {
                        t.deadline().to_string()
                    };
                    // The pin column is only present for pinned tasks so
                    // snapshots of unpinned engines keep their original
                    // byte format.
                    match t.domain() {
                        Some(pin) => {
                            let _ = writeln!(
                                s,
                                "{tag} {} {} {} {deadline} {} {pin}",
                                t.id().index(),
                                t.wcec(),
                                t.period(),
                                t.penalty()
                            );
                        }
                        None => {
                            let _ = writeln!(
                                s,
                                "{tag} {} {} {} {deadline} {}",
                                t.id().index(),
                                t.wcec(),
                                t.period(),
                                t.penalty()
                            );
                        }
                    }
                }
            }
        }
        let _ = writeln!(s, "unserved {}", self.unserved.len());
        for (id, penalty, pin) in &self.unserved {
            match pin {
                Some(pin) => {
                    let _ = writeln!(s, "u {} {:016x} {pin}", id.index(), penalty.to_bits());
                }
                None => {
                    let _ = writeln!(s, "u {} {:016x}", id.index(), penalty.to_bits());
                }
            }
        }
        let _ = writeln!(s, "departed {}", self.departed.len());
        for id in &self.departed {
            let _ = writeln!(s, "d {}", id.index());
        }
        let _ = writeln!(s, "imported {}", self.imported.len());
        for (key, local) in &self.imported {
            let _ = writeln!(s, "i {key} {local}");
        }
        let _ = writeln!(s, "decisions {}", self.decisions.len());
        for d in &self.decisions {
            let (code, domain) = match d.verdict {
                Verdict::Accepted { domain } => ('A', Some(domain)),
                Verdict::Rejected => ('R', None),
                Verdict::Shed { domain } => ('S', Some(domain)),
                Verdict::Readmitted { domain } => ('M', Some(domain)),
            };
            let domain = domain.map_or_else(|| "-".to_string(), |x| x.to_string());
            let _ = writeln!(
                s,
                "x {:016x} {} {code} {domain}",
                d.at.to_bits(),
                d.task.index()
            );
        }
        s.push_str("end\n");
        s
    }

    /// Restores state captured by [`AdmissionEngine::encode_snapshot`]
    /// into this (freshly constructed) engine. The engine must have been
    /// built with the same domains, policy, and configuration as the one
    /// that wrote the snapshot — mismatches are errors, not silent
    /// adoption of the snapshot's values.
    ///
    /// # Errors
    ///
    /// [`JournalError::Snapshot`] naming the offending line.
    pub fn restore_snapshot(&mut self, text: &str) -> Result<(), JournalError> {
        let mut cur = SnapCursor::new(text);
        let v2 = match cur.next()? {
            "dvs-admit-snapshot v1" => false,
            "dvs-admit-snapshot v2" => true,
            other => return Err(cur.err(format!("bad snapshot header {other:?}"))),
        };
        let policy = cur.tagged("policy")?;
        if policy != self.policy.name() {
            return Err(cur.err(format!(
                "snapshot was written by policy {policy:?}, engine runs {:?}",
                self.policy.name()
            )));
        }
        let mut line = cur.next()?;
        if let Some(state) = line.strip_prefix("pstate ") {
            self.policy
                .restore_state(state)
                .map_err(|reason| cur.err(reason))?;
            line = cur.next()?;
        }
        let config = {
            let cols = Self::cols_tagged(&cur, line, "config", 5)?;
            EngineConfig {
                horizon: cur.parse_u64(cols[0])?,
                resolve_every: match cur.parse_u64(cols[1])? {
                    0 => None,
                    k => Some(k),
                },
                regret_threshold: if cols[2] == "-" {
                    None
                } else {
                    Some(cur.parse_bits(cols[2])?)
                },
                resolve_budget: cur.parse_u64(cols[3])?,
                warm_start: cols[4] == "1",
            }
        };
        if config != self.config {
            return Err(cur.err("snapshot engine configuration differs from this engine's"));
        }
        let clock = cur.one_tagged("clock")?;
        self.clock = cur.parse_bits(clock)?;
        let tsr = cur.one_tagged("tsr")?;
        self.ticks_since_resolve = cur.parse_u64(tsr)?;
        {
            let mut line = cur.next()?;
            // Optional for compatibility with pre-replication snapshots.
            if let Some(epoch) = line.strip_prefix("epoch ") {
                self.epoch = cur.parse_u64(epoch)?;
                line = cur.next()?;
            }
            let cols = Self::cols_tagged(&cur, line, "counters", 17)?;
            let v: Vec<u64> = cols
                .iter()
                .map(|c| cur.parse_u64(c))
                .collect::<Result<_, _>>()?;
            let m = &mut self.metrics;
            m.arrivals = v[0];
            m.admitted = v[1];
            m.rejected = v[2];
            m.shed = v[3];
            m.readmitted = v[4];
            m.departures = v[5];
            m.ticks = v[6];
            m.resolves = v[7];
            m.resolves_degraded = v[8];
            m.resolves_skipped = v[9];
            m.resolve_nodes = v[10];
            m.events = v[11];
            m.journal_records = v[12];
            m.snapshots_taken = v[13];
            m.recoveries = v[14];
            m.records_lost = v[15];
            m.backpressure_sheds = v[16];
        }
        {
            let line = cur.next()?;
            let cols = Self::cols_tagged(&cur, line, "costs", 3)?;
            self.metrics.energy = cur.parse_bits(cols[0])?;
            self.metrics.penalty_accrued = cur.parse_bits(cols[1])?;
            self.metrics.penalty_charged = cur.parse_bits(cols[2])?;
        }
        let n_domains = cur.one_tagged("domains")?;
        let n_domains = cur.parse_u64(n_domains)? as usize;
        // v1 snapshots require the exact engine shape. v2 snapshots may
        // carry *more* domains than the engine was constructed with — the
        // live-resharding import targets — and embed each domain's
        // processor spec so the extras can be rebuilt (and the rest
        // cross-checked) here.
        if n_domains != self.domains.len() && (!v2 || n_domains < self.domains.len()) {
            return Err(cur.err(format!(
                "snapshot has {n_domains} domains, engine has {}",
                self.domains.len()
            )));
        }
        for i in 0..n_domains {
            let line = cur.next()?;
            let cols = Self::cols_tagged(&cur, line, "domain", if v2 { 4 } else { 3 })?;
            let needs_resolve = cols[0] == "1";
            let n_active = cur.parse_u64(cols[1])? as usize;
            let n_reserved = cur.parse_u64(cols[2])? as usize;
            let fenced = v2 && cols[3] == "1";
            let mut export_payload = None;
            if v2 {
                let line = cur.next()?;
                let rest = line
                    .strip_prefix("cpu ")
                    .ok_or_else(|| cur.err(format!("expected a \"cpu\" line, found {line:?}")))?;
                let (_count, spec) = rest
                    .split_once(' ')
                    .ok_or_else(|| cur.err("\"cpu\" line missing its spec"))?;
                let cpu = Processor::decode_spec(spec)
                    .map_err(|e| cur.err(format!("domain {i} cpu spec: {e}")))?;
                if i < self.domains.len() {
                    if self.domains[i].cpu != cpu {
                        return Err(cur.err(format!(
                            "snapshot domain {i} processor differs from this engine's"
                        )));
                    }
                } else {
                    let horizon = self.config.horizon;
                    let domain = (move || -> Result<Domain, AdmitError> {
                        let anchor = Task::new(RESERVED_ANCHOR_ID, 0.0, horizon)?;
                        let oracle =
                            Instance::new(TaskSet::try_from_tasks([anchor])?, cpu.clone())?;
                        Ok(Domain {
                            cpu,
                            oracle,
                            active: Vec::new(),
                            reserved: Vec::new(),
                            committed: 0.0,
                            resolve_cache: None,
                            union_dirty: true,
                            needs_resolve: false,
                            fenced: false,
                            export_payload: None,
                        })
                    })()
                    .map_err(|e| cur.err(e.to_string()))?;
                    self.domains.push(domain);
                }
                if fenced {
                    let line = cur.next()?;
                    let payload = line.strip_prefix("xport ").ok_or_else(|| {
                        cur.err(format!("fenced domain {i} missing its \"xport\" line"))
                    })?;
                    export_payload = Some(payload.to_string());
                }
            }
            let mut active = Vec::with_capacity(n_active);
            let mut reserved = Vec::with_capacity(n_reserved);
            for (tag, n, ledger) in [
                ('a', n_active, &mut active),
                ('r', n_reserved, &mut reserved),
            ] {
                for _ in 0..n {
                    let line = cur.next()?;
                    ledger.push(cur.parse_task(line, tag)?);
                }
            }
            let d = &mut self.domains[i];
            d.active = active;
            d.reserved = reserved;
            d.recompute_committed();
            // Caches are rebuilt lazily; memoized pricing replays exact
            // naive bits, so this cannot shift a decision.
            d.resolve_cache = None;
            d.union_dirty = true;
            d.needs_resolve = needs_resolve;
            d.fenced = fenced;
            d.export_payload = export_payload;
        }
        let n_unserved = cur.one_tagged("unserved")?;
        let n_unserved = cur.parse_u64(n_unserved)? as usize;
        self.unserved = Vec::with_capacity(n_unserved);
        for _ in 0..n_unserved {
            let line = cur.next()?;
            // 2 columns (id, penalty bits) pre-pinning; 3 with a pin.
            let cols: Vec<&str> = line.split_whitespace().collect();
            if cols.first() != Some(&"u") || !(cols.len() == 3 || cols.len() == 4) {
                return Err(cur.err(format!("malformed \"u\" unserved line {line:?}")));
            }
            let pin = match cols.get(3) {
                Some(p) => Some(cur.parse_u64(p)? as usize),
                None => None,
            };
            self.unserved.push((
                TaskId::new(cur.parse_u64(cols[1])? as usize),
                cur.parse_bits(cols[2])?,
                pin,
            ));
        }
        let n_departed = cur.one_tagged("departed")?;
        let n_departed = cur.parse_u64(n_departed)? as usize;
        self.departed = BTreeSet::new();
        for _ in 0..n_departed {
            let id = cur.one_tagged("d")?;
            let id = cur.parse_u64(id)? as usize;
            self.departed.insert(TaskId::new(id));
        }
        self.imported = BTreeMap::new();
        if v2 {
            let n_imported = cur.one_tagged("imported")?;
            let n_imported = cur.parse_u64(n_imported)? as usize;
            for _ in 0..n_imported {
                let line = cur.next()?;
                let cols = Self::cols_tagged(&cur, line, "i", 2)?;
                let local = cur.parse_u64(cols[1])? as usize;
                self.imported.insert(cols[0].to_string(), local);
            }
        }
        let n_decisions = cur.one_tagged("decisions")?;
        let n_decisions = cur.parse_u64(n_decisions)? as usize;
        self.decisions = Vec::with_capacity(n_decisions);
        for _ in 0..n_decisions {
            let line = cur.next()?;
            let cols = Self::cols_tagged(&cur, line, "x", 4)?;
            let at = cur.parse_bits(cols[0])?;
            let task = TaskId::new(cur.parse_u64(cols[1])? as usize);
            let domain = || -> Result<usize, JournalError> { Ok(cur.parse_u64(cols[3])? as usize) };
            let verdict = match cols[2] {
                "A" => Verdict::Accepted { domain: domain()? },
                "R" => Verdict::Rejected,
                "S" => Verdict::Shed { domain: domain()? },
                "M" => Verdict::Readmitted { domain: domain()? },
                other => return Err(cur.err(format!("unknown verdict code {other:?}"))),
            };
            self.decisions.push(Decision { at, task, verdict });
        }
        if cur.next()? != "end" {
            return Err(cur.err("missing snapshot terminator"));
        }
        Ok(())
    }

    fn cols_tagged<'a>(
        cur: &SnapCursor<'_>,
        line: &'a str,
        tag: &str,
        n: usize,
    ) -> Result<Vec<&'a str>, JournalError> {
        let rest = line
            .strip_prefix(tag)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| cur.err(format!("expected a {tag:?} line, found {line:?}")))?;
        let cols: Vec<&str> = rest.split_whitespace().collect();
        if cols.len() != n {
            return Err(cur.err(format!(
                "{tag:?} line has {} columns, expected {n}",
                cols.len()
            )));
        }
        Ok(cols)
    }

    /// Reconstructs an engine from the journal at `path`: restore the
    /// last embedded snapshot (if any), deterministically replay the
    /// event-record tail after it, truncate any torn bytes, and reopen the
    /// journal for appending. The result's decision log is bit-identical
    /// to the engine that wrote the journal, at the point of its last
    /// flushed record — the crash-recovery invariant the chaos suite
    /// asserts across `DVS_THREADS`.
    ///
    /// `cpus`, `policy`, and `config` must match the original serving
    /// configuration (the snapshot cross-checks them). A missing file is
    /// not an error: a fresh engine with a fresh journal is returned and
    /// [`Metrics::recoveries`] stays 0.
    ///
    /// # Errors
    ///
    /// * Engine-construction errors ([`AdmitError::NoDomains`], oracle
    ///   errors).
    /// * [`AdmitError::Journal`] for I/O failures, snapshot/configuration
    ///   mismatches, or a tail event that fails to re-apply.
    pub fn recover<P: AsRef<Path>>(
        path: P,
        cpus: Vec<Processor>,
        policy: Box<dyn EnginePolicy>,
        config: EngineConfig,
        jconfig: JournalConfig,
    ) -> Result<Recovered, AdmitError> {
        let path = path.as_ref();
        // `with_domains`, not `new`: a freshly added shard in a resharding
        // cluster starts with zero domains and grows them by replaying
        // import records.
        let mut engine = Self::with_domains(cpus, policy, config)?;
        if !path.exists() {
            let journal = Journal::create(path, jconfig).map_err(JournalError::Io)?;
            engine.attach_journal(journal);
            return Ok(Recovered {
                engine,
                replayed: 0,
                had_snapshot: false,
                records_lost: 0,
                bytes_lost: 0,
            });
        }
        let scan = journal::scan(path).map_err(JournalError::Io)?;
        let start = match scan.last_snapshot() {
            Some(i) => {
                engine.restore_snapshot(&scan.records[i].payload)?;
                i + 1
            }
            None => 0,
        };
        let mut replayed = 0u64;
        for (idx, rec) in scan.records.iter().enumerate().skip(start) {
            let replay_err = |reason: String| JournalError::Replay {
                record: idx,
                reason,
            };
            if rec.kind == RecordKind::Epoch {
                let epoch = rec
                    .payload
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| replay_err(format!("bad epoch payload: {e}")))?;
                engine
                    .observe_epoch(epoch)
                    .map_err(|e| replay_err(e.to_string()))?;
                continue;
            }
            if rec.kind == RecordKind::Export {
                let (local, payload) = rec
                    .payload
                    .split_once(' ')
                    .ok_or_else(|| replay_err("malformed export record".to_string()))?;
                let local: usize = local
                    .parse()
                    .map_err(|_| replay_err(format!("bad export index {local:?}")))?;
                // Re-exporting from the replayed state must reproduce the
                // recorded payload byte-for-byte — a mismatch means the
                // replay diverged from the run that wrote the journal.
                let replayed_payload = engine
                    .export_domain(local)
                    .map_err(|e| replay_err(e.to_string()))?;
                if replayed_payload != payload {
                    return Err(replay_err(format!(
                        "export replay of domain {local} diverged from the journaled payload"
                    ))
                    .into());
                }
                continue;
            }
            if rec.kind == RecordKind::Import {
                let (key, payload) = rec
                    .payload
                    .split_once(' ')
                    .ok_or_else(|| replay_err("malformed import record".to_string()))?;
                engine
                    .import_domain(key, payload)
                    .map_err(|e| replay_err(e.to_string()))?;
                continue;
            }
            if rec.kind != RecordKind::Event {
                continue;
            }
            let (flag, line) = rec
                .payload
                .split_once(' ')
                .ok_or_else(|| replay_err("missing fast-path flag".to_string()))?;
            let fast = match flag {
                "n" => false,
                "f" => true,
                other => return Err(replay_err(format!("bad fast-path flag {other:?}")).into()),
            };
            let event = parse_event_line(line).map_err(|e| replay_err(e.to_string()))?;
            engine
                .apply_opts(&event, fast)
                .map_err(|e| replay_err(e.to_string()))?;
            replayed += 1;
        }
        engine.metrics.recoveries += 1;
        engine.metrics.records_lost += scan.records_lost;
        let journal = Journal::append_to(path, jconfig, &scan).map_err(JournalError::Io)?;
        engine.metrics.journal_records = journal.records();
        engine.journal = Some(journal);
        Ok(Recovered {
            replayed,
            had_snapshot: start > 0,
            records_lost: scan.records_lost,
            bytes_lost: scan.bytes_lost(),
            engine,
        })
    }

    /// The metrics registry plus engine gauges as one flat JSON object —
    /// the payload of the server's `stats` response and shutdown dump.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let m = &self.metrics;
        let committed: Vec<String> = self
            .domains
            .iter()
            .map(|d| format!("{}", d.committed))
            .collect();
        let active: Vec<String> = self
            .domains
            .iter()
            .map(|d| d.active.len().to_string())
            .collect();
        format!(
            "{{\"op\":\"stats\",\"policy\":\"{}\",\"clock\":{},\"threads\":{},\
             \"domains\":{},\"fenced\":{},\"active\":[{}],\"committed\":[{}],\
             \"arrivals\":{},\"accepted\":{},\"admitted\":{},\"rejected\":{},\"shed\":{},\
             \"shed_total\":{},\"readmitted\":{},\
             \"departures\":{},\"ticks\":{},\"resolves\":{},\"resolves_degraded\":{},\
             \"resolves_skipped\":{},\"resolve_nodes\":{},\
             \"events\":{},\"events_per_sec\":{},\
             \"energy\":{},\"penalty_accrued\":{},\
             \"penalty_charged\":{},\"total_cost\":{},\
             \"journal_records\":{},\"snapshots_taken\":{},\"recoveries\":{},\
             \"records_lost\":{},\"backpressure_sheds\":{},\
             \"epoch\":{},\"epoch_bumps\":{},\"epoch_rejects\":{},\
             \"repl_records\":{},\"repl_bytes\":{},\"repl_torn_tails\":{},\
             \"repl_reconnects\":{},\"heartbeat_misses\":{},\"latency_us_log2\":{}}}",
            self.policy.name(),
            self.clock,
            dvs_exec::num_threads(),
            self.domains.len(),
            self.fenced_count(),
            active.join(","),
            committed.join(","),
            m.arrivals,
            m.accepted(),
            m.admitted,
            m.rejected,
            m.standing_shed(),
            m.shed,
            m.readmitted,
            m.departures,
            m.ticks,
            m.resolves,
            m.resolves_degraded,
            m.resolves_skipped,
            m.resolve_nodes,
            m.events,
            m.events_per_sec(),
            m.energy,
            m.penalty_accrued,
            m.penalty_charged,
            m.total_cost(),
            m.journal_records,
            m.snapshots_taken,
            m.recoveries,
            m.records_lost,
            m.backpressure_sheds,
            self.epoch,
            m.epoch_bumps,
            m.epoch_rejects,
            m.repl_records,
            m.repl_bytes,
            m.repl_torn_tails,
            m.repl_reconnects,
            m.heartbeat_misses,
            m.latency.to_json()
        )
    }
}

/// A domain decoded from a migration payload, tasks still unpinned (the
/// importer re-pins them to the new local index).
struct ExportedDomain {
    cpu: Processor,
    clock: f64,
    ticks_since_resolve: u64,
    needs_resolve: bool,
    active: Vec<Task>,
    reserved: Vec<Task>,
    rejected: Vec<(TaskId, f64)>,
}

fn xp_next<'a, I>(tokens: &mut I, what: &str) -> Result<&'a str, AdmitError>
where
    I: Iterator<Item = &'a str>,
{
    tokens.next().ok_or_else(|| AdmitError::Migration {
        reason: format!("payload ends before {what}"),
    })
}

fn xp_expect<'a, I>(tokens: &mut I, tag: &str) -> Result<(), AdmitError>
where
    I: Iterator<Item = &'a str>,
{
    let t = xp_next(tokens, tag)?;
    if t == tag {
        Ok(())
    } else {
        Err(AdmitError::Migration {
            reason: format!("expected {tag:?}, found {t:?}"),
        })
    }
}

fn xp_u64<'a, I>(tokens: &mut I, what: &str) -> Result<u64, AdmitError>
where
    I: Iterator<Item = &'a str>,
{
    let t = xp_next(tokens, what)?;
    t.parse().map_err(|_| AdmitError::Migration {
        reason: format!("unparseable {what} {t:?}"),
    })
}

fn xp_usize<'a, I>(tokens: &mut I, what: &str) -> Result<usize, AdmitError>
where
    I: Iterator<Item = &'a str>,
{
    let t = xp_next(tokens, what)?;
    t.parse().map_err(|_| AdmitError::Migration {
        reason: format!("unparseable {what} {t:?}"),
    })
}

/// The result of [`AdmissionEngine::recover`].
#[derive(Debug)]
pub struct Recovered {
    /// The reconstructed engine, journal reattached and ready to serve.
    pub engine: AdmissionEngine,
    /// Event records replayed after the snapshot (the journal tail).
    pub replayed: u64,
    /// Whether a snapshot anchored the recovery (false = full replay).
    pub had_snapshot: bool,
    /// Records dropped because the journal tail was torn or corrupt.
    pub records_lost: u64,
    /// Bytes truncated off the journal tail.
    pub bytes_lost: u64,
}

/// Line cursor over a snapshot payload, tracking the line number for
/// error reporting.
struct SnapCursor<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> SnapCursor<'a> {
    fn new(text: &'a str) -> Self {
        SnapCursor {
            lines: text.lines(),
            line_no: 0,
        }
    }

    fn next(&mut self) -> Result<&'a str, JournalError> {
        self.line_no += 1;
        self.lines.next().ok_or(JournalError::Snapshot {
            line: self.line_no,
            reason: "unexpected end of snapshot".to_string(),
        })
    }

    fn err(&self, reason: impl Into<String>) -> JournalError {
        JournalError::Snapshot {
            line: self.line_no,
            reason: reason.into(),
        }
    }

    /// Next line stripped of `"<tag> "`.
    fn tagged(&mut self, tag: &str) -> Result<&'a str, JournalError> {
        let line = self.next()?;
        line.strip_prefix(tag)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| self.err(format!("expected a {tag:?} line, found {line:?}")))
    }

    /// Next line of the form `"<tag> <value>"`, returning the value.
    fn one_tagged(&mut self, tag: &str) -> Result<&'a str, JournalError> {
        let rest = self.tagged(tag)?;
        let rest = rest.trim();
        if rest.is_empty() || rest.contains(char::is_whitespace) {
            return Err(self.err(format!("{tag:?} line must carry exactly one value")));
        }
        Ok(rest)
    }

    fn parse_u64(&self, s: &str) -> Result<u64, JournalError> {
        s.parse()
            .map_err(|_| self.err(format!("cannot parse integer {s:?}")))
    }

    fn parse_bits(&self, s: &str) -> Result<f64, JournalError> {
        u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|_| self.err(format!("cannot parse f64 bits {s:?}")))
    }

    /// Parses a ledger task line `"<tag> <id> <wcec> <period> <deadline|->
    /// <penalty> [domain]"` (the task-set column format; floats round-trip
    /// bit-exactly through `Display`). The optional trailing column is the
    /// power-domain pin.
    fn parse_task(&self, line: &str, tag: char) -> Result<Task, JournalError> {
        let cols: Vec<&str> = line.split_whitespace().collect();
        if !(cols.len() == 6 || cols.len() == 7) || cols[0] != tag.to_string() {
            return Err(self.err(format!("malformed {tag:?} task line {line:?}")));
        }
        let id: usize = cols[1]
            .parse()
            .map_err(|_| self.err(format!("cannot parse task id {:?}", cols[1])))?;
        let wcec: f64 = cols[2]
            .parse()
            .map_err(|_| self.err(format!("cannot parse wcec {:?}", cols[2])))?;
        let period: u64 = cols[3]
            .parse()
            .map_err(|_| self.err(format!("cannot parse period {:?}", cols[3])))?;
        let penalty: f64 = cols[5]
            .parse()
            .map_err(|_| self.err(format!("cannot parse penalty {:?}", cols[5])))?;
        let mut task = Task::new(id, wcec, period)
            .map_err(|e| self.err(e.to_string()))?
            .with_penalty(penalty);
        if cols[4] != "-" {
            let deadline: u64 = cols[4]
                .parse()
                .map_err(|_| self.err(format!("cannot parse deadline {:?}", cols[4])))?;
            task = task
                .with_deadline(deadline)
                .map_err(|e| self.err(e.to_string()))?;
        }
        if let Some(pin) = cols.get(6) {
            let pin: usize = pin
                .parse()
                .map_err(|_| self.err(format!("cannot parse domain pin {pin:?}")))?;
            task = task.with_domain(pin);
        }
        Ok(task)
    }
}

impl std::fmt::Debug for AdmissionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionEngine")
            .field("policy", &self.policy.name())
            .field("clock", &self.clock)
            .field("domains", &self.domains.len())
            .field("decisions", &self.decisions.len())
            .finish_non_exhaustive()
    }
}
