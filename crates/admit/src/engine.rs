//! The stateful admission-control engine.
//!
//! [`AdmissionEngine`] consumes a timestamped event stream
//! ([`EventRecord`]: `Arrive`, `Depart`, `Tick`) and maintains, per power
//! domain, the committed utilization and the ledger of admitted tasks.
//! Admission is decided by a pluggable [`EnginePolicy`] — any of the
//! offline crate's [`AdmissionPolicy`] implementations wrapped as-is, or
//! the new stateful [`WatermarkPolicy`] with high/low hysteresis — and
//! commitments are *revisited*: on `Tick` (and on departures when a regret
//! threshold is configured) the engine runs a node-budgeted offline
//! re-solve over the active set and sheds now-unprofitable tasks, charging
//! their penalties exactly as the simulator's late-rejection recovery path
//! does.
//!
//! ## Economics: the billing horizon
//!
//! The offline objective is *per hyper-period*: `E*(u) = L·rate(u)` versus
//! penalties `vᵢ`. An online engine sees no fixed task set, so it fixes a
//! **billing horizon** `H` ([`EngineConfig::horizon`]) and prices every
//! decision per `H` ticks: a task is worth admitting when
//! `vᵢ ≥ θ·H·(rate(u+uᵢ) − rate(u))`. Internally this is implemented by
//! consulting the *oracle instance* — a one-task instance whose anchor
//! task (reserved id, zero cycles) pins the hyper-period to `H` — so the
//! existing [`AdmissionPolicy`] implementations work unmodified. Re-solve
//! instances embed the same anchor; when all task periods divide `H` (true
//! for the default generator period set with `H = 1000`) the re-solve
//! economics coincide exactly with the engine's own accounting.
//!
//! ## Reservation-consistent shedding and the dominance theorem
//!
//! Shedding interacts with admission: naively, evicting a task frees
//! capacity, later arrivals the myopic engine would refuse get admitted,
//! and those divergent admissions can backfire — the re-solving engine
//! can then end up *costlier* than the myopic one it was meant to
//! dominate. This engine closes that hole with two rules:
//!
//! 1. **Reservations.** A shed task keeps its admission-pricing
//!    reservation until it departs: admission decisions are priced at the
//!    *reserved* utilization (served + shed-but-present), so the
//!    accept/reject trajectory is identical to the myopic engine's on any
//!    event stream, and shedding never invites thrashing re-admissions.
//! 2. **Serve-all guard.** The re-solve optimizes over served *and*
//!    reserved tasks (it may readmit), and after every arrival and
//!    departure the engine reverts to serving everything admitted if the
//!    reserved set has stopped being collectively profitable at the new
//!    background load.
//!
//! Together these make the engine's instantaneous cost rate (energy at
//! the served utilization plus `vᵢ/H` per unserved task) never exceed the
//! myopic engine's at any point in time, for a convex energy-rate model —
//! so `total_cost(re-solve) ≤ total_cost(myopic)` holds on **every**
//! trace, not just on average. Experiment E7 measures the margin.
//!
//! ## Determinism contract
//!
//! Given the same event stream and configuration, the decision log is
//! **bit-identical regardless of `DVS_THREADS`**: admission decisions are
//! pure arithmetic, and the re-solve uses the *sequential* node-budgeted
//! branch & bound (`solve_within`), whose incumbent is reproducible by
//! construction. Only the wall-clock decision-latency histogram in the
//! metrics registry varies between runs.

use std::time::Instant;

use dvs_power::Processor;
use reject_sched::algorithms::{BranchBound, MarginalGreedy};
use reject_sched::anytime::{BudgetedPolicy, SolveBudget, SolveQuality};
use reject_sched::online::AdmissionPolicy;
use reject_sched::{Instance, RejectionPolicy, SchedError, Solution};
use rt_model::io::{EventKind, EventRecord};
use rt_model::{Task, TaskId, TaskSet};

use crate::metrics::Metrics;
use crate::AdmitError;

/// Task identifier reserved for the engine's billing-horizon anchor task
/// (a zero-cycle, zero-penalty task that pins oracle and re-solve
/// instances to the configured horizon). Arrivals may not use it.
pub const RESERVED_ANCHOR_ID: usize = usize::MAX;

/// Tolerance below which a re-solve improvement is treated as a tie (no
/// shedding on numerical noise).
const RESOLVE_EPSILON: f64 = 1e-9;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Billing horizon `H` in ticks: penalties are per `H`, energy is
    /// priced as `H·rate(u)`. Should be a common multiple of expected task
    /// periods for exact re-solve consistency (see the [module
    /// docs](self)).
    pub horizon: u64,
    /// Run a re-solve every `k`-th `Tick` (`None` disables periodic
    /// re-solves; regret-triggered ones still run if configured).
    pub resolve_every: Option<u64>,
    /// Re-solve as soon as the estimated shedding profit (regret) exceeds
    /// this, checked on ticks *and* departures. `None` disables.
    pub regret_threshold: Option<f64>,
    /// Node budget per re-solve pass, handed to the sequential anytime
    /// branch & bound. Deterministic by construction.
    pub resolve_budget: u64,
    /// Seed each re-solve's incumbent with the domain's standing accepted
    /// set (warm start). The tighter initial bound prunes more of the
    /// search under the same node budget; when the search completes within
    /// budget the decisions are identical to a cold start (the engine acts
    /// only on strict cost improvements, and warm start can only change
    /// the result on ties or budget expiry — in its favour).
    pub warm_start: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            horizon: 1000,
            resolve_every: Some(1),
            regret_threshold: None,
            resolve_budget: 20_000,
            warm_start: true,
        }
    }
}

impl EngineConfig {
    /// Sets the billing horizon.
    #[must_use]
    pub fn horizon(mut self, ticks: u64) -> Self {
        self.horizon = ticks.max(1);
        self
    }

    /// Re-solve every `k` ticks (`0` disables).
    #[must_use]
    pub fn resolve_every(mut self, k: u64) -> Self {
        self.resolve_every = if k == 0 { None } else { Some(k) };
        self
    }

    /// Re-solve when regret exceeds `threshold`.
    #[must_use]
    pub fn regret_threshold(mut self, threshold: f64) -> Self {
        self.regret_threshold = Some(threshold);
        self
    }

    /// Sets the re-solve node budget.
    #[must_use]
    pub fn resolve_budget(mut self, nodes: u64) -> Self {
        self.resolve_budget = nodes.max(1);
        self
    }

    /// Enables or disables warm-started re-solves.
    #[must_use]
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }
}

/// An admission decision rule consulted by the engine.
///
/// Unlike the offline [`AdmissionPolicy`] (stateless `&self`), engine
/// policies may carry state across decisions (`&mut self`) — the
/// [`WatermarkPolicy`]'s hysteresis latch needs exactly that. Every
/// `AdmissionPolicy` is an `EnginePolicy` via a blanket impl, so
/// `OnlineGreedy` and `ThresholdPolicy` plug in unchanged.
pub trait EnginePolicy: Send {
    /// Short stable identifier (used in reports and logs).
    fn name(&self) -> &'static str;

    /// Whether to admit `task` on a domain with committed utilization `u`.
    ///
    /// `oracle` is the domain's billing-horizon instance: use
    /// `oracle.marginal_energy(u, du)` and `oracle.processor()` — its task
    /// list is the anchor only and carries no information.
    ///
    /// # Errors
    ///
    /// Oracle errors propagate.
    fn decide(&mut self, oracle: &Instance, u: f64, task: &Task) -> Result<bool, SchedError>;
}

impl<P: AdmissionPolicy + Send> EnginePolicy for P {
    fn name(&self) -> &'static str {
        AdmissionPolicy::name(self)
    }

    fn decide(&mut self, oracle: &Instance, u: f64, task: &Task) -> Result<bool, SchedError> {
        self.admit(oracle, u, task)
    }
}

/// Reservation policy with high/low watermark hysteresis.
///
/// While the domain's committed utilization is below `high · s_max` the
/// policy admits by the plain myopic rule. Crossing the high watermark
/// *engages* reservation mode: admissions must now clear a hedged bar
/// `vᵢ ≥ θ·ΔE`, keeping headroom for denser future arrivals. The mode
/// stays engaged — even as rejections keep utilization flat — until
/// departures pull utilization down to the low watermark, which prevents
/// the rapid engage/disengage flapping a single threshold would produce.
#[derive(Debug, Clone, PartialEq)]
pub struct WatermarkPolicy {
    high: f64,
    low: f64,
    theta: f64,
    engaged: bool,
}

impl WatermarkPolicy {
    /// Creates the policy. `low ≤ high` are fractions of the domain's
    /// maximum speed in `[0, 1]`; `θ ≥ 1` is the hedge applied while
    /// engaged.
    ///
    /// # Errors
    ///
    /// [`AdmitError::InvalidParameter`] for out-of-range values.
    pub fn new(high: f64, low: f64, theta: f64) -> Result<Self, AdmitError> {
        if !(0.0..=1.0).contains(&high) || !high.is_finite() {
            return Err(AdmitError::InvalidParameter {
                name: "high watermark",
                value: high,
            });
        }
        if !(0.0..=1.0).contains(&low) || low > high {
            return Err(AdmitError::InvalidParameter {
                name: "low watermark",
                value: low,
            });
        }
        if !theta.is_finite() || theta < 1.0 {
            return Err(AdmitError::InvalidParameter {
                name: "θ",
                value: theta,
            });
        }
        Ok(WatermarkPolicy {
            high,
            low,
            theta,
            engaged: false,
        })
    }

    /// Whether reservation mode is currently engaged.
    #[must_use]
    pub fn is_engaged(&self) -> bool {
        self.engaged
    }
}

impl EnginePolicy for WatermarkPolicy {
    fn name(&self) -> &'static str {
        "watermark"
    }

    fn decide(&mut self, oracle: &Instance, u: f64, task: &Task) -> Result<bool, SchedError> {
        let s_max = oracle.processor().max_speed();
        let fill = u / s_max;
        if fill >= self.high {
            self.engaged = true;
        } else if fill <= self.low {
            self.engaged = false;
        }
        if !oracle.processor().is_feasible(u + task.utilization()) {
            return Ok(false);
        }
        let hedge = if self.engaged { self.theta } else { 1.0 };
        Ok(task.penalty() >= hedge * oracle.marginal_energy(u, task.utilization())?)
    }
}

/// The outcome recorded for one task at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Admitted onto the given power domain.
    Accepted {
        /// Domain index.
        domain: usize,
    },
    /// Refused at arrival.
    Rejected,
    /// Previously admitted, evicted by a re-solve on the given domain.
    Shed {
        /// Domain index.
        domain: usize,
    },
    /// Previously shed, returned to service because shedding stopped
    /// being profitable at the current background load.
    Readmitted {
        /// Domain index.
        domain: usize,
    },
}

/// One entry of the engine's decision log.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Engine clock when the decision was made.
    pub at: f64,
    /// The task decided on.
    pub task: TaskId,
    /// The outcome.
    pub verdict: Verdict,
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.verdict {
            Verdict::Accepted { domain } => {
                write!(f, "t={:.6} {} accepted@{domain}", self.at, self.task)
            }
            Verdict::Rejected => write!(f, "t={:.6} {} rejected", self.at, self.task),
            Verdict::Shed { domain } => write!(f, "t={:.6} {} shed@{domain}", self.at, self.task),
            Verdict::Readmitted { domain } => {
                write!(f, "t={:.6} {} readmitted@{domain}", self.at, self.task)
            }
        }
    }
}

/// One power domain's ledger.
#[derive(Debug)]
struct Domain {
    cpu: Processor,
    /// One-task instance (the anchor) pinning the hyper-period to the
    /// billing horizon: the pricing oracle for this domain.
    oracle: Instance,
    /// Served tasks, in admission order.
    active: Vec<Task>,
    /// Shed-but-present tasks, in shed order: they accrue penalty, hold
    /// their admission reservation, and may be readmitted.
    reserved: Vec<Task>,
    /// Cached `Σ uᵢ` over `active` (recomputed on every mutation).
    committed: f64,
    /// Cached re-solve instance over `active ∪ reserved ∪ {anchor}`,
    /// rebuilt only when that union changes — guard readmissions and
    /// re-solve sheds move tasks *between* the two ledgers without
    /// touching the union, so the instance (and its density order, prefix
    /// sums, and pricing memo) is reused across ticks.
    resolve_cache: Option<Instance>,
    /// The task union changed since `resolve_cache` was built.
    union_dirty: bool,
    /// An arrive/depart/shed/readmit occurred since the last re-solve
    /// concluded for this domain. While false, a re-solve is guaranteed to
    /// reach the same conclusion it just reached ("keep the current
    /// serving choice"), so the engine skips it entirely.
    needs_resolve: bool,
}

impl Domain {
    fn recompute_committed(&mut self) {
        // `Sum<f64>`'s identity is -0.0; `+ 0.0` keeps the empty ledger
        // printing as plain 0 on the wire.
        self.committed = self.active.iter().map(Task::utilization).sum::<f64>() + 0.0;
    }

    /// The admission-pricing utilization: served plus reserved. Identical
    /// to what the never-shedding myopic engine would have committed.
    fn priced(&self) -> f64 {
        self.committed + self.reserved.iter().map(Task::utilization).sum::<f64>()
    }

    /// Marks a change to the `active ∪ reserved` union (arrival accepted,
    /// task departed): the cached instance is stale and the next re-solve
    /// must run.
    fn mark_union_changed(&mut self) {
        self.union_dirty = true;
        self.needs_resolve = true;
    }

    /// Marks a change to the served/reserved *split* only (guard
    /// readmission): the cached instance stays valid but the next
    /// re-solve must run.
    fn mark_split_changed(&mut self) {
        self.needs_resolve = true;
    }
}

/// The event-driven admission-control engine. See the [module
/// docs](self) for the model and the determinism contract.
pub struct AdmissionEngine {
    domains: Vec<Domain>,
    policy: Box<dyn EnginePolicy>,
    config: EngineConfig,
    clock: f64,
    /// Present-but-unserved tasks (rejected or shed, not yet departed),
    /// accruing penalty at `vᵢ/H`: `(id, penalty)`.
    unserved: Vec<(TaskId, f64)>,
    decisions: Vec<Decision>,
    metrics: Metrics,
    ticks_since_resolve: u64,
}

impl AdmissionEngine {
    /// Creates an engine over one processor per power domain.
    ///
    /// # Errors
    ///
    /// * [`AdmitError::NoDomains`] for an empty domain list.
    /// * Oracle-construction errors propagate.
    pub fn new(
        cpus: Vec<Processor>,
        policy: Box<dyn EnginePolicy>,
        config: EngineConfig,
    ) -> Result<Self, AdmitError> {
        if cpus.is_empty() {
            return Err(AdmitError::NoDomains);
        }
        let mut domains = Vec::with_capacity(cpus.len());
        for cpu in cpus {
            let anchor = Task::new(RESERVED_ANCHOR_ID, 0.0, config.horizon)?;
            let oracle = Instance::new(TaskSet::try_from_tasks([anchor])?, cpu.clone())?;
            domains.push(Domain {
                cpu,
                oracle,
                active: Vec::new(),
                reserved: Vec::new(),
                committed: 0.0,
                resolve_cache: None,
                union_dirty: true,
                needs_resolve: false,
            });
        }
        Ok(AdmissionEngine {
            domains,
            policy,
            config,
            clock: 0.0,
            unserved: Vec::new(),
            decisions: Vec::new(),
            metrics: Metrics::default(),
            ticks_since_resolve: 0,
        })
    }

    /// The engine clock (timestamp of the last applied event).
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Number of power domains.
    #[must_use]
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Committed utilization of domain `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn committed(&self, d: usize) -> f64 {
        self.domains[d].committed
    }

    /// Number of active (admitted, not yet departed or shed) tasks on
    /// domain `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn active_len(&self, d: usize) -> usize {
        self.domains[d].active.len()
    }

    /// Number of shed-but-present (reserved) tasks on domain `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn reserved_len(&self, d: usize) -> usize {
        self.domains[d].reserved.len()
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The full decision log, in decision order.
    #[must_use]
    pub fn decision_log(&self) -> &[Decision] {
        &self.decisions
    }

    /// The decision log as one line per decision — the artifact the
    /// determinism suite compares bit-for-bit across thread counts.
    #[must_use]
    pub fn format_decision_log(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// The configured policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Advances the engine clock to `at`, integrating energy (per domain,
    /// at the committed utilization's optimal rate) and unserved-penalty
    /// accrual (`vᵢ/H` per present unserved task). No decisions are made.
    ///
    /// # Errors
    ///
    /// * [`AdmitError::TimeRegression`] if `at` is behind the clock.
    /// * Oracle errors propagate.
    pub fn advance_to(&mut self, at: f64) -> Result<(), AdmitError> {
        if !at.is_finite() || at < self.clock {
            return Err(AdmitError::TimeRegression {
                at,
                clock: self.clock,
            });
        }
        let dt = at - self.clock;
        if dt > 0.0 {
            let mut rate = 0.0;
            for d in &self.domains {
                rate += d.cpu.energy_rate(d.committed).map_err(SchedError::Power)?;
            }
            self.metrics.energy += rate * dt;
            let penalty_rate: f64 =
                self.unserved.iter().map(|(_, v)| v).sum::<f64>() / self.config.horizon as f64;
            self.metrics.penalty_accrued += penalty_rate * dt;
            self.clock = at;
        }
        Ok(())
    }

    /// Applies one event, returning the decisions it produced (the
    /// admission verdict for an arrival; any sheds for a tick or
    /// departure that triggered a re-solve).
    ///
    /// # Errors
    ///
    /// * [`AdmitError::TimeRegression`] for out-of-order timestamps.
    /// * [`AdmitError::DuplicateTask`] / [`AdmitError::ReservedId`] for
    ///   invalid arrivals, [`AdmitError::UnknownTask`] for departures of
    ///   absent tasks.
    /// * Oracle and solver errors propagate.
    pub fn apply(&mut self, event: &EventRecord) -> Result<Vec<Decision>, AdmitError> {
        let handling_started = Instant::now();
        self.advance_to(event.at)?;
        let out = match &event.kind {
            EventKind::Arrive(task) => {
                let started = Instant::now();
                let out = self.arrive(*task);
                self.metrics.latency.record(started.elapsed());
                out
            }
            EventKind::Depart(id) => self.depart(*id),
            EventKind::Tick => self.tick(),
        };
        self.metrics.events += 1;
        self.metrics.handling += handling_started.elapsed();
        out
    }

    fn is_present(&self, id: TaskId) -> bool {
        self.unserved.iter().any(|(u, _)| *u == id)
            || self
                .domains
                .iter()
                .any(|d| d.active.iter().any(|t| t.id() == id))
    }

    fn arrive(&mut self, task: Task) -> Result<Vec<Decision>, AdmitError> {
        self.metrics.arrivals += 1;
        if task.id().index() == RESERVED_ANCHOR_ID {
            return Err(AdmitError::ReservedId(task.id()));
        }
        if self.is_present(task.id()) {
            return Err(AdmitError::DuplicateTask(task.id()));
        }
        // Deterministic placement: among domains that can still fit the
        // task, the one where it is cheapest (smallest marginal energy);
        // ties break towards the lowest index. With identical convex
        // processors this is least-loaded-first. Pricing and feasibility
        // use the *reserved* utilization so the accept/reject trajectory
        // is independent of shedding (see the module docs).
        let mut best: Option<(usize, f64)> = None;
        for (i, d) in self.domains.iter().enumerate() {
            if d.cpu.is_feasible(d.priced() + task.utilization()) {
                let marginal = d
                    .oracle
                    .marginal_energy(d.priced(), task.utilization())
                    .map_err(AdmitError::Sched)?;
                if best.is_none_or(|(_, m)| marginal < m) {
                    best = Some((i, marginal));
                }
            }
        }
        let verdict = match best {
            None => Verdict::Rejected,
            Some((i, _)) => {
                let d = &mut self.domains[i];
                let priced = d.priced();
                if self.policy.decide(&d.oracle, priced, &task)? {
                    d.active.push(task);
                    d.recompute_committed();
                    d.mark_union_changed();
                    Verdict::Accepted { domain: i }
                } else {
                    Verdict::Rejected
                }
            }
        };
        match verdict {
            Verdict::Accepted { .. } => self.metrics.admitted += 1,
            _ => {
                self.metrics.rejected += 1;
                self.metrics.penalty_charged += task.penalty();
                self.unserved.push((task.id(), task.penalty()));
            }
        }
        let decision = Decision {
            at: self.clock,
            task: task.id(),
            verdict,
        };
        self.decisions.push(decision.clone());
        let mut out = vec![decision];
        out.extend(self.guard()?);
        Ok(out)
    }

    /// The serve-all guard: per domain, if the reserved set has stopped
    /// being collectively profitable to keep shed at the current served
    /// load — `H·(rate(u_served + u_reserved) − rate(u_served)) ≤ Σ vᵢ` —
    /// readmit every reserved task. Run after every arrival and
    /// departure, this pins the engine's instantaneous cost rate at or
    /// below the never-shedding myopic engine's (the dominance theorem in
    /// the module docs); the next re-solve may shed any still-profitable
    /// subset again.
    fn guard(&mut self) -> Result<Vec<Decision>, AdmitError> {
        let mut out = Vec::new();
        for i in 0..self.domains.len() {
            let d = &self.domains[i];
            if d.reserved.is_empty() {
                continue;
            }
            let u_reserved: f64 = d.reserved.iter().map(Task::utilization).sum();
            let saving = d
                .oracle
                .marginal_energy(d.committed, u_reserved)
                .map_err(AdmitError::Sched)?;
            let charged: f64 = d.reserved.iter().map(Task::penalty).sum();
            if saving > charged + RESOLVE_EPSILON {
                continue; // shedding still pays for itself
            }
            let d = &mut self.domains[i];
            for task in std::mem::take(&mut d.reserved) {
                if let Some(pos) = self.unserved.iter().position(|(u, _)| *u == task.id()) {
                    self.unserved.remove(pos);
                }
                d.active.push(task);
                self.metrics.readmitted += 1;
                let decision = Decision {
                    at: self.clock,
                    task: task.id(),
                    verdict: Verdict::Readmitted { domain: i },
                };
                self.decisions.push(decision.clone());
                out.push(decision);
            }
            d.recompute_committed();
            // Readmission shuffles the served/reserved split, not the
            // union: the cached re-solve instance stays valid.
            d.mark_split_changed();
        }
        Ok(out)
    }

    fn depart(&mut self, id: TaskId) -> Result<Vec<Decision>, AdmitError> {
        if let Some(pos) = self.unserved.iter().position(|(u, _)| *u == id) {
            self.unserved.remove(pos);
            // A shed task departing also releases its reservation.
            for d in &mut self.domains {
                if let Some(pos) = d.reserved.iter().position(|t| t.id() == id) {
                    d.reserved.remove(pos);
                    d.mark_union_changed();
                }
            }
            self.metrics.departures += 1;
            return self.guard();
        }
        for i in 0..self.domains.len() {
            let d = &mut self.domains[i];
            if let Some(pos) = d.active.iter().position(|t| t.id() == id) {
                d.active.remove(pos);
                d.recompute_committed();
                d.mark_union_changed();
                self.metrics.departures += 1;
                // Departures shift the load downward: first re-check the
                // reserved sets, then revisit commitments when a regret
                // trigger is configured.
                let mut out = self.guard()?;
                if let Some(threshold) = self.config.regret_threshold {
                    if self.regret()? > threshold {
                        out.extend(self.resolve_now()?);
                    }
                }
                return Ok(out);
            }
        }
        Err(AdmitError::UnknownTask(id))
    }

    fn tick(&mut self) -> Result<Vec<Decision>, AdmitError> {
        self.metrics.ticks += 1;
        self.ticks_since_resolve += 1;
        let periodic = self
            .config
            .resolve_every
            .is_some_and(|k| self.ticks_since_resolve >= k);
        let regretful = match self.config.regret_threshold {
            Some(threshold) => self.regret()? > threshold,
            None => false,
        };
        if periodic || regretful {
            self.resolve_now()
        } else {
            Ok(Vec::new())
        }
    }

    /// Estimated profit of shedding, summed over all active tasks whose
    /// removal saves more energy (per horizon) than it charges in penalty:
    /// `Σ max(0, ΔE(uᵢ) − vᵢ)`. Zero when every commitment is still
    /// profitable. This is the trigger quantity for
    /// [`EngineConfig::regret_threshold`].
    ///
    /// # Errors
    ///
    /// Oracle errors propagate.
    pub fn regret(&self) -> Result<f64, AdmitError> {
        let mut total = 0.0;
        for d in &self.domains {
            for t in &d.active {
                let saving = d
                    .oracle
                    .marginal_energy(d.committed - t.utilization(), t.utilization())
                    .map_err(AdmitError::Sched)?;
                total += (saving - t.penalty()).max(0.0);
            }
        }
        Ok(total)
    }

    /// Runs a budgeted offline re-solve over each domain's served *and*
    /// reserved tasks, shedding the tasks the solver drops (charging
    /// their rejection penalties) and readmitting reserved tasks it picks
    /// back up. Returns the shed/readmit decisions.
    ///
    /// The solver is the *sequential* anytime branch & bound under the
    /// configured node budget (bit-deterministic regardless of
    /// `DVS_THREADS`); instances above its size limit fall back to the
    /// deterministic marginal-greedy heuristic. A domain is only touched
    /// when the re-solve strictly improves on its current serving choice.
    ///
    /// # Errors
    ///
    /// Solver errors (other than the size fallback) propagate.
    pub fn resolve_now(&mut self) -> Result<Vec<Decision>, AdmitError> {
        self.ticks_since_resolve = 0;
        let mut out = Vec::new();
        for i in 0..self.domains.len() {
            let (to_shed, to_readmit) = {
                {
                    let d = &mut self.domains[i];
                    if d.active.is_empty() && d.reserved.is_empty() {
                        continue;
                    }
                    // Short-circuit: nothing arrived, departed, shed, or
                    // was readmitted since the last re-solve concluded, so
                    // running it again is guaranteed to reach the same
                    // "keep the current serving choice" conclusion.
                    if !d.needs_resolve {
                        self.metrics.resolves_skipped += 1;
                        continue;
                    }
                    if d.union_dirty || d.resolve_cache.is_none() {
                        let anchor = Task::new(RESERVED_ANCHOR_ID, 0.0, self.config.horizon)?;
                        let mut tasks = d.active.clone();
                        tasks.extend(d.reserved.iter().copied());
                        tasks.push(anchor);
                        d.resolve_cache = Some(Instance::new(
                            TaskSet::try_from_tasks(tasks)?,
                            d.cpu.clone(),
                        )?);
                        d.union_dirty = false;
                    }
                }
                let d = &self.domains[i];
                let instance = d.resolve_cache.as_ref().expect("rebuilt above");
                let mut served_ids: Vec<TaskId> = d.active.iter().map(Task::id).collect();
                served_ids.push(TaskId::new(RESERVED_ANCHOR_ID));
                let current =
                    Solution::for_accepted(instance, "engine-active", served_ids.clone())?;
                let budget = SolveBudget::nodes(self.config.resolve_budget);
                let solved = if self.config.warm_start {
                    BranchBound::default().solve_within_seeded(instance, &budget, &served_ids)
                } else {
                    BranchBound::default().solve_within(instance, &budget)
                };
                let (resolved, degraded, nodes) = match solved {
                    Ok(any) => (
                        any.solution,
                        any.quality == SolveQuality::Degraded,
                        any.nodes_used,
                    ),
                    Err(SchedError::TooLarge { .. }) => (MarginalGreedy.solve(instance)?, true, 0),
                    Err(e) => return Err(AdmitError::Sched(e)),
                };
                self.metrics.resolves += 1;
                self.metrics.resolves_degraded += u64::from(degraded);
                self.metrics.resolve_nodes += nodes;
                if resolved.cost() + RESOLVE_EPSILON >= current.cost() {
                    // Keeping the current serving choice is best; until the
                    // ledger changes, re-solving again cannot conclude
                    // otherwise.
                    self.domains[i].needs_resolve = false;
                    continue;
                }
                let diff = current.diff(&resolved);
                let shed: Vec<TaskId> = diff
                    .removed
                    .into_iter()
                    .filter(|id| id.index() != RESERVED_ANCHOR_ID)
                    .collect();
                (shed, diff.added)
            };
            if to_shed.is_empty() && to_readmit.is_empty() {
                self.domains[i].needs_resolve = false;
                continue;
            }
            let d = &mut self.domains[i];
            for id in &to_readmit {
                if let Some(pos) = d.reserved.iter().position(|t| t.id() == *id) {
                    let task = d.reserved.remove(pos);
                    if let Some(upos) = self.unserved.iter().position(|(u, _)| *u == *id) {
                        self.unserved.remove(upos);
                    }
                    d.active.push(task);
                    self.metrics.readmitted += 1;
                    let decision = Decision {
                        at: self.clock,
                        task: *id,
                        verdict: Verdict::Readmitted { domain: i },
                    };
                    self.decisions.push(decision.clone());
                    out.push(decision);
                }
            }
            for id in &to_shed {
                if let Some(pos) = d.active.iter().position(|t| t.id() == *id) {
                    let task = d.active.remove(pos);
                    self.unserved.push((task.id(), task.penalty()));
                    d.reserved.push(task);
                    self.metrics.shed += 1;
                    self.metrics.penalty_charged += task.penalty();
                    let decision = Decision {
                        at: self.clock,
                        task: *id,
                        verdict: Verdict::Shed { domain: i },
                    };
                    self.decisions.push(decision.clone());
                    out.push(decision);
                }
            }
            d.recompute_committed();
            // The sheds/readmits applied above ARE the re-solve's
            // conclusion: re-solving the (unchanged) union again would
            // find the serving choice it just installed.
            d.needs_resolve = false;
        }
        Ok(out)
    }

    /// The metrics registry plus engine gauges as one flat JSON object —
    /// the payload of the server's `stats` response and shutdown dump.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let m = &self.metrics;
        let committed: Vec<String> = self
            .domains
            .iter()
            .map(|d| format!("{}", d.committed))
            .collect();
        let active: Vec<String> = self
            .domains
            .iter()
            .map(|d| d.active.len().to_string())
            .collect();
        format!(
            "{{\"op\":\"stats\",\"policy\":\"{}\",\"clock\":{},\"threads\":{},\
             \"domains\":{},\"active\":[{}],\"committed\":[{}],\
             \"arrivals\":{},\"accepted\":{},\"admitted\":{},\"rejected\":{},\"shed\":{},\
             \"shed_total\":{},\"readmitted\":{},\
             \"departures\":{},\"ticks\":{},\"resolves\":{},\"resolves_degraded\":{},\
             \"resolves_skipped\":{},\"resolve_nodes\":{},\
             \"events\":{},\"events_per_sec\":{},\
             \"energy\":{},\"penalty_accrued\":{},\
             \"penalty_charged\":{},\"total_cost\":{},\"latency_us_log2\":{}}}",
            self.policy.name(),
            self.clock,
            dvs_exec::num_threads(),
            self.domains.len(),
            active.join(","),
            committed.join(","),
            m.arrivals,
            m.accepted(),
            m.admitted,
            m.rejected,
            m.standing_shed(),
            m.shed,
            m.readmitted,
            m.departures,
            m.ticks,
            m.resolves,
            m.resolves_degraded,
            m.resolves_skipped,
            m.resolve_nodes,
            m.events,
            m.events_per_sec(),
            m.energy,
            m.penalty_accrued,
            m.penalty_charged,
            m.total_cost(),
            m.latency.to_json()
        )
    }
}

impl std::fmt::Debug for AdmissionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionEngine")
            .field("policy", &self.policy.name())
            .field("clock", &self.clock)
            .field("domains", &self.domains.len())
            .field("decisions", &self.decisions.len())
            .finish_non_exhaustive()
    }
}
