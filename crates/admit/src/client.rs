//! A resilient line-protocol client for `dvs_admitd`.
//!
//! [`AdmitClient`] wraps one logical request stream to an admission
//! server with the retry machinery a failover deployment needs:
//!
//! * **Reconnect with exponential backoff and deterministic jitter**
//!   ([`replication::backoff_delay`]) — transient connect failures and
//!   dropped connections are retried up to
//!   [`ClientConfig::max_attempts`] times per request.
//! * **Request timeouts** — a server that accepts the connection but
//!   never answers is abandoned, not waited on forever.
//! * **A circuit breaker** — after
//!   [`ClientConfig::breaker_threshold`] consecutive request failures
//!   the breaker *trips*: for [`ClientConfig::breaker_cooldown`] the
//!   client stops hammering the dead server and, if a [`LocalMyopic`]
//!   fallback is installed, answers arrive requests **degraded-locally**
//!   with the same myopic pricing rule the engine itself uses (responses
//!   carry `"degraded":true` so callers can tell). After the cooldown
//!   one probe request is allowed through (half-open); success closes
//!   the breaker.
//! * **Exactly-once replay across failover** ([`AdmitClient::replay`]).
//!   The engine's `events` counter — returned by `{"op":"stats"}` and
//!   preserved across failover because the follower replays the
//!   primary's journal — is a *cursor* into the client's event stream.
//!   On reconnect the client compares the server cursor against its own
//!   applied count: a request whose response was lost but which did
//!   apply is **not** resent (cursor advanced past it); one that never
//!   applied is resent. Validate-before-mutate idempotency on the server
//!   (`duplicate-task` / `already-departed` are rejected without
//!   mutating) backstops the rare ambiguous resend.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dvs_power::Processor;
use reject_sched::Instance;
use rt_model::{Task, TaskSet};

use crate::engine::{EnginePolicy, RESERVED_ANCHOR_ID};
use crate::json::{self, JsonValue};
use crate::replication::backoff_delay;
use crate::AdmitError;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Per-request response timeout.
    pub request_timeout: Duration,
    /// Connect timeout.
    pub connect_timeout: Duration,
    /// Total connect+send attempts per request before giving up.
    pub max_attempts: u32,
    /// Reconnect backoff base (doubled per consecutive failure, jittered).
    pub backoff_base: Duration,
    /// Reconnect backoff cap.
    pub backoff_cap: Duration,
    /// Consecutive request failures that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before a half-open probe.
    pub breaker_cooldown: Duration,
    /// Jitter seed (deterministic backoff in tests).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: String::new(),
            request_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(250),
            max_attempts: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            seed: 0xC11E_27B5,
        }
    }
}

/// Monotone counters describing the client's retry behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientMetrics {
    /// Requests answered by a server.
    pub responses: u64,
    /// Connect or send/receive attempts that failed and were retried.
    pub retries: u64,
    /// Fresh TCP connections established (the first one included).
    pub connects: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Requests answered by the local degraded fallback.
    pub degraded_decisions: u64,
    /// Replay resends suppressed because the server cursor showed the
    /// event had already applied (response lost in the failover).
    pub resend_suppressed: u64,
    /// Replay lines resent after a failover.
    pub resent: u64,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// All attempts failed and no fallback could answer.
    Unavailable {
        /// Attempts made.
        attempts: u32,
        /// The last I/O error observed.
        last: std::io::Error,
    },
    /// The server answered with something the client cannot parse.
    Protocol(String),
    /// A local fallback decision failed (oracle error).
    Fallback(AdmitError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Unavailable { attempts, last } => {
                write!(f, "server unavailable after {attempts} attempts: {last}")
            }
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Fallback(e) => write!(f, "fallback error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// The degraded local decision-maker: a single-domain myopic admission
/// rule priced by the same billing-horizon oracle the engine uses.
/// Decisions made here are **advisory** — they are not journaled and not
/// replicated — but they let a latency-critical caller keep answering
/// while the servers fail over.
pub struct LocalMyopic {
    oracle: Instance,
    policy: Box<dyn EnginePolicy>,
    committed: f64,
}

impl std::fmt::Debug for LocalMyopic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalMyopic")
            .field("policy", &self.policy.name())
            .field("committed", &self.committed)
            .finish()
    }
}

impl LocalMyopic {
    /// Builds a fallback over one power domain, pricing against `horizon`
    /// (use the server's `EngineConfig::horizon` for matching economics).
    ///
    /// # Errors
    ///
    /// Propagates model/oracle construction errors.
    pub fn new(
        cpu: Processor,
        policy: Box<dyn EnginePolicy>,
        horizon: u64,
    ) -> Result<Self, AdmitError> {
        let anchor = Task::new(RESERVED_ANCHOR_ID, 0.0, horizon)?;
        let oracle = Instance::new(TaskSet::try_from_tasks([anchor])?, cpu)?;
        Ok(LocalMyopic {
            oracle,
            policy,
            committed: 0.0,
        })
    }

    /// Decides an arrival locally, committing its utilization on accept
    /// (mirroring the engine's single-domain arrive accounting).
    ///
    /// # Errors
    ///
    /// Propagates oracle errors.
    pub fn decide(&mut self, task: &Task) -> Result<bool, AdmitError> {
        let admit = self.policy.decide(&self.oracle, self.committed, task)?;
        if admit {
            self.committed += task.utilization();
        }
        Ok(admit)
    }

    /// Releases a previously committed task's utilization (departure).
    pub fn release(&mut self, task_utilization: f64) {
        self.committed = (self.committed - task_utilization).max(0.0);
    }
}

/// Breaker state.
#[derive(Debug)]
enum Breaker {
    Closed,
    Open { since: Instant },
}

/// What a replayed line resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayDisposition {
    /// Applied by this replay (normal path).
    Applied,
    /// The server cursor showed it had applied before the failover;
    /// resend suppressed.
    AlreadyApplied,
    /// Resent and rejected as a benign duplicate
    /// (`duplicate-task` / `already-departed`) — it was applied earlier.
    DuplicateResend,
}

/// Result of [`AdmitClient::replay`].
#[derive(Debug, Default)]
pub struct ReplayReport {
    /// Per-line responses (the server's JSON, or the suppression marker).
    pub responses: Vec<String>,
    /// Per-line dispositions, parallel to `responses`.
    pub dispositions: Vec<ReplayDisposition>,
    /// Reconnections that interrupted the replay.
    pub interruptions: u64,
}

/// A resilient admission client (see the module docs).
#[derive(Debug)]
pub struct AdmitClient {
    config: ClientConfig,
    conn: Option<BufReader<TcpStream>>,
    metrics: ClientMetrics,
    consecutive_failures: u32,
    breaker: Breaker,
    fallback: Option<LocalMyopic>,
    rng: u64,
}

impl AdmitClient {
    /// A client for `config.addr`, not yet connected (the first request
    /// connects).
    #[must_use]
    pub fn new(config: ClientConfig) -> Self {
        let rng = config.seed;
        AdmitClient {
            config,
            conn: None,
            metrics: ClientMetrics::default(),
            consecutive_failures: 0,
            breaker: Breaker::Closed,
            fallback: None,
            rng,
        }
    }

    /// Installs a degraded-mode local decision-maker used while the
    /// breaker is open.
    #[must_use]
    pub fn with_fallback(mut self, fallback: LocalMyopic) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// The retry/breaker counters.
    #[must_use]
    pub fn metrics(&self) -> ClientMetrics {
        self.metrics
    }

    /// Whether the breaker is currently open (cooldown not elapsed).
    #[must_use]
    pub fn breaker_open(&self) -> bool {
        match self.breaker {
            Breaker::Closed => false,
            Breaker::Open { since } => since.elapsed() < self.config.breaker_cooldown,
        }
    }

    fn connect(&mut self) -> std::io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        // `connect_timeout` needs a resolved SocketAddr; resolve through
        // std's ToSocketAddrs and try each candidate.
        let mut last = std::io::Error::new(std::io::ErrorKind::NotFound, "no address resolved");
        let addrs = std::net::ToSocketAddrs::to_socket_addrs(&self.config.addr)?;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.config.request_timeout))?;
                    let _ = stream.set_nodelay(true);
                    self.conn = Some(BufReader::new(stream));
                    self.metrics.connects += 1;
                    return Ok(());
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One send-and-read attempt over the current (or a fresh) connection.
    fn attempt(&mut self, line: &str) -> std::io::Result<String> {
        self.connect()?;
        let conn = self.conn.as_mut().expect("connected above");
        let send = conn
            .get_mut()
            .write_all(line.as_bytes())
            .and_then(|()| conn.get_mut().write_all(b"\n"))
            .and_then(|()| conn.get_mut().flush());
        if let Err(e) = send {
            self.conn = None;
            return Err(e);
        }
        let mut response = String::new();
        match conn.read_line(&mut response) {
            Ok(0) => {
                self.conn = None;
                Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            }
            Ok(_) => Ok(response.trim_end().to_string()),
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Sends one request line and returns the server's response line,
    /// retrying with backoff across connection failures. While the
    /// breaker is open, arrive requests are answered by the local
    /// fallback (if installed) and everything else fails fast.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unavailable`] when every attempt failed and no
    /// fallback could answer; [`ClientError::Fallback`] when the local
    /// decision itself errored.
    pub fn request(&mut self, line: &str) -> Result<String, ClientError> {
        if self.breaker_open() {
            return self.degrade(line, None);
        }
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..self.config.max_attempts {
            if attempt > 0 {
                self.metrics.retries += 1;
                let delay = backoff_delay(
                    self.config.backoff_base,
                    self.config.backoff_cap,
                    attempt - 1,
                    &mut self.rng,
                );
                std::thread::sleep(delay);
            }
            match self.attempt(line) {
                Ok(response) => {
                    self.consecutive_failures = 0;
                    self.breaker = Breaker::Closed;
                    self.metrics.responses += 1;
                    return Ok(response);
                }
                Err(e) => last = Some(e),
            }
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.config.breaker_threshold {
            if !matches!(self.breaker, Breaker::Open { .. }) {
                self.metrics.breaker_trips += 1;
            }
            self.breaker = Breaker::Open {
                since: Instant::now(),
            };
        }
        self.degrade(line, last)
    }

    /// Answers locally (arrive requests, fallback installed) or reports
    /// unavailability.
    fn degrade(&mut self, line: &str, last: Option<std::io::Error>) -> Result<String, ClientError> {
        let unavailable = |attempts, last: Option<std::io::Error>| ClientError::Unavailable {
            attempts,
            last: last.unwrap_or_else(|| std::io::Error::other("breaker open")),
        };
        let Some(fallback) = self.fallback.as_mut() else {
            return Err(unavailable(self.config.max_attempts, last));
        };
        let mut scratch = json::Scratch::default();
        let Ok(pairs) = json::parse_object_into(line, &mut scratch) else {
            return Err(unavailable(self.config.max_attempts, last));
        };
        let op = json::get(pairs, "op").and_then(JsonValue::as_str);
        match op {
            Some("arrive") => {
                let task = parse_arrive_task(pairs).map_err(ClientError::Protocol)?;
                let admit = fallback.decide(&task).map_err(ClientError::Fallback)?;
                self.metrics.degraded_decisions += 1;
                let id = task.id();
                Ok(if admit {
                    format!(
                        "{{\"ok\":true,\"decision\":\"accepted\",\"id\":{id},\"degraded\":true}}"
                    )
                } else {
                    format!(
                        "{{\"ok\":true,\"decision\":\"rejected\",\"id\":{id},\"degraded\":true}}"
                    )
                })
            }
            _ => Err(unavailable(self.config.max_attempts, last)),
        }
    }

    /// The server's event cursor: the engine's `events` counter from
    /// `{"op":"stats"}`. Survives failover (the follower replays the
    /// primary's journal), which is what makes it usable as a replay
    /// resume point.
    ///
    /// # Errors
    ///
    /// Propagates request failures; [`ClientError::Protocol`] when the
    /// stats dump has no `events` field.
    pub fn cursor(&mut self) -> Result<u64, ClientError> {
        let response = self.request("{\"op\":\"stats\"}")?;
        parse_events(&response)
            .ok_or_else(|| ClientError::Protocol(format!("no events counter in {response}")))
    }

    /// Replays `lines` (one event request per line, each of which applies
    /// exactly one engine event) with exactly-once semantics across
    /// failover: `base` is the server cursor before the first line — pass
    /// [`AdmitClient::cursor`] taken before sending, or 0 for a fresh
    /// server. When a request fails mid-stream the client reconnects
    /// (waiting out the breaker if it tripped), re-reads the cursor, and
    /// resumes: lines the cursor shows as applied are **not** resent.
    ///
    /// # Errors
    ///
    /// Gives up when a line cannot be delivered after the configured
    /// retries *and* the cursor cannot be re-read; the report's
    /// `responses` then covers the delivered prefix.
    pub fn replay(&mut self, lines: &[String], base: u64) -> Result<ReplayReport, ClientError> {
        let mut report = ReplayReport::default();
        let mut applied: u64 = 0;
        let mut i = 0usize;
        while i < lines.len() {
            match self.request(&lines[i]) {
                Ok(response) => {
                    let disposition = if is_benign_duplicate(&response) {
                        self.metrics.resent += 1;
                        ReplayDisposition::DuplicateResend
                    } else {
                        ReplayDisposition::Applied
                    };
                    report.responses.push(response);
                    report.dispositions.push(disposition);
                    applied += 1;
                    i += 1;
                }
                Err(_) => {
                    report.interruptions += 1;
                    // Wait out the breaker, then re-read the cursor to
                    // learn how far the stream really got.
                    self.wait_breaker();
                    let target = self.cursor()?.saturating_sub(base);
                    if target > applied {
                        // The in-flight line applied; its response was
                        // lost to the failover. Do not resend.
                        report
                            .responses
                            .push("{\"ok\":true,\"resumed\":true}".to_string());
                        report.dispositions.push(ReplayDisposition::AlreadyApplied);
                        self.metrics.resend_suppressed += 1;
                        applied += 1;
                        i += 1;
                    }
                    // target == applied: the line never applied — loop
                    // resends it.
                }
            }
        }
        Ok(report)
    }

    fn wait_breaker(&mut self) {
        while self.breaker_open() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Parses an arrive request into a [`Task`] (same fields as the server).
fn parse_arrive_task(pairs: &[(String, JsonValue)]) -> Result<Task, String> {
    let num = |key: &str| {
        json::get(pairs, key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric field \"{key}\""))
    };
    let id = num("id")? as usize;
    let cycles = num("cycles")?;
    let period = num("period")? as u64;
    let penalty = num("penalty")?;
    let mut task = Task::new(id, cycles, period)
        .map_err(|e| e.to_string())?
        .with_penalty(penalty);
    if let Some(d) = json::get(pairs, "deadline").and_then(JsonValue::as_f64) {
        task = task.with_deadline(d as u64).map_err(|e| e.to_string())?;
    }
    Ok(task)
}

/// Extracts the `events` counter from a stats dump.
fn parse_events(stats: &str) -> Option<u64> {
    let doc = json::parse_document(stats).ok()?;
    let obj = doc.as_obj()?;
    json::get(obj, "events")
        .and_then(JsonValue::as_f64)
        .map(|v| v as u64)
}

/// Whether a response is the benign rejection of a resent duplicate.
fn is_benign_duplicate(response: &str) -> bool {
    if !response.contains("\"ok\":false") {
        return false;
    }
    response.contains("\"kind\":\"duplicate-task\"")
        || response.contains("\"kind\":\"already-departed\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_power::presets::cubic_ideal;
    use reject_sched::online::OnlineGreedy;

    #[test]
    fn local_myopic_admits_until_capacity_prices_out() {
        let mut local = LocalMyopic::new(cubic_ideal(), Box::new(OnlineGreedy), 1000).unwrap();
        // Cheap, high-penalty task: admitted.
        let t = Task::new(1, 10.0, 1000).unwrap().with_penalty(100.0);
        assert!(local.decide(&t).unwrap());
        // Utilization was committed.
        assert!(local.committed > 0.0);
        // A worthless expensive task at committed load: rejected.
        let t = Task::new(2, 900.0, 1000).unwrap().with_penalty(1e-9);
        assert!(!local.decide(&t).unwrap());
        let before = local.committed;
        local.release(0.005);
        assert!(local.committed < before);
    }

    #[test]
    fn breaker_trips_after_threshold_and_degrades_arrivals() {
        // Point the client at a port nothing listens on.
        let config = ClientConfig {
            addr: "127.0.0.1:1".to_string(),
            request_timeout: Duration::from_millis(50),
            connect_timeout: Duration::from_millis(20),
            max_attempts: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(60),
            ..ClientConfig::default()
        };
        let fallback = LocalMyopic::new(cubic_ideal(), Box::new(OnlineGreedy), 1000).unwrap();
        let mut client = AdmitClient::new(config).with_fallback(fallback);
        let arrive = r#"{"op":"arrive","at":0,"id":1,"cycles":30.0,"period":1000,"penalty":2.5}"#;
        // First failure: fallback answers (degraded), breaker still closed.
        let r = client.request(arrive).unwrap();
        assert!(r.contains("\"degraded\":true"), "{r}");
        assert!(!client.breaker_open());
        // Second failure trips the breaker.
        let arrive2 = r#"{"op":"arrive","at":1,"id":2,"cycles":30.0,"period":1000,"penalty":2.5}"#;
        let r = client.request(arrive2).unwrap();
        assert!(r.contains("\"degraded\":true"), "{r}");
        assert!(client.breaker_open());
        assert_eq!(client.metrics().breaker_trips, 1);
        // While open, arrivals answer instantly from the fallback…
        let arrive3 = r#"{"op":"arrive","at":2,"id":3,"cycles":30.0,"period":1000,"penalty":2.5}"#;
        let started = Instant::now();
        let r = client.request(arrive3).unwrap();
        assert!(r.contains("\"degraded\":true"), "{r}");
        assert!(
            started.elapsed() < Duration::from_millis(40),
            "no dial while open"
        );
        // …and non-arrive requests fail fast.
        assert!(matches!(
            client.request("{\"op\":\"stats\"}"),
            Err(ClientError::Unavailable { .. })
        ));
        assert_eq!(client.metrics().degraded_decisions, 3);
    }

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        for attempt in 0..6 {
            let base = Duration::from_millis(10);
            let cap = Duration::from_millis(200);
            assert_eq!(
                backoff_delay(base, cap, attempt, &mut a),
                backoff_delay(base, cap, attempt, &mut b)
            );
        }
        // Exponential up to the cap (jitter bounded by base).
        let mut rng = 7u64;
        let d0 = backoff_delay(
            Duration::from_millis(10),
            Duration::from_millis(200),
            0,
            &mut rng,
        );
        let d4 = backoff_delay(
            Duration::from_millis(10),
            Duration::from_millis(200),
            4,
            &mut rng,
        );
        assert!(d0 < Duration::from_millis(21));
        assert!(d4 >= Duration::from_millis(160));
        assert!(d4 <= Duration::from_millis(211));
    }

    #[test]
    fn benign_duplicate_detection_matches_server_error_shapes() {
        assert!(is_benign_duplicate(
            r#"{"ok":false,"kind":"duplicate-task","error":"task 1 is already present","id":1}"#
        ));
        assert!(is_benign_duplicate(
            r#"{"ok":false,"kind":"already-departed","error":"task 1 already departed","id":1}"#
        ));
        assert!(!is_benign_duplicate(
            r#"{"ok":false,"kind":"bad-request","error":"nope"}"#
        ));
        assert!(!is_benign_duplicate(
            r#"{"ok":true,"decision":"accepted","id":1}"#
        ));
    }
}
