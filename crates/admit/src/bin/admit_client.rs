//! `admit_client` — resilient command-line client for `dvs_admitd`.
//!
//! ```text
//! admit_client --addr HOST:PORT [--one REQUEST]
//!              [--base N] [--attempts N] [--timeout-ms MS]
//!              [--breaker N] [--cooldown-ms MS] [--seed N]
//!              [--fallback [--power xscale|cubic|xscale-table] [--horizon H]]
//!
//!   --addr HOST:PORT  the admission server (a failover deployment's
//!                     current primary — after failover, point at the
//!                     promoted follower and rerun with the same input)
//!   --one REQUEST     send a single request line and print the response
//!   (default)         replay stdin's JSONL event stream with exactly-once
//!                     semantics: the server's `events` cursor decides
//!                     whether an interrupted line is resent (see
//!                     `dvs_admit::client`)
//!   --base N          server cursor before this stream started (default:
//!                     read `{"op":"stats"}` before the first line)
//!   --attempts N      connect/send attempts per request (default 5)
//!   --timeout-ms MS   per-request response timeout (default 2000)
//!   --breaker N       consecutive failures that trip the circuit breaker
//!   --cooldown-ms MS  how long a tripped breaker stays open
//!   --seed N          backoff-jitter seed (deterministic retries)
//!   --fallback        answer arrivals locally (degraded myopic pricing)
//!                     while the breaker is open
//! ```
//!
//! Responses are printed one per input line; the final line on stderr is
//! the client's retry/breaker counters as JSON.

use std::io::BufRead;
use std::process::ExitCode;
use std::time::Duration;

use dvs_admit::{AdmitClient, ClientConfig, LocalMyopic};
use dvs_power::presets::{cubic_ideal, xscale_ideal, xscale_measured};
use reject_sched::online::OnlineGreedy;

#[allow(clippy::too_many_lines)]
fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ClientConfig::default();
    let mut one: Option<String> = None;
    let mut base: Option<u64> = None;
    let mut fallback = false;
    let mut power = "xscale".to_string();
    let mut horizon: u64 = 1000;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => config.addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--one" => one = Some(it.next().ok_or("--one needs a request line")?.clone()),
            "--base" => {
                base = Some(
                    it.next()
                        .ok_or("--base needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --base: {e}"))?,
                );
            }
            "--attempts" => {
                config.max_attempts = it
                    .next()
                    .ok_or("--attempts needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --attempts: {e}"))?;
            }
            "--timeout-ms" => {
                config.request_timeout = Duration::from_millis(
                    it.next()
                        .ok_or("--timeout-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --timeout-ms: {e}"))?,
                );
            }
            "--breaker" => {
                config.breaker_threshold = it
                    .next()
                    .ok_or("--breaker needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --breaker: {e}"))?;
            }
            "--cooldown-ms" => {
                config.breaker_cooldown = Duration::from_millis(
                    it.next()
                        .ok_or("--cooldown-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --cooldown-ms: {e}"))?,
                );
            }
            "--seed" => {
                config.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--fallback" => fallback = true,
            "--power" => power = it.next().ok_or("--power needs a value")?.clone(),
            "--horizon" => {
                horizon = it
                    .next()
                    .ok_or("--horizon needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --horizon: {e}"))?;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: admit_client --addr HOST:PORT [--one REQUEST] [--base N] \
                     [--attempts N] [--timeout-ms MS] [--breaker N] [--cooldown-ms MS] \
                     [--seed N] [--fallback] [--power xscale|cubic|xscale-table] \
                     [--horizon H]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if config.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    let mut client = AdmitClient::new(config);
    if fallback {
        let cpu = match power.as_str() {
            "xscale" => xscale_ideal(),
            "cubic" => cubic_ideal(),
            "xscale-table" => xscale_measured(),
            other => return Err(format!("unknown power model {other}")),
        };
        let local =
            LocalMyopic::new(cpu, Box::new(OnlineGreedy), horizon).map_err(|e| e.to_string())?;
        client = client.with_fallback(local);
    }
    if let Some(line) = one {
        let response = client.request(&line).map_err(|e| e.to_string())?;
        println!("{response}");
        return Ok(());
    }
    let stdin = std::io::stdin();
    let lines: Vec<String> = stdin
        .lock()
        .lines()
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty())
        .collect();
    let base = match base {
        Some(b) => b,
        None => client.cursor().map_err(|e| e.to_string())?,
    };
    let report = client.replay(&lines, base).map_err(|e| e.to_string())?;
    for response in &report.responses {
        println!("{response}");
    }
    let m = client.metrics();
    eprintln!(
        "{{\"responses\":{},\"retries\":{},\"connects\":{},\"breaker_trips\":{},\
         \"degraded\":{},\"resent\":{},\"resend_suppressed\":{},\"interruptions\":{}}}",
        m.responses,
        m.retries,
        m.connects,
        m.breaker_trips,
        m.degraded_decisions,
        m.resent,
        m.resend_suppressed,
        report.interruptions
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
