//! `dvs_admitd` — the admission-control server.
//!
//! ```text
//! dvs_admitd (--stdin | --listen ADDR | --replay FILE)
//!            [--policy greedy|threshold=θ|watermark=HI,LO,θ]
//!            [--power xscale|cubic|xscale-table] [--domains N]
//!            [--horizon H] [--resolve-every K] [--regret R] [--budget N]
//!            [--threads N]
//!
//!   --stdin          serve newline-delimited JSON on stdin/stdout (default)
//!   --listen ADDR    serve TCP connections on ADDR (e.g. 127.0.0.1:7070);
//!                    prints "listening on ADDR" once bound
//!   --replay FILE    replay an event-trace file (rt_model::io format) and
//!                    print the final stats line
//!   --policy         admission rule (default greedy); threshold=θ hedges
//!                    admissions by θ ≥ 1; watermark=HI,LO,θ adds hysteresis
//!   --power          power model per domain (default xscale)
//!   --domains N      number of identical power domains (default 1)
//!   --horizon H      billing horizon in ticks (default 1000)
//!   --resolve-every K  re-solve every K-th tick (0 disables; default 1)
//!   --regret R       also re-solve when shedding profit exceeds R
//!   --budget N       re-solve node budget (default 20000)
//!   --threads N      set DVS_THREADS for this process (decision logs are
//!                    identical for any N — see the determinism contract)
//! ```
//!
//! The protocol is documented in `dvs_admit::server`. On EOF or a
//! `shutdown` request the final stats line is printed (to stdout in
//! `--stdin`/`--replay` mode, to stderr in `--listen` mode).

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use dvs_admit::server::{serve_lines, serve_tcp};
use dvs_admit::{AdmissionEngine, EngineConfig, EnginePolicy, WatermarkPolicy};
use dvs_power::presets::{cubic_ideal, xscale_ideal, xscale_measured};
use dvs_power::Processor;
use reject_sched::online::{OnlineGreedy, ThresholdPolicy};
use rt_model::io::load_event_trace;

enum Mode {
    Stdin,
    Listen(String),
    Replay(String),
}

fn parse_policy(spec: &str) -> Result<Box<dyn EnginePolicy>, String> {
    if spec == "greedy" {
        return Ok(Box::new(OnlineGreedy));
    }
    if let Some(theta) = spec.strip_prefix("threshold=") {
        let theta: f64 = theta.parse().map_err(|e| format!("bad θ: {e}"))?;
        return Ok(Box::new(
            ThresholdPolicy::new(theta).map_err(|e| e.to_string())?,
        ));
    }
    if let Some(params) = spec.strip_prefix("watermark=") {
        let parts: Vec<&str> = params.split(',').collect();
        if parts.len() != 3 {
            return Err("watermark needs HI,LO,θ".to_string());
        }
        let high: f64 = parts[0].parse().map_err(|e| format!("bad HI: {e}"))?;
        let low: f64 = parts[1].parse().map_err(|e| format!("bad LO: {e}"))?;
        let theta: f64 = parts[2].parse().map_err(|e| format!("bad θ: {e}"))?;
        return Ok(Box::new(
            WatermarkPolicy::new(high, low, theta).map_err(|e| e.to_string())?,
        ));
    }
    Err(format!("unknown policy {spec} (see --help)"))
}

fn parse_power(model: &str) -> Result<Processor, String> {
    Ok(match model {
        "xscale" => xscale_ideal(),
        "cubic" => cubic_ideal(),
        "xscale-table" => xscale_measured(),
        _ => return Err(format!("unknown power model {model} (see --help)")),
    })
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = Mode::Stdin;
    let mut policy = "greedy".to_string();
    let mut model = "xscale".to_string();
    let mut domains = 1usize;
    let mut config = EngineConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stdin" => mode = Mode::Stdin,
            "--listen" => {
                mode = Mode::Listen(it.next().ok_or("--listen needs an address")?.clone());
            }
            "--replay" => {
                mode = Mode::Replay(it.next().ok_or("--replay needs a file")?.clone());
            }
            "--policy" => policy = it.next().ok_or("--policy needs a value")?.clone(),
            "--power" => model = it.next().ok_or("--power needs a value")?.clone(),
            "--domains" => {
                domains = it
                    .next()
                    .ok_or("--domains needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --domains: {e}"))?;
            }
            "--horizon" => {
                config = config.horizon(
                    it.next()
                        .ok_or("--horizon needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --horizon: {e}"))?,
                );
            }
            "--resolve-every" => {
                config = config.resolve_every(
                    it.next()
                        .ok_or("--resolve-every needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --resolve-every: {e}"))?,
                );
            }
            "--regret" => {
                config = config.regret_threshold(
                    it.next()
                        .ok_or("--regret needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --regret: {e}"))?,
                );
            }
            "--budget" => {
                config = config.resolve_budget(
                    it.next()
                        .ok_or("--budget needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --budget: {e}"))?,
                );
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                std::env::set_var(dvs_exec::THREADS_ENV, n.to_string());
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: dvs_admitd (--stdin | --listen ADDR | --replay FILE) \
                     [--policy greedy|threshold=T|watermark=HI,LO,T] \
                     [--power xscale|cubic|xscale-table] [--domains N] [--horizon H] \
                     [--resolve-every K] [--regret R] [--budget N] [--threads N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if domains == 0 {
        return Err("--domains must be at least 1".to_string());
    }
    let cpus: Vec<Processor> = (0..domains)
        .map(|_| parse_power(&model))
        .collect::<Result<_, _>>()?;
    let engine =
        AdmissionEngine::new(cpus, parse_policy(&policy)?, config).map_err(|e| e.to_string())?;

    match mode {
        Mode::Stdin => {
            let engine = Mutex::new(engine);
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let shutdown =
                serve_lines(&engine, stdin.lock(), stdout.lock()).map_err(|e| e.to_string())?;
            // On plain EOF the shutdown dump has not been written yet. A
            // closed pipe (e.g. `| head`) is not an error at this point.
            if !shutdown {
                let guard = engine
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let _ = writeln!(std::io::stdout(), "{}", guard.stats_json());
            }
        }
        Mode::Replay(file) => {
            let trace = load_event_trace(&file).map_err(|e| e.to_string())?;
            let mut engine = engine;
            dvs_admit::trace::replay(&mut engine, &trace).map_err(|e| e.to_string())?;
            println!("{}", engine.stats_json());
        }
        Mode::Listen(addr) => {
            let listener = TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            println!("listening on {local}");
            std::io::stdout().flush().ok();
            let engine = Arc::new(Mutex::new(engine));
            serve_tcp(&listener, &engine).map_err(|e| e.to_string())?;
            let guard = engine
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            eprintln!("{}", guard.stats_json());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
