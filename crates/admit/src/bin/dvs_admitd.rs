//! `dvs_admitd` — the admission-control server.
//!
//! ```text
//! dvs_admitd (--stdin | --listen ADDR | --replay FILE)
//!            [--policy greedy|threshold=θ|watermark=HI,LO,θ]
//!            [--power xscale|cubic|xscale-table] [--domains N]
//!            [--horizon H] [--resolve-every K] [--regret R] [--budget N]
//!            [--threads N]
//!            [--journal FILE] [--recover] [--snapshot-every N]
//!            [--fsync snapshot|always]
//!            [--read-timeout-ms MS] [--overload N]
//!            [--repl-listen ADDR] [--follow ADDR] [--auto-promote-ms MS]
//!
//!   --stdin          serve newline-delimited JSON on stdin/stdout (default)
//!   --listen ADDR    serve TCP connections on ADDR (e.g. 127.0.0.1:7070);
//!                    prints "listening on ADDR" once bound
//!   --replay FILE    replay an event-trace file (rt_model::io format) and
//!                    print the final stats line
//!   --policy         admission rule (default greedy); threshold=θ hedges
//!                    admissions by θ ≥ 1; watermark=HI,LO,θ adds hysteresis
//!   --power          power model per domain (default xscale)
//!   --domains N      number of identical power domains (default 1; 0 starts
//!                    an empty reshard target that grows via `import` ops)
//!   --horizon H      billing horizon in ticks (default 1000)
//!   --resolve-every K  re-solve every K-th tick (0 disables; default 1)
//!   --regret R       also re-solve when shedding profit exceeds R
//!   --budget N       re-solve node budget (default 20000)
//!   --threads N      set DVS_THREADS for this process (decision logs are
//!                    identical for any N — see the determinism contract)
//!   --journal FILE   write-ahead journal: every applied event is CRC-framed
//!                    and flushed before its decision is acknowledged
//!   --recover        reconstruct engine state from the journal before
//!                    serving (snapshot + deterministic replay of the tail;
//!                    a missing journal file starts fresh)
//!   --snapshot-every N  embed an engine snapshot every N journaled events
//!                    (default 256; 0 = only on drain/shutdown)
//!   --fsync          snapshot (default): fsync on snapshots and drain only;
//!                    always: fsync every event (power-loss durable)
//!   --read-timeout-ms MS  reap TCP connections idle longer than MS
//!                    (default 30000; 0 disables)
//!   --overload N     degrade to the myopic fast path (skip re-solves, never
//!                    block) when more than N requests are in flight
//!   --repl-listen ADDR  stream the journal to hot-standby followers on ADDR
//!                    (requires --journal); prints "replicating on ADDR"
//!   --follow ADDR    run as a hot-standby follower of the primary whose
//!                    --repl-listen is ADDR: --journal names the local
//!                    *mirror* file (it becomes the live journal on
//!                    promotion). Write requests are refused with
//!                    kind "not-primary" until `{"op":"promote"}` (or the
//!                    auto-promotion below) fails the node over.
//!   --auto-promote-ms MS  while following, self-promote after MS ms
//!                    without a frame or heartbeat from the primary
//! ```
//!
//! The protocol is documented in `dvs_admit::server`. On EOF or a
//! `shutdown` request the final stats line is printed (to stdout in
//! `--stdin`/`--replay` mode, to stderr in `--listen` mode). `SIGTERM`
//! triggers a graceful drain in `--listen` mode: stop accepting, finish
//! buffered requests, fsync, snapshot. Whenever a journal is attached, the
//! server also snapshots on every clean exit path.

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dvs_admit::replication::{self, serve_hub, FollowEnd, HubOptions};
use dvs_admit::server::{serve_lines, serve_tcp_role, ServeOptions, ServerControl};
use dvs_admit::{
    AdmissionEngine, EngineConfig, EnginePolicy, FollowerOptions, FsyncPolicy, Journal,
    JournalConfig, ReplicationHub, RoleContext, WatermarkPolicy,
};
use dvs_power::presets::{cubic_ideal, xscale_ideal, xscale_measured};
use dvs_power::Processor;
use reject_sched::online::{OnlineGreedy, ThresholdPolicy};
use rt_model::io::load_event_trace;

enum Mode {
    Stdin,
    Listen(String),
    Replay(String),
}

/// Set by the SIGTERM handler; polled by the TCP accept loop and promoted
/// into a serving-layer drain.
static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    DRAIN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_sigterm() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    // SAFETY: installing a handler that only stores to a static atomic —
    // async-signal-safe by construction. The library crate forbids unsafe
    // code; this binary-local registration is the sole exception.
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_sigterm() {}

fn parse_policy(spec: &str) -> Result<Box<dyn EnginePolicy>, String> {
    if spec == "greedy" {
        return Ok(Box::new(OnlineGreedy));
    }
    if let Some(theta) = spec.strip_prefix("threshold=") {
        let theta: f64 = theta.parse().map_err(|e| format!("bad θ: {e}"))?;
        return Ok(Box::new(
            ThresholdPolicy::new(theta).map_err(|e| e.to_string())?,
        ));
    }
    if let Some(params) = spec.strip_prefix("watermark=") {
        let parts: Vec<&str> = params.split(',').collect();
        if parts.len() != 3 {
            return Err("watermark needs HI,LO,θ".to_string());
        }
        let high: f64 = parts[0].parse().map_err(|e| format!("bad HI: {e}"))?;
        let low: f64 = parts[1].parse().map_err(|e| format!("bad LO: {e}"))?;
        let theta: f64 = parts[2].parse().map_err(|e| format!("bad θ: {e}"))?;
        return Ok(Box::new(
            WatermarkPolicy::new(high, low, theta).map_err(|e| e.to_string())?,
        ));
    }
    Err(format!("unknown policy {spec} (see --help)"))
}

fn parse_power(model: &str) -> Result<Processor, String> {
    Ok(match model {
        "xscale" => xscale_ideal(),
        "cubic" => cubic_ideal(),
        "xscale-table" => xscale_measured(),
        _ => return Err(format!("unknown power model {model} (see --help)")),
    })
}

/// Snapshot + fsync the journal on a clean exit path (no-op without one).
fn drain_journal(engine: &mut AdmissionEngine) -> Result<(), String> {
    engine.snapshot_now().map_err(|e| e.to_string())
}

#[allow(clippy::too_many_lines)]
fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = Mode::Stdin;
    let mut policy = "greedy".to_string();
    let mut model = "xscale".to_string();
    let mut domains = 1usize;
    let mut config = EngineConfig::default();
    let mut journal_path: Option<String> = None;
    let mut recover = false;
    let mut jconfig = JournalConfig::default();
    let mut read_timeout_ms: u64 = 30_000;
    let mut overload: Option<usize> = None;
    let mut repl_listen: Option<String> = None;
    let mut follow: Option<String> = None;
    let mut auto_promote_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stdin" => mode = Mode::Stdin,
            "--listen" => {
                mode = Mode::Listen(it.next().ok_or("--listen needs an address")?.clone());
            }
            "--replay" => {
                mode = Mode::Replay(it.next().ok_or("--replay needs a file")?.clone());
            }
            "--policy" => policy = it.next().ok_or("--policy needs a value")?.clone(),
            "--power" => model = it.next().ok_or("--power needs a value")?.clone(),
            "--domains" => {
                domains = it
                    .next()
                    .ok_or("--domains needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --domains: {e}"))?;
            }
            "--horizon" => {
                config = config.horizon(
                    it.next()
                        .ok_or("--horizon needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --horizon: {e}"))?,
                );
            }
            "--resolve-every" => {
                config = config.resolve_every(
                    it.next()
                        .ok_or("--resolve-every needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --resolve-every: {e}"))?,
                );
            }
            "--regret" => {
                config = config.regret_threshold(
                    it.next()
                        .ok_or("--regret needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --regret: {e}"))?,
                );
            }
            "--budget" => {
                config = config.resolve_budget(
                    it.next()
                        .ok_or("--budget needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --budget: {e}"))?,
                );
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                std::env::set_var(dvs_exec::THREADS_ENV, n.to_string());
            }
            "--journal" => {
                journal_path = Some(it.next().ok_or("--journal needs a file")?.clone());
            }
            "--recover" => recover = true,
            "--snapshot-every" => {
                jconfig.snapshot_every = it
                    .next()
                    .ok_or("--snapshot-every needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --snapshot-every: {e}"))?;
            }
            "--fsync" => {
                jconfig.fsync = match it.next().ok_or("--fsync needs a value")?.as_str() {
                    "snapshot" => FsyncPolicy::OnSnapshot,
                    "always" => FsyncPolicy::Always,
                    other => return Err(format!("bad --fsync {other} (want snapshot|always)")),
                };
            }
            "--read-timeout-ms" => {
                read_timeout_ms = it
                    .next()
                    .ok_or("--read-timeout-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --read-timeout-ms: {e}"))?;
            }
            "--overload" => {
                overload = Some(
                    it.next()
                        .ok_or("--overload needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --overload: {e}"))?,
                );
            }
            "--repl-listen" => {
                repl_listen = Some(it.next().ok_or("--repl-listen needs an address")?.clone());
            }
            "--follow" => {
                follow = Some(it.next().ok_or("--follow needs an address")?.clone());
            }
            "--auto-promote-ms" => {
                auto_promote_ms = Some(
                    it.next()
                        .ok_or("--auto-promote-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --auto-promote-ms: {e}"))?,
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: dvs_admitd (--stdin | --listen ADDR | --replay FILE) \
                     [--policy greedy|threshold=T|watermark=HI,LO,T] \
                     [--power xscale|cubic|xscale-table] [--domains N] [--horizon H] \
                     [--resolve-every K] [--regret R] [--budget N] [--threads N] \
                     [--journal FILE] [--recover] [--snapshot-every N] \
                     [--fsync snapshot|always] [--read-timeout-ms MS] [--overload N] \
                     [--repl-listen ADDR] [--follow ADDR] [--auto-promote-ms MS]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if recover && journal_path.is_none() {
        return Err("--recover requires --journal".to_string());
    }
    if repl_listen.is_some() && journal_path.is_none() {
        return Err("--repl-listen requires --journal (the stream is the journal)".to_string());
    }
    if follow.is_some() {
        if journal_path.is_none() {
            return Err("--follow requires --journal (the mirror file)".to_string());
        }
        if recover {
            return Err(
                "--recover conflicts with --follow (the mirror is replayed on connect)".to_string(),
            );
        }
        if !matches!(mode, Mode::Listen(_)) {
            return Err("--follow requires --listen (the standby serves reads)".to_string());
        }
    }
    let cpus: Vec<Processor> = (0..domains)
        .map(|_| parse_power(&model))
        .collect::<Result<_, _>>()?;
    // A follower's engine is fed by the replication stream; the mirror
    // file is written by the replica loop and only attached as the live
    // journal on promotion — creating a journal here would truncate it.
    let engine = if follow.is_some() {
        AdmissionEngine::with_domains(cpus, parse_policy(&policy)?, config)
            .map_err(|e| e.to_string())?
    } else if let Some(path) = &journal_path {
        if recover {
            let recovered =
                AdmissionEngine::recover(path, cpus, parse_policy(&policy)?, config, jconfig)
                    .map_err(|e| e.to_string())?;
            eprintln!(
                "recovered from {path}: snapshot={} replayed={} lost_records={} lost_bytes={}",
                recovered.had_snapshot,
                recovered.replayed,
                recovered.records_lost,
                recovered.bytes_lost
            );
            recovered.engine
        } else {
            let mut engine = AdmissionEngine::with_domains(cpus, parse_policy(&policy)?, config)
                .map_err(|e| e.to_string())?;
            let journal =
                Journal::create(path, jconfig).map_err(|e| format!("journal {path}: {e}"))?;
            engine.attach_journal(journal);
            engine
        }
    } else {
        AdmissionEngine::with_domains(cpus, parse_policy(&policy)?, config)
            .map_err(|e| e.to_string())?
    };
    let mut engine = engine;
    // A journaled primary stamps its current epoch at serving start so the
    // journal (and therefore every replication stream) is self-describing:
    // a follower learns the primary's term from the stream alone.
    if journal_path.is_some() && follow.is_none() {
        engine.stamp_epoch().map_err(|e| e.to_string())?;
    }
    let engine = engine;

    install_sigterm();
    match mode {
        Mode::Stdin => {
            let engine = Mutex::new(engine);
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let shutdown =
                serve_lines(&engine, stdin.lock(), stdout.lock()).map_err(|e| e.to_string())?;
            let mut guard = engine
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            drain_journal(&mut guard)?;
            // On plain EOF the shutdown dump has not been written yet. A
            // closed pipe (e.g. `| head`) is not an error at this point.
            if !shutdown {
                let _ = writeln!(std::io::stdout(), "{}", guard.stats_json());
            }
        }
        Mode::Replay(file) => {
            let trace = load_event_trace(&file).map_err(|e| e.to_string())?;
            let mut engine = engine;
            dvs_admit::trace::replay(&mut engine, &trace).map_err(|e| e.to_string())?;
            drain_journal(&mut engine)?;
            println!("{}", engine.stats_json());
        }
        Mode::Listen(addr) => {
            let listener = TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            println!("listening on {local}");
            std::io::stdout().flush().ok();
            let engine = Arc::new(Mutex::new(engine));
            let ctl = Arc::new(ServerControl::new());
            let opts = ServeOptions {
                read_timeout: (read_timeout_ms > 0).then(|| Duration::from_millis(read_timeout_ms)),
                overload_threshold: overload,
            };
            let mut hub: Option<Arc<ReplicationHub>> = None;
            let mut hub_thread = None;
            let mut role_ctx: Option<Arc<RoleContext>> = None;
            let mut follower_thread = None;
            if let Some(primary_addr) = follow {
                // Hot-standby follower: replica loop in a side thread, the
                // serving loop answers reads and the promote op.
                let mirror = journal_path.clone().expect("validated above");
                let ctx = Arc::new(RoleContext::follower(&mirror, jconfig));
                let mut fopts = FollowerOptions {
                    primary: primary_addr.clone(),
                    mirror: mirror.into(),
                    ..FollowerOptions::default()
                };
                if let Some(ms) = auto_promote_ms {
                    fopts.heartbeat_timeout = Duration::from_millis(ms);
                    fopts.exit_on_lease_expiry = true;
                }
                println!("following {primary_addr}");
                std::io::stdout().flush().ok();
                let fengine = Arc::clone(&engine);
                let fctx = Arc::clone(&ctx);
                follower_thread = Some(std::thread::spawn(
                    move || match replication::run_follower(&fengine, &fctx.role, &fopts) {
                        Ok(FollowEnd::LeaseExpired) => {
                            match replication::promote(&fengine, &fctx) {
                                Ok(epoch) => eprintln!("lease expired; promoted to epoch {epoch}"),
                                Err(e) => eprintln!("auto-promotion failed: {e}"),
                            }
                        }
                        Ok(FollowEnd::StaleSource) => {
                            eprintln!("primary is from a deposed term; parked unpromoted");
                        }
                        Ok(FollowEnd::Stopped | FollowEnd::PromoteRequested) => {}
                        Err(e) => eprintln!("replica loop failed: {e}"),
                    },
                ));
                role_ctx = Some(ctx);
            } else if let Some(repl_addr) = repl_listen {
                let repl_listener =
                    TcpListener::bind(&repl_addr).map_err(|e| format!("bind {repl_addr}: {e}"))?;
                let repl_local = repl_listener.local_addr().map_err(|e| e.to_string())?;
                println!("replicating on {repl_local}");
                std::io::stdout().flush().ok();
                let epoch = {
                    let g = engine
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    g.epoch()
                };
                let h = Arc::new(ReplicationHub::new(epoch));
                let hh = Arc::clone(&h);
                let jpath = std::path::PathBuf::from(journal_path.clone().expect("validated"));
                hub_thread = Some(std::thread::spawn(move || {
                    let _ = serve_hub(&repl_listener, &jpath, &hh, HubOptions::default());
                }));
                hub = Some(h);
            }
            serve_tcp_role(
                &listener,
                &engine,
                opts,
                &ctl,
                Some(&DRAIN),
                role_ctx.as_ref(),
            )
            .map_err(|e| e.to_string())?;
            if let Some(ctx) = &role_ctx {
                ctx.role.request_stop();
            }
            if let Some(h) = &hub {
                h.shutdown();
            }
            if let Some(t) = follower_thread {
                let _ = t.join();
            }
            if let Some(t) = hub_thread {
                let _ = t.join();
            }
            let mut guard = engine
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            drain_journal(&mut guard)?;
            if ctl.timeouts() > 0 {
                eprintln!("reaped {} idle connection(s)", ctl.timeouts());
            }
            eprintln!("{}", guard.stats_json());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
