//! `chaos` — a seeded crash and failover harness for `dvs_admitd`.
//!
//! ```text
//! chaos [--seed N] [--kills K] [--tasks N] [--load U] [--torn BYTES]
//!       [--admitd PATH] [--failover] [--reshard] [--seeds N]
//!       [--session FILE]
//! ```
//!
//! One run drives a real `dvs_admitd --listen` process through a
//! generated event trace over TCP and tries to break it:
//!
//! * **Seeded kills** — the server is SIGKILLed `--kills` times at
//!   seed-derived points mid-stream and restarted with `--recover`.
//! * **Partial writes** — after one seeded kill the journal tail is
//!   truncated by up to `--torn` bytes, simulating a torn sector; the
//!   client resumes from the server's recovered `events` counter, so
//!   at-least-once resend covers the loss.
//! * **Slow-loris clients** — a connection that sends half a request and
//!   stalls is held open the whole run; the server's read timeout must
//!   reap it without stalling the real session.
//!
//! With `--failover` the run instead exercises the replication layer: a
//! primary (`--repl-listen`) with a hot-standby follower (`--follow`),
//! both real processes. At a seeded point the **follower** is SIGKILLed
//! and restarted (a partition — it must resync its mirror and re-follow);
//! at a second seeded point the **primary** is SIGKILLed mid-stream, the
//! follower is promoted with `{"op":"promote"}`, and the resilient client
//! (`dvs_admit::client`) resumes the remaining events against the new
//! primary from the server's `events` cursor. `--seeds N` repeats the
//! whole drill over N consecutive seeds; `--session FILE` replays a
//! recorded JSONL session (e.g. `examples/e8_session.jsonl`) instead of
//! a generated trace, with fixed cuts — follower bounced at a quarter,
//! primary killed at half — which is what the `failover-smoke` CI job
//! runs.
//!
//! With `--reshard` the run exercises live resharding under fire: a
//! `dvs_routerd --spawn 2 --shard-journals` fleet streams a domain-pinned
//! trace, then a `{"op":"reshard","add":"shard2"}` join is fired with
//! `DVS_RESHARD_PAUSE_MS` stretching the per-domain migration window, and
//! both source shards are SIGKILLed **mid-migration**. The interrupted
//! reshard must fail in-band (the map version never bumped, so routing is
//! untouched), and a retried reshard must respawn the dead shards from
//! their journals (`--recover`), skip the domains that already landed,
//! and complete. The rest of the trace then streams over the new layout.
//!
//! The verdict is the same in every mode: the final `log` dump must be
//! **bit-identical** to an uninterrupted server fed the same trace (for
//! `--reshard`, an unresharded `--spawn 1` router). Exit status 0 =
//! identical, 1 = diverged.
//!
//! The harness finds `dvs_admitd` next to its own executable by default
//! (both live in the same cargo target directory); override with
//! `--admitd`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Duration;

use dvs_admit::{AdmitClient, ClientConfig, TraceSpec};
use rt_model::io::EventKind;

struct Config {
    seed: u64,
    kills: u32,
    tasks: usize,
    load: f64,
    torn: u64,
    admitd: PathBuf,
    failover: bool,
    reshard: bool,
    seeds: u64,
    session: Option<PathBuf>,
}

/// splitmix64 — the harness's own seeded stream, independent of the
/// engine's determinism machinery.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn trace_requests(tasks: usize, load: f64, seed: u64) -> Vec<String> {
    let trace = TraceSpec::new(tasks, load, seed).generate().expect("trace");
    trace
        .iter()
        .map(|e| match &e.kind {
            EventKind::Arrive(t) => {
                let deadline = if t.deadline() == t.period() {
                    String::new()
                } else {
                    format!(",\"deadline\":{}", t.deadline())
                };
                format!(
                    "{{\"op\":\"arrive\",\"at\":{},\"id\":{},\"cycles\":{},\"period\":{}{deadline},\"penalty\":{}}}",
                    e.at,
                    t.id().index(),
                    t.wcec(),
                    t.period(),
                    t.penalty()
                )
            }
            EventKind::Depart(id) => {
                format!("{{\"op\":\"depart\",\"at\":{},\"id\":{}}}", e.at, id.index())
            }
            EventKind::Tick => format!("{{\"op\":\"tick\",\"at\":{}}}", e.at),
        })
        .collect()
}

struct Server {
    child: Child,
    addr: String,
}

fn spawn_server(cfg: &Config, wal: &Path, recover: bool) -> Result<Server, String> {
    let mut cmd = Command::new(&cfg.admitd);
    cmd.args([
        "--listen",
        "127.0.0.1:0",
        "--journal",
        wal.to_str().unwrap(),
        "--read-timeout-ms",
        "300",
        "--snapshot-every",
        "16",
    ]);
    if recover {
        cmd.arg("--recover");
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", cfg.admitd.display()))?;
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut line)
        .map_err(|e| e.to_string())?;
    let addr = line
        .strip_prefix("listening on ")
        .ok_or_else(|| format!("unexpected banner {line:?}"))?
        .trim()
        .to_string();
    Ok(Server { child, addr })
}

struct Session {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn connect(addr: &str) -> Result<Session, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    Ok(Session {
        reader: BufReader::new(stream.try_clone().map_err(|e| e.to_string())?),
        writer: stream,
    })
}

impl Session {
    fn request(&mut self, line: &str) -> Result<String, String> {
        writeln!(self.writer, "{line}").map_err(|e| e.to_string())?;
        self.writer.flush().map_err(|e| e.to_string())?;
        let mut resp = String::new();
        self.reader
            .read_line(&mut resp)
            .map_err(|e| e.to_string())?;
        if resp.is_empty() {
            return Err(format!("connection closed on request {line:?}"));
        }
        Ok(resp.trim_end().to_string())
    }
}

/// Pull a `"key":N` integer out of a flat JSON response.
fn json_u64(resp: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\":");
    let at = resp
        .find(&pat)
        .ok_or_else(|| format!("no {key:?} in {resp}"))?;
    let rest = &resp[at + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|e| format!("bad {key} in {resp}: {e}"))
}

/// Feed requests `from..` on a fresh session, returning how many were
/// acknowledged before `stop_after`.
fn feed(
    session: &mut Session,
    requests: &[String],
    from: usize,
    stop_after: usize,
) -> Result<usize, String> {
    let mut sent = from;
    while sent < requests.len() && sent < stop_after {
        let resp = session.request(&requests[sent])?;
        if !resp.contains("\"ok\":true") {
            return Err(format!("request {} failed: {resp}", requests[sent]));
        }
        sent += 1;
    }
    Ok(sent)
}

fn run(cfg: &Config) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("dvs_admit_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let requests = trace_requests(cfg.tasks, cfg.load, cfg.seed);
    eprintln!(
        "chaos: seed={} kills={} events={} torn<={}B",
        cfg.seed,
        cfg.kills,
        requests.len(),
        cfg.torn
    );

    // Reference: one uninterrupted server over the same trace.
    let ref_wal = dir.join(format!("ref_{}.wal", cfg.seed));
    let _ = std::fs::remove_file(&ref_wal);
    let mut server = spawn_server(cfg, &ref_wal, false)?;
    let mut session = connect(&server.addr)?;
    feed(&mut session, &requests, 0, requests.len())?;
    let ref_log = session.request("{\"op\":\"log\"}")?;
    drop(session);
    server.child.kill().ok();
    server.child.wait().ok();

    // Chaos run: seeded kills, one torn tail, a slow-loris passenger.
    let wal = dir.join(format!("chaos_{}.wal", cfg.seed));
    let _ = std::fs::remove_file(&wal);
    let mut rng = cfg.seed ^ 0xC4A0_5C4A_05C4_A05C;
    let torn_at = if cfg.kills > 0 {
        (mix(&mut rng) % u64::from(cfg.kills)) as u32
    } else {
        0
    };
    let mut server = spawn_server(cfg, &wal, false)?;
    let mut loris = TcpStream::connect(&server.addr).map_err(|e| e.to_string())?;
    loris
        .write_all(b"{\"op\":\"tick\",\"at\":")
        .map_err(|e| e.to_string())?; // half a request, then silence
    let mut done = 0usize;
    for kill in 0..cfg.kills {
        let remaining = requests.len().saturating_sub(done);
        if remaining <= 1 {
            break;
        }
        let cut = done + 1 + (mix(&mut rng) as usize) % (remaining - 1);
        let mut session = connect(&server.addr)?;
        done = feed(&mut session, &requests, done, cut)?;
        drop(session);
        server.child.kill().map_err(|e| e.to_string())?; // SIGKILL
        server.child.wait().ok();

        if kill == torn_at && cfg.torn > 0 {
            let len = std::fs::metadata(&wal).map_err(|e| e.to_string())?.len();
            let tear = 1 + mix(&mut rng) % cfg.torn;
            let new_len = len.saturating_sub(tear);
            std::fs::OpenOptions::new()
                .write(true)
                .open(&wal)
                .and_then(|f| f.set_len(new_len))
                .map_err(|e| e.to_string())?;
            eprintln!("chaos: kill {kill}: tore {tear} bytes off the journal tail");
        } else {
            eprintln!("chaos: kill {kill}: SIGKILL after {done} events");
        }

        server = spawn_server(cfg, &wal, true)?;
        // The journal is the ground truth for how much survived; resend
        // from there (at-least-once delivery).
        let mut session = connect(&server.addr)?;
        let stats = session.request("{\"op\":\"stats\"}")?;
        let survived = json_u64(&stats, "events")? as usize;
        if survived < done {
            eprintln!(
                "chaos: kill {kill}: journal lost {} acknowledged event(s); resending",
                done - survived
            );
        }
        done = survived;
        drop(session);
        // Fresh loris against the restarted server too.
        loris = TcpStream::connect(&server.addr).map_err(|e| e.to_string())?;
        loris
            .write_all(b"{\"op\":\"stats\"")
            .map_err(|e| e.to_string())?;
    }
    let mut session = connect(&server.addr)?;
    feed(&mut session, &requests, done, requests.len())?;
    let log = session.request("{\"op\":\"log\"}")?;
    let stats = session.request("{\"op\":\"stats\"}")?;
    drop(session);
    drop(loris);
    server.child.kill().ok();
    server.child.wait().ok();

    let recoveries = json_u64(&stats, "recoveries")?;
    let lost = json_u64(&stats, "records_lost")?;
    eprintln!("chaos: final stats: recoveries={recoveries} records_lost={lost}");
    if log == ref_log {
        eprintln!("chaos: OK — recovered log is bit-identical to the uninterrupted run");
        Ok(())
    } else {
        eprintln!("chaos: FAIL — decision logs diverged\nref: {ref_log}\ngot: {log}");
        Err("divergence".to_string())
    }
}

/// Spawns `dvs_admitd` with arbitrary extra flags, reading `banners`
/// stdout banner lines (e.g. "listening on …", "replicating on …").
fn spawn_with_banners(
    admitd: &Path,
    args: &[&str],
    banners: usize,
) -> Result<(Child, Vec<String>), String> {
    let mut child = Command::new(admitd)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", admitd.display()))?;
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut lines = Vec::new();
    for _ in 0..banners {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if line.is_empty() {
            return Err("server exited before printing its banner".to_string());
        }
        lines.push(line.trim_end().to_string());
    }
    Ok((child, lines))
}

fn banner_suffix<'a>(lines: &'a [String], prefix: &str) -> Result<&'a str, String> {
    lines
        .iter()
        .find_map(|l| l.strip_prefix(prefix))
        .ok_or_else(|| format!("no {prefix:?} banner in {lines:?}"))
}

/// A client wired for the failover drill: few attempts, fast backoff, no
/// local fallback (the drill wants server answers only).
fn drill_client(addr: &str, seed: u64) -> AdmitClient {
    AdmitClient::new(ClientConfig {
        addr: addr.to_string(),
        request_timeout: Duration::from_secs(10),
        connect_timeout: Duration::from_millis(200),
        max_attempts: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        breaker_threshold: u32::MAX, // never trip: the drill switches addresses itself
        breaker_cooldown: Duration::from_millis(1),
        seed,
    })
}

/// Polls a standby's `events` counter until it reaches `target` — used to
/// let the replication stream catch up before the next seeded fault, so
/// the kill exercises resync over a populated mirror rather than an
/// empty one.
fn wait_events(addr: &str, target: u64) -> Result<(), String> {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let mut session = connect(addr)?;
        let stats = session.request("{\"op\":\"stats\"}")?;
        if json_u64(&stats, "events")? >= target {
            return Ok(());
        }
        if std::time::Instant::now() > deadline {
            return Err(format!("standby stuck below {target} events: {stats}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Polls the follower's `events` counter until it stops changing (the
/// dead primary can push nothing more; in-flight frames settle fast).
fn settled_events(addr: &str) -> Result<u64, String> {
    let mut last = None;
    loop {
        let mut session = connect(addr)?;
        let stats = session.request("{\"op\":\"stats\"}")?;
        let events = json_u64(&stats, "events")?;
        if last == Some(events) {
            return Ok(events);
        }
        last = Some(events);
        std::thread::sleep(Duration::from_millis(80));
    }
}

/// Reads a recorded JSONL session as the drill's request stream.
/// Read-only probes are dropped: the drill inserts its own `log`/`stats`
/// requests at the points the protocol needs them.
fn session_requests(path: &Path) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let requests: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter(|l| !l.contains("\"op\":\"stats\"") && !l.contains("\"op\":\"log\""))
        .map(String::from)
        .collect();
    if requests.len() < 8 {
        return Err(format!(
            "{}: {} events is too short for a failover drill",
            path.display(),
            requests.len()
        ));
    }
    Ok(requests)
}

/// One failover drill over one seed. See the module docs.
fn run_failover_once(cfg: &Config, seed: u64, dir: &Path) -> Result<(), String> {
    let requests = match &cfg.session {
        Some(path) => session_requests(path)?,
        None => trace_requests(cfg.tasks, cfg.load, seed),
    };
    let mut rng = seed ^ 0xFA11_0FA1_10FA_110F;
    let n = requests.len();
    // Two cuts: partition the follower at cut1, kill the primary at
    // cut2. A recorded session uses fixed cuts (the follower bounces at a
    // quarter, the primary dies at half and the client replays the
    // remainder); generated traces draw seeded cuts.
    let (cut1, cut2) = match cfg.session {
        Some(_) => (n / 4, n / 2),
        None => {
            let c1 = 1 + (mix(&mut rng) as usize) % (n / 2);
            (c1, c1 + 1 + (mix(&mut rng) as usize) % (n - c1 - 1))
        }
    };
    eprintln!("chaos: failover seed={seed} events={n} partition@{cut1} kill-primary@{cut2}");

    // Reference: one uninterrupted server.
    let ref_wal = dir.join(format!("fo_ref_{seed}.wal"));
    let _ = std::fs::remove_file(&ref_wal);
    let (mut ref_child, banners) = spawn_with_banners(
        &cfg.admitd,
        &[
            "--listen",
            "127.0.0.1:0",
            "--journal",
            ref_wal.to_str().unwrap(),
        ],
        1,
    )?;
    let ref_addr = banner_suffix(&banners, "listening on ")?.to_string();
    let mut session = connect(&ref_addr)?;
    feed(&mut session, &requests, 0, requests.len())?;
    let ref_log = session.request("{\"op\":\"log\"}")?;
    drop(session);
    ref_child.kill().ok();
    ref_child.wait().ok();

    // Primary with a replication listener.
    let p_wal = dir.join(format!("fo_primary_{seed}.wal"));
    let _ = std::fs::remove_file(&p_wal);
    let (mut primary, banners) = spawn_with_banners(
        &cfg.admitd,
        &[
            "--listen",
            "127.0.0.1:0",
            "--journal",
            p_wal.to_str().unwrap(),
            "--repl-listen",
            "127.0.0.1:0",
        ],
        2,
    )?;
    let p_addr = banner_suffix(&banners, "listening on ")?.to_string();
    let repl_addr = banner_suffix(&banners, "replicating on ")?.to_string();

    // Hot-standby follower.
    let mirror = dir.join(format!("fo_mirror_{seed}.wal"));
    let _ = std::fs::remove_file(&mirror);
    let fargs = [
        "--listen",
        "127.0.0.1:0",
        "--journal",
        mirror.to_str().unwrap(),
        "--follow",
        &repl_addr,
    ];
    let (mut follower, banners) = spawn_with_banners(&cfg.admitd, &fargs, 2)?;
    let f0_addr = banner_suffix(&banners, "listening on ")?.to_string();

    // Phase 1: stream to the primary until the partition point, and let
    // the standby catch up so the partition hits a populated mirror.
    let mut client = drill_client(&p_addr, seed);
    let report = client
        .replay(&requests[..cut1], 0)
        .map_err(|e| format!("phase 1: {e}"))?;
    assert_ok_responses(&report.responses, &requests[..cut1])?;
    wait_events(&f0_addr, cut1 as u64)?;

    // Partition: SIGKILL the follower, restart it on the same mirror (it
    // must resync the torn tail and re-follow from its cursor).
    follower.kill().map_err(|e| e.to_string())?;
    follower.wait().ok();
    eprintln!("chaos: failover seed={seed}: follower partitioned after {cut1} events");
    let (mut follower2, banners) = spawn_with_banners(&cfg.admitd, &fargs, 2)?;
    let f_addr = banner_suffix(&banners, "listening on ")?.to_string();
    // The restart must resync the mirror back to the partition point
    // before the next fault lands.
    wait_events(&f_addr, cut1 as u64)?;

    // Phase 2: stream on until the primary-kill point, then SIGKILL the
    // primary mid-stream.
    let report = client
        .replay(&requests[cut1..cut2], cut1 as u64)
        .map_err(|e| format!("phase 2: {e}"))?;
    assert_ok_responses(&report.responses, &requests[cut1..cut2])?;
    primary.kill().map_err(|e| e.to_string())?;
    primary.wait().ok();
    eprintln!("chaos: failover seed={seed}: primary SIGKILLed after {cut2} events");

    // Let the in-flight frames settle, then promote the follower.
    let survived = settled_events(&f_addr)?;
    let mut session = connect(&f_addr)?;
    let promoted = session.request("{\"op\":\"promote\"}")?;
    if !promoted.contains("\"role\":\"primary\"") {
        return Err(format!("promotion failed: {promoted}"));
    }
    let epoch = json_u64(&promoted, "epoch")?;
    if survived < cut2 as u64 {
        eprintln!(
            "chaos: failover seed={seed}: {} acknowledged event(s) never reached the \
             standby; the client resends them",
            cut2 as u64 - survived
        );
    }
    eprintln!("chaos: failover seed={seed}: promoted to epoch {epoch} at {survived} events");
    drop(session);

    // Phase 3: the resilient client resumes against the new primary from
    // the server-side cursor (exactly-once across the failover).
    let mut client = drill_client(&f_addr, seed ^ 1);
    let resume = client.cursor().map_err(|e| e.to_string())? as usize;
    let report = client
        .replay(&requests[resume..], resume as u64)
        .map_err(|e| format!("phase 3: {e}"))?;
    assert_ok_responses(&report.responses, &requests[resume..])?;

    let mut session = connect(&f_addr)?;
    let log = session.request("{\"op\":\"log\"}")?;
    let stats = session.request("{\"op\":\"stats\"}")?;
    drop(session);
    follower2.kill().ok();
    follower2.wait().ok();

    // Cross-failover balance invariant: every arrival is accounted for.
    let arrivals = json_u64(&stats, "arrivals")?;
    let accepted = json_u64(&stats, "accepted")?;
    let rejected = json_u64(&stats, "rejected")?;
    let standing = json_u64(&stats, "shed")?;
    if accepted + rejected + standing != arrivals {
        return Err(format!(
            "balance broken after failover: {accepted}+{rejected}+{standing} != {arrivals}"
        ));
    }
    if log == ref_log {
        eprintln!("chaos: failover seed={seed}: OK — failed-over log is bit-identical");
        Ok(())
    } else {
        eprintln!(
            "chaos: failover seed={seed}: FAIL — decision logs diverged\nref: {ref_log}\ngot: {log}"
        );
        Err("divergence".to_string())
    }
}

fn assert_ok_responses(responses: &[String], requests: &[String]) -> Result<(), String> {
    for (resp, req) in responses.iter().zip(requests) {
        // Benign duplicate rejections are the idempotency backstop for
        // at-least-once resend; anything else failing is a real error.
        let benign = resp.contains("\"kind\":\"duplicate-task\"")
            || resp.contains("\"kind\":\"already-departed\"");
        if !resp.contains("\"ok\":true") && !benign {
            return Err(format!("request {req} failed: {resp}"));
        }
    }
    Ok(())
}

fn run_failover(cfg: &Config) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("dvs_admit_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    for seed in cfg.seed..cfg.seed + cfg.seeds {
        run_failover_once(cfg, seed, &dir)?;
    }
    Ok(())
}

/// Global power-domain count for the reshard drill: enough that a 2→3
/// membership change always moves a handful of domains.
const RESHARD_DOMAINS: usize = 12;

/// Renders a **domain-pinned** trace as router request lines: tasks
/// carry their domain explicitly, so any shard layout replays one
/// cluster history.
fn router_requests(tasks: usize, load: f64, seed: u64) -> Vec<String> {
    let trace = TraceSpec::new(tasks, load, seed)
        .domains(RESHARD_DOMAINS)
        .generate()
        .expect("trace");
    trace
        .iter()
        .map(|e| match &e.kind {
            EventKind::Arrive(t) => {
                let domain = t
                    .domain()
                    .map_or_else(String::new, |d| format!(",\"domain\":{d}"));
                format!(
                    "{{\"op\":\"arrive\",\"at\":{},\"id\":{},\"cycles\":{},\"period\":{},\
                     \"deadline\":{},\"penalty\":{}{domain}}}",
                    e.at,
                    t.id().index(),
                    t.wcec(),
                    t.period(),
                    t.deadline(),
                    t.penalty()
                )
            }
            EventKind::Depart(id) => {
                format!(
                    "{{\"op\":\"depart\",\"at\":{},\"id\":{}}}",
                    e.at,
                    id.index()
                )
            }
            EventKind::Tick => format!("{{\"op\":\"tick\",\"at\":{}}}", e.at),
        })
        .collect()
}

/// A spawned `dvs_routerd --spawn K` fleet: the router process, its bound
/// address, and the (name, pid) of each shard child parsed from the
/// spawn banners — the drill's kill targets.
struct RouterdFleet {
    child: Child,
    addr: String,
    pids: Vec<(String, u32)>,
}

/// Parses a routerd spawn banner `shardN on ADDR (pid P, D domain(s))`.
fn parse_pid_banner(line: &str) -> Result<(String, u32), String> {
    let name = line
        .split(" on ")
        .next()
        .ok_or_else(|| format!("bad spawn banner {line:?}"))?
        .to_string();
    let pid = line
        .split("(pid ")
        .nth(1)
        .and_then(|rest| rest.split([',', ')']).next())
        .and_then(|digits| digits.trim().parse().ok())
        .ok_or_else(|| format!("no pid in spawn banner {line:?}"))?;
    Ok((name, pid))
}

/// Spawns `dvs_routerd --spawn shards --listen` and reads its banners:
/// one spawn banner per shard on stderr, then `listening on ADDR` on
/// stdout. Both pipes are drained by reaper threads afterwards.
fn spawn_routerd(
    routerd: &Path,
    shards: usize,
    journals: Option<&Path>,
    pause_ms: u64,
) -> Result<RouterdFleet, String> {
    let mut cmd = Command::new(routerd);
    cmd.args([
        "--spawn",
        &shards.to_string(),
        "--listen",
        "127.0.0.1:0",
        "--domains",
        &RESHARD_DOMAINS.to_string(),
    ]);
    if let Some(dir) = journals {
        cmd.args(["--shard-journals", dir.to_str().unwrap()]);
    }
    if pause_ms > 0 {
        cmd.env("DVS_RESHARD_PAUSE_MS", pause_ms.to_string());
    }
    let mut child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", routerd.display()))?;
    let mut err_reader = BufReader::new(child.stderr.take().unwrap());
    let mut pids = Vec::new();
    for _ in 0..shards {
        let mut line = String::new();
        err_reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if line.is_empty() {
            return Err("routerd exited before spawning its shards".to_string());
        }
        pids.push(parse_pid_banner(line.trim_end())?);
    }
    std::thread::spawn(move || {
        // Respawn banners keep arriving during the drill; never let the
        // pipe back up.
        let mut sink = String::new();
        let _ = std::io::Read::read_to_string(&mut err_reader, &mut sink);
    });
    let mut out_reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    out_reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .ok_or_else(|| format!("unexpected routerd banner {line:?}"))?
        .to_string();
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = std::io::Read::read_to_string(&mut out_reader, &mut sink);
    });
    Ok(RouterdFleet { child, addr, pids })
}

/// The reshard drill. See the module docs.
#[allow(clippy::too_many_lines)]
fn run_reshard(cfg: &Config) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("dvs_admit_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let routerd = cfg.admitd.with_file_name("dvs_routerd");
    if !routerd.exists() {
        return Err(format!(
            "dvs_routerd not found at {} (build the router crate)",
            routerd.display()
        ));
    }
    let requests = router_requests(cfg.tasks, cfg.load, cfg.seed);
    let n = requests.len();
    let mut rng = cfg.seed ^ 0x2E5A_12D0_2E5A_12D0;
    let cut = 1 + (mix(&mut rng) as usize) % (n / 2);
    eprintln!(
        "chaos: reshard seed={} events={n} domains={RESHARD_DOMAINS} join@{cut}",
        cfg.seed
    );

    // Reference: an unresharded single-shard router over the same trace.
    let mut reference = spawn_routerd(&routerd, 1, None, 0)?;
    let mut session = connect(&reference.addr)?;
    feed(&mut session, &requests, 0, n)?;
    let ref_log = session.request("{\"op\":\"log\"}")?;
    session.request("{\"op\":\"shutdown\"}")?;
    drop(session);
    reference.child.wait().ok();

    // The chaos fleet: two journaled shards, migration slowed down so the
    // kill window below is wide open.
    let journals = dir.join(format!("reshard_{}", cfg.seed));
    let _ = std::fs::remove_dir_all(&journals);
    let mut fleet = spawn_routerd(&routerd, 2, Some(&journals), 200)?;
    let mut session = connect(&fleet.addr)?;
    feed(&mut session, &requests, 0, cut)?;

    // Fire the join, then SIGKILL both source shards while the paused
    // migration is in flight.
    let reshard = "{\"op\":\"reshard\",\"add\":\"shard2\"}";
    writeln!(session.writer, "{reshard}").map_err(|e| e.to_string())?;
    session.writer.flush().map_err(|e| e.to_string())?;
    std::thread::sleep(Duration::from_millis(300));
    for (name, pid) in &fleet.pids {
        let status = Command::new("kill")
            .args(["-9", &pid.to_string()])
            .status()
            .map_err(|e| format!("kill {name}: {e}"))?;
        if !status.success() {
            return Err(format!("kill -9 {pid} ({name}) failed"));
        }
        eprintln!("chaos: reshard: SIGKILLed {name} (pid {pid}) mid-migration");
    }
    let mut resp = String::new();
    session
        .reader
        .read_line(&mut resp)
        .map_err(|e| e.to_string())?;
    let mut resp = resp.trim_end().to_string();
    eprintln!("chaos: reshard: interrupted attempt: {resp}");

    // Retry until the router respawns the dead shards from their journals
    // and the migration completes past the domains that already landed.
    let mut attempts = 0u32;
    while !resp.contains("\"ok\":true") {
        attempts += 1;
        if attempts > 6 {
            return Err(format!("reshard never completed: {resp}"));
        }
        // Let the shard clients' circuit breakers cool down first.
        std::thread::sleep(Duration::from_millis(600));
        resp = session.request(reshard)?;
        eprintln!("chaos: reshard: retry {attempts}: {resp}");
    }
    if attempts == 0 {
        eprintln!("chaos: reshard: note — the kill lost the race; migration never broke");
    }

    // The rest of the trace streams over the post-cutover layout.
    feed(&mut session, &requests, cut, n)?;
    let log = session.request("{\"op\":\"log\"}")?;
    let stats = session.request("{\"op\":\"stats\"}")?;
    let map_resp = session.request("{\"op\":\"map\"}")?;
    session.request("{\"op\":\"shutdown\"}").ok();
    drop(session);
    fleet.child.wait().ok();

    let version = json_u64(&map_resp, "version")?;
    if version != 2 {
        return Err(format!("expected map version 2 after the join: {map_resp}"));
    }
    let arrivals = json_u64(&stats, "arrivals")?;
    let accepted = json_u64(&stats, "accepted")?;
    let rejected = json_u64(&stats, "rejected")?;
    let standing = json_u64(&stats, "shed")?;
    if accepted + rejected + standing != arrivals {
        return Err(format!(
            "balance broken after reshard: {accepted}+{rejected}+{standing} != {arrivals}"
        ));
    }
    if log == ref_log {
        eprintln!("chaos: reshard: OK — resharded log is bit-identical to the unresharded run");
        Ok(())
    } else {
        eprintln!("chaos: reshard: FAIL — decision logs diverged\nref: {ref_log}\ngot: {log}");
        Err("divergence".to_string())
    }
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        seed: 1,
        kills: 3,
        tasks: 12,
        load: 2.2,
        torn: 24,
        admitd: PathBuf::new(),
        failover: false,
        reshard: false,
        seeds: 1,
        session: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--seed" => {
                cfg.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--kills" => {
                cfg.kills = val("--kills")?
                    .parse()
                    .map_err(|e| format!("bad --kills: {e}"))?;
            }
            "--tasks" => {
                cfg.tasks = val("--tasks")?
                    .parse()
                    .map_err(|e| format!("bad --tasks: {e}"))?;
            }
            "--load" => {
                cfg.load = val("--load")?
                    .parse()
                    .map_err(|e| format!("bad --load: {e}"))?
            }
            "--torn" => {
                cfg.torn = val("--torn")?
                    .parse()
                    .map_err(|e| format!("bad --torn: {e}"))?
            }
            "--admitd" => cfg.admitd = PathBuf::from(val("--admitd")?),
            "--session" => cfg.session = Some(PathBuf::from(val("--session")?)),
            "--failover" => cfg.failover = true,
            "--reshard" => cfg.reshard = true,
            "--seeds" => {
                cfg.seeds = val("--seeds")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: chaos [--seed N] [--kills K] [--tasks N] [--load U] \
                     [--torn BYTES] [--admitd PATH] [--reshard] \
                     [--failover [--seeds N] [--session FILE]]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if cfg.admitd.as_os_str().is_empty() {
        let me = std::env::current_exe().map_err(|e| e.to_string())?;
        cfg.admitd = me.with_file_name("dvs_admitd");
        if !cfg.admitd.exists() {
            return Err(format!(
                "dvs_admitd not found at {}; pass --admitd",
                cfg.admitd.display()
            ));
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let outcome = parse_args().and_then(|cfg| {
        if cfg.failover {
            run_failover(&cfg)
        } else if cfg.reshard {
            run_reshard(&cfg)
        } else {
            run(&cfg)
        }
    });
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
