//! `chaos` — a seeded crash harness for `dvs_admitd`.
//!
//! ```text
//! chaos [--seed N] [--kills K] [--tasks N] [--load U] [--torn BYTES]
//!       [--admitd PATH]
//! ```
//!
//! One run drives a real `dvs_admitd --listen` process through a
//! generated event trace over TCP and tries to break it:
//!
//! * **Seeded kills** — the server is SIGKILLed `--kills` times at
//!   seed-derived points mid-stream and restarted with `--recover`.
//! * **Partial writes** — after one seeded kill the journal tail is
//!   truncated by up to `--torn` bytes, simulating a torn sector; the
//!   client resumes from the server's recovered `events` counter, so
//!   at-least-once resend covers the loss.
//! * **Slow-loris clients** — a connection that sends half a request and
//!   stalls is held open the whole run; the server's read timeout must
//!   reap it without stalling the real session.
//!
//! The verdict is the recovery invariant: after the final restart the
//! server's `log` dump must be **bit-identical** to an uninterrupted
//! server fed the same trace. Exit status 0 = identical, 1 = diverged.
//!
//! The harness finds `dvs_admitd` next to its own executable by default
//! (both live in the same cargo target directory); override with
//! `--admitd`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Duration;

use dvs_admit::TraceSpec;
use rt_model::io::EventKind;

struct Config {
    seed: u64,
    kills: u32,
    tasks: usize,
    load: f64,
    torn: u64,
    admitd: PathBuf,
}

/// splitmix64 — the harness's own seeded stream, independent of the
/// engine's determinism machinery.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn trace_requests(tasks: usize, load: f64, seed: u64) -> Vec<String> {
    let trace = TraceSpec::new(tasks, load, seed).generate().expect("trace");
    trace
        .iter()
        .map(|e| match &e.kind {
            EventKind::Arrive(t) => {
                let deadline = if t.deadline() == t.period() {
                    String::new()
                } else {
                    format!(",\"deadline\":{}", t.deadline())
                };
                format!(
                    "{{\"op\":\"arrive\",\"at\":{},\"id\":{},\"cycles\":{},\"period\":{}{deadline},\"penalty\":{}}}",
                    e.at,
                    t.id().index(),
                    t.wcec(),
                    t.period(),
                    t.penalty()
                )
            }
            EventKind::Depart(id) => {
                format!("{{\"op\":\"depart\",\"at\":{},\"id\":{}}}", e.at, id.index())
            }
            EventKind::Tick => format!("{{\"op\":\"tick\",\"at\":{}}}", e.at),
        })
        .collect()
}

struct Server {
    child: Child,
    addr: String,
}

fn spawn_server(cfg: &Config, wal: &Path, recover: bool) -> Result<Server, String> {
    let mut cmd = Command::new(&cfg.admitd);
    cmd.args([
        "--listen",
        "127.0.0.1:0",
        "--journal",
        wal.to_str().unwrap(),
        "--read-timeout-ms",
        "300",
        "--snapshot-every",
        "16",
    ]);
    if recover {
        cmd.arg("--recover");
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", cfg.admitd.display()))?;
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut line)
        .map_err(|e| e.to_string())?;
    let addr = line
        .strip_prefix("listening on ")
        .ok_or_else(|| format!("unexpected banner {line:?}"))?
        .trim()
        .to_string();
    Ok(Server { child, addr })
}

struct Session {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn connect(addr: &str) -> Result<Session, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    Ok(Session {
        reader: BufReader::new(stream.try_clone().map_err(|e| e.to_string())?),
        writer: stream,
    })
}

impl Session {
    fn request(&mut self, line: &str) -> Result<String, String> {
        writeln!(self.writer, "{line}").map_err(|e| e.to_string())?;
        self.writer.flush().map_err(|e| e.to_string())?;
        let mut resp = String::new();
        self.reader
            .read_line(&mut resp)
            .map_err(|e| e.to_string())?;
        if resp.is_empty() {
            return Err(format!("connection closed on request {line:?}"));
        }
        Ok(resp.trim_end().to_string())
    }
}

/// Pull a `"key":N` integer out of a flat JSON response.
fn json_u64(resp: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\":");
    let at = resp
        .find(&pat)
        .ok_or_else(|| format!("no {key:?} in {resp}"))?;
    let rest = &resp[at + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|e| format!("bad {key} in {resp}: {e}"))
}

/// Feed requests `from..` on a fresh session, returning how many were
/// acknowledged before `stop_after`.
fn feed(
    session: &mut Session,
    requests: &[String],
    from: usize,
    stop_after: usize,
) -> Result<usize, String> {
    let mut sent = from;
    while sent < requests.len() && sent < stop_after {
        let resp = session.request(&requests[sent])?;
        if !resp.contains("\"ok\":true") {
            return Err(format!("request {} failed: {resp}", requests[sent]));
        }
        sent += 1;
    }
    Ok(sent)
}

fn run(cfg: &Config) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("dvs_admit_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let requests = trace_requests(cfg.tasks, cfg.load, cfg.seed);
    eprintln!(
        "chaos: seed={} kills={} events={} torn<={}B",
        cfg.seed,
        cfg.kills,
        requests.len(),
        cfg.torn
    );

    // Reference: one uninterrupted server over the same trace.
    let ref_wal = dir.join(format!("ref_{}.wal", cfg.seed));
    let _ = std::fs::remove_file(&ref_wal);
    let mut server = spawn_server(cfg, &ref_wal, false)?;
    let mut session = connect(&server.addr)?;
    feed(&mut session, &requests, 0, requests.len())?;
    let ref_log = session.request("{\"op\":\"log\"}")?;
    drop(session);
    server.child.kill().ok();
    server.child.wait().ok();

    // Chaos run: seeded kills, one torn tail, a slow-loris passenger.
    let wal = dir.join(format!("chaos_{}.wal", cfg.seed));
    let _ = std::fs::remove_file(&wal);
    let mut rng = cfg.seed ^ 0xC4A0_5C4A_05C4_A05C;
    let torn_at = if cfg.kills > 0 {
        (mix(&mut rng) % u64::from(cfg.kills)) as u32
    } else {
        0
    };
    let mut server = spawn_server(cfg, &wal, false)?;
    let mut loris = TcpStream::connect(&server.addr).map_err(|e| e.to_string())?;
    loris
        .write_all(b"{\"op\":\"tick\",\"at\":")
        .map_err(|e| e.to_string())?; // half a request, then silence
    let mut done = 0usize;
    for kill in 0..cfg.kills {
        let remaining = requests.len().saturating_sub(done);
        if remaining <= 1 {
            break;
        }
        let cut = done + 1 + (mix(&mut rng) as usize) % (remaining - 1);
        let mut session = connect(&server.addr)?;
        done = feed(&mut session, &requests, done, cut)?;
        drop(session);
        server.child.kill().map_err(|e| e.to_string())?; // SIGKILL
        server.child.wait().ok();

        if kill == torn_at && cfg.torn > 0 {
            let len = std::fs::metadata(&wal).map_err(|e| e.to_string())?.len();
            let tear = 1 + mix(&mut rng) % cfg.torn;
            let new_len = len.saturating_sub(tear);
            std::fs::OpenOptions::new()
                .write(true)
                .open(&wal)
                .and_then(|f| f.set_len(new_len))
                .map_err(|e| e.to_string())?;
            eprintln!("chaos: kill {kill}: tore {tear} bytes off the journal tail");
        } else {
            eprintln!("chaos: kill {kill}: SIGKILL after {done} events");
        }

        server = spawn_server(cfg, &wal, true)?;
        // The journal is the ground truth for how much survived; resend
        // from there (at-least-once delivery).
        let mut session = connect(&server.addr)?;
        let stats = session.request("{\"op\":\"stats\"}")?;
        let survived = json_u64(&stats, "events")? as usize;
        if survived < done {
            eprintln!(
                "chaos: kill {kill}: journal lost {} acknowledged event(s); resending",
                done - survived
            );
        }
        done = survived;
        drop(session);
        // Fresh loris against the restarted server too.
        loris = TcpStream::connect(&server.addr).map_err(|e| e.to_string())?;
        loris
            .write_all(b"{\"op\":\"stats\"")
            .map_err(|e| e.to_string())?;
    }
    let mut session = connect(&server.addr)?;
    feed(&mut session, &requests, done, requests.len())?;
    let log = session.request("{\"op\":\"log\"}")?;
    let stats = session.request("{\"op\":\"stats\"}")?;
    drop(session);
    drop(loris);
    server.child.kill().ok();
    server.child.wait().ok();

    let recoveries = json_u64(&stats, "recoveries")?;
    let lost = json_u64(&stats, "records_lost")?;
    eprintln!("chaos: final stats: recoveries={recoveries} records_lost={lost}");
    if log == ref_log {
        eprintln!("chaos: OK — recovered log is bit-identical to the uninterrupted run");
        Ok(())
    } else {
        eprintln!("chaos: FAIL — decision logs diverged\nref: {ref_log}\ngot: {log}");
        Err("divergence".to_string())
    }
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        seed: 1,
        kills: 3,
        tasks: 12,
        load: 2.2,
        torn: 24,
        admitd: PathBuf::new(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--seed" => {
                cfg.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--kills" => {
                cfg.kills = val("--kills")?
                    .parse()
                    .map_err(|e| format!("bad --kills: {e}"))?;
            }
            "--tasks" => {
                cfg.tasks = val("--tasks")?
                    .parse()
                    .map_err(|e| format!("bad --tasks: {e}"))?;
            }
            "--load" => {
                cfg.load = val("--load")?
                    .parse()
                    .map_err(|e| format!("bad --load: {e}"))?
            }
            "--torn" => {
                cfg.torn = val("--torn")?
                    .parse()
                    .map_err(|e| format!("bad --torn: {e}"))?
            }
            "--admitd" => cfg.admitd = PathBuf::from(val("--admitd")?),
            "--help" | "-h" => {
                eprintln!(
                    "usage: chaos [--seed N] [--kills K] [--tasks N] [--load U] \
                     [--torn BYTES] [--admitd PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if cfg.admitd.as_os_str().is_empty() {
        let me = std::env::current_exe().map_err(|e| e.to_string())?;
        cfg.admitd = me.with_file_name("dvs_admitd");
        if !cfg.admitd.exists() {
            return Err(format!(
                "dvs_admitd not found at {}; pass --admitd",
                cfg.admitd.display()
            ));
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    match parse_args().and_then(|cfg| run(&cfg)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
