//! Write-ahead journal: CRC-framed event records and engine snapshots.
//!
//! The admission engine's durability layer. Every successfully applied
//! event is appended to the journal — *before* the serving layer
//! acknowledges the decision — as a CRC-framed record; periodically the
//! engine embeds a full snapshot of its deterministic state in the same
//! file. Recovery is then `last snapshot + deterministic replay of the
//! event tail`, which reproduces the decision log bit-for-bit (the same
//! contract the `DVS_THREADS` determinism suite pins, extended across a
//! crash boundary).
//!
//! ## Frame format
//!
//! Each record is one frame, fields little-endian:
//!
//! ```text
//! [magic 0xA6: u8][kind: u8][len: u32][crc32: u32][payload: len bytes]
//! ```
//!
//! `kind` is `E` (applied event), `O` (decision outcome), `S` (engine
//! snapshot), `B` (epoch begin), `X` (domain export), or `I` (domain
//! import); the CRC (IEEE 802.3) covers the kind
//! byte and the payload, so a bit flip anywhere in a frame's content is
//! detected. Payloads are UTF-8 text:
//!
//! * `E` — `n <event line>` or `f <event line>`, where the flag records
//!   whether the event was applied on the normal or the degraded
//!   (backpressure fast) path and the event line is the single-event
//!   trace format of `rt_model::io::format_event` (shortest round-trip
//!   float formatting, so replay sees bit-identical parameters).
//! * `O` — `<at:bits-hex> <task> <A|R|S|M> <domain|->`: the decision
//!   audit trail. Recovery *ignores* outcome records — decisions are
//!   reconstructed by replaying `E` records — they exist so external
//!   tooling can audit what was decided without an engine.
//! * `S` — the engine snapshot text (see
//!   [`AdmissionEngine::encode_snapshot`](crate::AdmissionEngine::encode_snapshot)).
//! * `B` — the decimal epoch number under which every following record
//!   was written. A server stamps one when it begins (or resumes) serving
//!   as primary; replication followers use it to fence off late writes
//!   from a deposed primary (see the `replication` module).
//! * `X` — `<local> <payload>`: the domain at local index `local` was
//!   exported (live resharding); the payload is the migration payload of
//!   [`AdmissionEngine::export_domain`](crate::AdmissionEngine::export_domain).
//!   Replay re-fences and re-clears the domain so a recovered source
//!   shard cannot resurrect migrated state.
//! * `I` — `<key> <payload>`: a migrated domain was imported under the
//!   given idempotency key. Replay re-imports it, so the target shard's
//!   recovery rebuilds the post-migration shape.
//!
//! ## Torn-tail tolerance
//!
//! [`scan`] walks frames until the first invalid one (bad magic, short
//! frame, CRC mismatch, or non-UTF-8 payload) and reports the valid
//! prefix plus how much was lost. A crash can tear at most the final
//! record (the file is append-only and written frame-at-a-time), but the
//! scanner also survives grosser corruption — anything after the first
//! invalid byte is counted as lost and truncated away when the journal
//! reopens for append.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use rt_model::io::{format_event, EventRecord};

use crate::engine::{Decision, Verdict};

/// First byte of every frame; resynchronisation anchor for loss counting.
pub const FRAME_MAGIC: u8 = 0xA6;

/// Frame header length: magic + kind + len + crc.
const HEADER_LEN: usize = 10;

/// Upper bound on a sane payload length (64 MiB); anything larger in a
/// length field is treated as corruption rather than attempted.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let mut c = state;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// IEEE CRC-32 over `kind` followed by `payload` — the checksum stored in
/// each frame header.
#[must_use]
pub fn frame_crc(kind: u8, payload: &[u8]) -> u32 {
    let state = crc32_update(0xFFFF_FFFF, &[kind]);
    crc32_update(state, payload) ^ 0xFFFF_FFFF
}

/// Journal record kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// An applied event (`E`): the replayable log.
    Event,
    /// A decision outcome (`O`): audit-only, skipped by recovery.
    Outcome,
    /// An embedded engine snapshot (`S`): a replay starting point.
    Snapshot,
    /// An epoch-begin marker (`B`): fencing for replicated failover.
    Epoch,
    /// A domain-export record (`X`): the domain left this engine, carrying
    /// its migration payload. Recovery re-applies the fence and clear.
    Export,
    /// A domain-import record (`I`): a migrated domain landed on this
    /// engine under an idempotency key. Recovery re-applies the import.
    Import,
}

impl RecordKind {
    fn from_byte(b: u8) -> Option<Self> {
        match b {
            b'E' => Some(RecordKind::Event),
            b'O' => Some(RecordKind::Outcome),
            b'S' => Some(RecordKind::Snapshot),
            b'B' => Some(RecordKind::Epoch),
            b'X' => Some(RecordKind::Export),
            b'I' => Some(RecordKind::Import),
            _ => None,
        }
    }

    fn byte(self) -> u8 {
        match self {
            RecordKind::Event => b'E',
            RecordKind::Outcome => b'O',
            RecordKind::Snapshot => b'S',
            RecordKind::Epoch => b'B',
            RecordKind::Export => b'X',
            RecordKind::Import => b'I',
        }
    }
}

/// Error raised by journal recovery.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// The journal file could not be read or written.
    Io(std::io::Error),
    /// A snapshot record failed to restore.
    Snapshot {
        /// 1-based line within the snapshot payload.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A journaled event record failed to parse or re-apply during
    /// recovery replay (it applied cleanly when first journaled, so this
    /// indicates external tampering or a config mismatch).
    Replay {
        /// 0-based index of the record within the valid prefix.
        record: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O: {e}"),
            JournalError::Snapshot { line, reason } => {
                write!(f, "snapshot line {line}: {reason}")
            }
            JournalError::Replay { record, reason } => {
                write!(f, "replaying journal record {record}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// When the journal calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` on snapshots and explicit [`Journal::sync`] (drain) only.
    /// Appends still reach the OS page cache before the decision is
    /// acknowledged, so they survive a process kill; only a whole-machine
    /// power loss can drop the post-snapshot tail.
    #[default]
    OnSnapshot,
    /// `fsync` after every flushed append batch: full power-loss
    /// durability at a per-event syscall cost.
    Always,
}

/// Journal tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Embed a snapshot after this many event records (0 disables
    /// periodic snapshots; one is still written on graceful drain).
    pub snapshot_every: u64,
    /// Fsync policy.
    pub fsync: FsyncPolicy,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            snapshot_every: 256,
            fsync: FsyncPolicy::OnSnapshot,
        }
    }
}

/// An append-only CRC-framed journal file.
///
/// Appends are buffered in memory; [`Journal::flush`] writes the pending
/// frames with one `write` call. The engine flushes once per applied
/// event, after the event and its outcomes are framed, so a record is
/// never acknowledged before it is handed to the OS.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    config: JournalConfig,
    buf: Vec<u8>,
    records: u64,
    events_since_snapshot: u64,
}

impl Journal {
    /// Creates (truncating) a journal at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create<P: AsRef<Path>>(path: P, config: JournalConfig) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Journal {
            file,
            path,
            config,
            buf: Vec::new(),
            records: 0,
            events_since_snapshot: 0,
        })
    }

    /// Reopens a scanned journal for appending: truncates the file to the
    /// valid prefix `scan` found (discarding any torn tail) and positions
    /// at its end. `records` continues from the prefix count.
    ///
    /// # Errors
    ///
    /// Propagates open/truncate errors.
    pub fn append_to<P: AsRef<Path>>(
        path: P,
        config: JournalConfig,
        scan: &JournalScan,
    ) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(scan.valid_len)?;
        let mut journal = Journal {
            file,
            path,
            config,
            buf: Vec::new(),
            records: scan.records.len() as u64,
            events_since_snapshot: scan.events_since_last_snapshot(),
        };
        journal.file.seek(SeekFrom::End(0))?;
        Ok(journal)
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total valid records in the file (including any recovered prefix
    /// and frames still buffered for the next flush).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    fn frame(&mut self, kind: RecordKind, payload: &[u8]) {
        let k = kind.byte();
        self.buf.push(FRAME_MAGIC);
        self.buf.push(k);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&frame_crc(k, payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.records += 1;
    }

    /// Appends an applied-event record (`fast` = degraded backpressure
    /// path). Buffered until [`Journal::flush`].
    pub fn append_event(&mut self, event: &EventRecord, fast: bool) {
        let flag = if fast { 'f' } else { 'n' };
        let payload = format!("{flag} {}", format_event(event));
        self.frame(RecordKind::Event, payload.as_bytes());
        self.events_since_snapshot += 1;
    }

    /// Appends a decision-outcome record (audit trail; recovery ignores
    /// it). The timestamp is stored as raw `f64` bits so audits can be
    /// compared bit-exactly.
    pub fn append_outcome(&mut self, decision: &Decision) {
        let (code, domain) = match decision.verdict {
            Verdict::Accepted { domain } => ('A', Some(domain)),
            Verdict::Rejected => ('R', None),
            Verdict::Shed { domain } => ('S', Some(domain)),
            Verdict::Readmitted { domain } => ('M', Some(domain)),
        };
        let domain = domain.map_or_else(|| "-".to_string(), |d| d.to_string());
        let payload = format!(
            "{:016x} {} {code} {domain}",
            decision.at.to_bits(),
            decision.task.index()
        );
        self.frame(RecordKind::Outcome, payload.as_bytes());
    }

    /// Appends an epoch-begin record: every record after it was written
    /// under `epoch`. Buffered until [`Journal::flush`]; callers that
    /// need the fence durable before serving (promotion) follow with
    /// [`Journal::sync`].
    pub fn append_epoch(&mut self, epoch: u64) {
        self.frame(RecordKind::Epoch, epoch.to_string().as_bytes());
    }

    /// Appends a domain-export record: `<local> <payload>`. Recovery
    /// replays the fence/clear so a recovered source shard cannot
    /// resurrect a migrated domain.
    pub fn append_export(&mut self, local: usize, payload: &str) {
        let text = format!("{local} {payload}");
        self.frame(RecordKind::Export, text.as_bytes());
    }

    /// Appends a domain-import record: `<key> <payload>`, where `key` is
    /// the migration idempotency key (no whitespace). Recovery replays
    /// the import, reconstructing the domain on the target shard.
    pub fn append_import(&mut self, key: &str, payload: &str) {
        let text = format!("{key} {payload}");
        self.frame(RecordKind::Import, text.as_bytes());
    }

    /// Appends a snapshot record, flushes, and fsyncs (snapshots are the
    /// recovery anchors, so they are always made durable). Resets the
    /// periodic-snapshot countdown.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_snapshot(&mut self, snapshot: &str) -> std::io::Result<()> {
        self.frame(RecordKind::Snapshot, snapshot.as_bytes());
        self.events_since_snapshot = 0;
        self.write_pending()?;
        self.file.sync_data()
    }

    /// Whether the periodic-snapshot cadence is due.
    #[must_use]
    pub fn want_snapshot(&self) -> bool {
        self.config.snapshot_every > 0 && self.events_since_snapshot >= self.config.snapshot_every
    }

    fn write_pending(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Writes all buffered frames to the file (one `write` syscall),
    /// fsyncing as well under [`FsyncPolicy::Always`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.write_pending()?;
        if self.config.fsync == FsyncPolicy::Always {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Flushes and fsyncs regardless of policy (graceful-drain path).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.write_pending()?;
        self.file.sync_data()
    }
}

/// One record recovered by [`scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedRecord {
    /// Record kind.
    pub kind: RecordKind,
    /// UTF-8 payload.
    pub payload: String,
}

/// The result of scanning a journal file: the valid record prefix and an
/// accounting of whatever follows it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// Every record of the valid prefix, in file order.
    pub records: Vec<ScannedRecord>,
    /// Byte length of the valid prefix ([`Journal::append_to`] truncates
    /// the file to this).
    pub valid_len: u64,
    /// Total file length as found.
    pub file_len: u64,
    /// Records lost after the valid prefix: one for any torn/corrupt
    /// frame, plus every structurally valid frame stranded behind it
    /// (unreachable for replay because the log has a gap).
    pub records_lost: u64,
}

impl JournalScan {
    /// Bytes past the valid prefix (0 for a clean file).
    #[must_use]
    pub fn bytes_lost(&self) -> u64 {
        self.file_len - self.valid_len
    }

    /// Index of the last snapshot record in the prefix, if any.
    #[must_use]
    pub fn last_snapshot(&self) -> Option<usize> {
        self.records
            .iter()
            .rposition(|r| r.kind == RecordKind::Snapshot)
    }

    /// Event records after the last snapshot (drives the reopened
    /// journal's periodic-snapshot countdown).
    #[must_use]
    pub fn events_since_last_snapshot(&self) -> u64 {
        let start = self.last_snapshot().map_or(0, |i| i + 1);
        self.records[start..]
            .iter()
            .filter(|r| r.kind == RecordKind::Event)
            .count() as u64
    }
}

/// The state of the frame starting at some offset of a byte stream.
///
/// Distinguishes *incomplete* (a valid frame whose tail bytes have not
/// arrived yet — wait for more) from *invalid* (bad magic/kind, an insane
/// length, or a CRC mismatch — corruption). The replication stream uses
/// this to forward only whole frames and to classify torn tails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameCheck {
    /// A complete, CRC-valid frame ends at `end` (exclusive byte offset).
    Complete {
        /// Offset just past the frame.
        end: usize,
    },
    /// The bytes so far are a consistent frame prefix; more are needed.
    Incomplete,
    /// The bytes cannot be a frame: corruption starts here.
    Invalid,
}

/// Classifies the frame starting at `offset` — see [`FrameCheck`].
#[must_use]
pub fn check_frame(data: &[u8], offset: usize) -> FrameCheck {
    let avail = data.len().saturating_sub(offset);
    if avail == 0 {
        return FrameCheck::Incomplete;
    }
    if data[offset] != FRAME_MAGIC {
        return FrameCheck::Invalid;
    }
    if avail >= 2 && RecordKind::from_byte(data[offset + 1]).is_none() {
        return FrameCheck::Invalid;
    }
    let Some(header) = data.get(offset..offset + HEADER_LEN) else {
        return FrameCheck::Incomplete;
    };
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
    if len > MAX_PAYLOAD {
        return FrameCheck::Invalid;
    }
    let crc = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    let start = offset + HEADER_LEN;
    let Some(payload) = data.get(start..start + len as usize) else {
        return FrameCheck::Incomplete;
    };
    if frame_crc(header[1], payload) != crc || std::str::from_utf8(payload).is_err() {
        return FrameCheck::Invalid;
    }
    FrameCheck::Complete {
        end: start + len as usize,
    }
}

/// Attempts to decode one frame at `offset`; `None` if anything about it
/// is invalid (bad magic/kind, insane or short length, CRC mismatch,
/// non-UTF-8 payload) or incomplete.
fn try_frame(data: &[u8], offset: usize) -> Option<(RecordKind, String, usize)> {
    let FrameCheck::Complete { end } = check_frame(data, offset) else {
        return None;
    };
    let kind = RecordKind::from_byte(data[offset + 1])?;
    let payload = std::str::from_utf8(&data[offset + HEADER_LEN..end]).ok()?;
    Some((kind, payload.to_string(), end))
}

/// Scans a journal file, returning the valid record prefix and counting
/// whatever was lost to a torn or corrupted tail. Never fails on
/// corruption — only on I/O errors reading the file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn scan<P: AsRef<Path>>(path: P) -> std::io::Result<JournalScan> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    Ok(scan_bytes(&data))
}

/// [`scan`] over an in-memory byte slice — the same torn-tail-tolerant
/// walk, used directly by the replication layer to resynchronise a
/// follower's mirror after a mid-frame disconnect.
#[must_use]
pub fn scan_bytes(data: &[u8]) -> JournalScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while let Some((kind, payload, next)) = try_frame(data, offset) {
        records.push(ScannedRecord { kind, payload });
        offset = next;
    }
    let valid_len = offset as u64;
    // Loss accounting: resynchronise on the magic byte and count any
    // structurally valid frames stranded past the corruption (they cannot
    // be replayed — the log has a gap before them), plus one for the
    // torn/corrupt region itself.
    let mut records_lost = 0u64;
    let mut saw_garbage = false;
    let mut i = offset;
    while i < data.len() {
        match try_frame(data, i) {
            Some((_, _, next)) => {
                records_lost += 1;
                i = next;
            }
            None => {
                saw_garbage = true;
                i += 1;
            }
        }
    }
    records_lost += u64::from(saw_garbage);
    JournalScan {
        records,
        valid_len,
        file_len: data.len() as u64,
        records_lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_model::io::EventKind;
    use rt_model::Task;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dvs_admit_journal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_event(at: f64) -> EventRecord {
        EventRecord::new(
            at,
            EventKind::Arrive(Task::new(3, 123.456, 1000).unwrap().with_penalty(7.5)),
        )
    }

    #[test]
    fn crc_is_the_ieee_polynomial() {
        // Standard check value for CRC-32/ISO-HDLC over "123456789".
        let state = crc32_update(0xFFFF_FFFF, b"123456789") ^ 0xFFFF_FFFF;
        assert_eq!(state, 0xCBF4_3926);
    }

    #[test]
    fn append_flush_scan_round_trips() {
        let path = tmp("round_trip.wal");
        let mut j = Journal::create(&path, JournalConfig::default()).unwrap();
        j.append_event(&sample_event(1.5), false);
        j.append_event(&EventRecord::new(2.0, EventKind::Tick), true);
        j.append_snapshot("snapshot-text\nline2").unwrap();
        j.flush().unwrap();
        assert_eq!(j.records(), 3);

        let scan = scan(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records_lost, 0);
        assert_eq!(scan.bytes_lost(), 0);
        assert_eq!(scan.records[0].kind, RecordKind::Event);
        assert!(scan.records[0].payload.starts_with("n 1.5 arrive 3 "));
        assert!(scan.records[1].payload.starts_with("f 2 tick"));
        assert_eq!(scan.records[2].kind, RecordKind::Snapshot);
        assert_eq!(scan.last_snapshot(), Some(2));
        assert_eq!(scan.events_since_last_snapshot(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_counted() {
        let path = tmp("torn.wal");
        let mut j = Journal::create(&path, JournalConfig::default()).unwrap();
        for i in 0..4 {
            j.append_event(&sample_event(f64::from(i)), false);
        }
        j.flush().unwrap();
        let full = std::fs::read(&path).unwrap();
        // Tear 3 bytes off the final record.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records_lost, 1);
        assert!(s.bytes_lost() > 0);

        // Reopening for append truncates the tear away.
        let j2 = Journal::append_to(&path, JournalConfig::default(), &s).unwrap();
        assert_eq!(j2.records(), 3);
        drop(j2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), s.valid_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_strands_later_records() {
        let path = tmp("midflip.wal");
        let mut j = Journal::create(&path, JournalConfig::default()).unwrap();
        j.append_event(&sample_event(0.0), false);
        let first_len = {
            j.flush().unwrap();
            std::fs::metadata(&path).unwrap().len() as usize
        };
        j.append_event(&sample_event(1.0), false);
        j.append_event(&sample_event(2.0), false);
        j.flush().unwrap();
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte of the SECOND record: it fails its CRC, and
        // the (valid) third record behind it is stranded.
        data[first_len + HEADER_LEN + 3] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records_lost, 2, "corrupt frame + stranded record");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_cadence_counts_events() {
        let path = tmp("cadence.wal");
        let mut j = Journal::create(
            &path,
            JournalConfig {
                snapshot_every: 2,
                fsync: FsyncPolicy::OnSnapshot,
            },
        )
        .unwrap();
        assert!(!j.want_snapshot());
        j.append_event(&sample_event(0.0), false);
        assert!(!j.want_snapshot());
        j.append_event(&sample_event(1.0), false);
        assert!(j.want_snapshot());
        j.append_snapshot("s").unwrap();
        assert!(!j.want_snapshot());
        // Outcome records do not advance the cadence.
        j.append_outcome(&Decision {
            at: 1.0,
            task: rt_model::TaskId::new(9),
            verdict: Verdict::Rejected,
        });
        assert!(!j.want_snapshot());
        j.flush().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn outcome_payloads_are_bit_exact() {
        let path = tmp("outcome.wal");
        let mut j = Journal::create(&path, JournalConfig::default()).unwrap();
        let at = 0.1 + 0.2; // not exactly 0.3
        j.append_outcome(&Decision {
            at,
            task: rt_model::TaskId::new(4),
            verdict: Verdict::Accepted { domain: 1 },
        });
        j.flush().unwrap();
        let s = scan(&path).unwrap();
        let payload = &s.records[0].payload;
        let bits_hex = payload.split_whitespace().next().unwrap();
        assert_eq!(u64::from_str_radix(bits_hex, 16).unwrap(), at.to_bits());
        assert!(payload.ends_with("4 A 1"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scan_of_garbage_only_file_loses_one_record() {
        let path = tmp("garbage.wal");
        std::fs::write(&path, b"not a journal at all").unwrap();
        let s = scan(&path).unwrap();
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, 0);
        assert_eq!(s.records_lost, 1);
        std::fs::remove_file(&path).unwrap();
    }
}
