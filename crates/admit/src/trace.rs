//! Deterministic arrival-trace generation and replay.
//!
//! A [`TraceSpec`] turns a generated workload ([`WorkloadSpec`]) into a
//! timestamped event stream: every task arrives at a random instant,
//! resides for a random interval, and departs; periodic `Tick` events give
//! the engine its re-optimization opportunities, and a final tick pins the
//! accounting window so replays of different policies integrate cost over
//! exactly the same span. Generation is seed-deterministic, and the event
//! order is a total order (time, kind, id) so traces are reproducible
//! byte-for-byte.

use rt_model::generator::WorkloadSpec;
use rt_model::io::{EventKind, EventRecord};
use rt_model::rng::Rng;
use rt_model::ModelError;

use crate::engine::AdmissionEngine;
use crate::AdmitError;

/// Specification of a synthetic arrival trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Number of tasks.
    pub n: usize,
    /// Total utilization demand of the underlying workload (values above
    /// the processor capacity model sustained overload).
    pub load: f64,
    /// RNG seed (workload generation and timing draws).
    pub seed: u64,
    /// Trace span in ticks; all activity happens in `[0, span]`.
    pub span: f64,
    /// Interval between `Tick` events.
    pub tick_every: f64,
    /// When non-zero, pin every task to power domain `id % domains`
    /// ([`Task::with_domain`](rt_model::Task::with_domain)) — the
    /// deterministic assignment the router uses, so a generated trace can
    /// drive a sharded cluster and a single multi-domain engine to the
    /// same decision log. Zero (the default) leaves tasks unpinned.
    pub domains: usize,
}

impl TraceSpec {
    /// Creates a spec with the default span (4 billing horizons of 1000
    /// ticks) and tick interval (250 ticks).
    #[must_use]
    pub fn new(n: usize, load: f64, seed: u64) -> Self {
        TraceSpec {
            n,
            load,
            seed,
            span: 4000.0,
            tick_every: 250.0,
            domains: 0,
        }
    }

    /// Overrides the span.
    #[must_use]
    pub fn span(mut self, span: f64) -> Self {
        self.span = span;
        self
    }

    /// Overrides the tick interval.
    #[must_use]
    pub fn tick_every(mut self, interval: f64) -> Self {
        self.tick_every = interval;
        self
    }

    /// Pins every generated task to power domain `id % k` (`0` disables
    /// pinning). See [`TraceSpec::domains`].
    #[must_use]
    pub fn domains(mut self, k: usize) -> Self {
        self.domains = k;
        self
    }

    /// Generates the event trace: arrivals in `[0, 0.6·span)`, residence
    /// drawn from `[0.25·span, 0.75·span)` (departures clamped to the
    /// span), ticks every `tick_every`, and a final tick at `span`.
    ///
    /// # Errors
    ///
    /// Workload-generation errors propagate.
    pub fn generate(&self) -> Result<Vec<EventRecord>, ModelError> {
        let tasks = WorkloadSpec::new(self.n, self.load)
            .seed(self.seed)
            .generate()?;
        // Separate stream for the timing draws so they do not perturb the
        // workload parameters (same tasks as the offline experiments).
        let mut rng = Rng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut events = Vec::new();
        for task in tasks.iter() {
            let arrive = rng.gen_f64(0.0, 0.6 * self.span);
            let residence = rng.gen_f64(0.25 * self.span, 0.75 * self.span);
            let depart = (arrive + residence).min(self.span);
            let task = if self.domains > 0 {
                task.with_domain(task.id().index() % self.domains)
            } else {
                *task
            };
            events.push(EventRecord::new(arrive, EventKind::Arrive(task)));
            events.push(EventRecord::new(depart, EventKind::Depart(task.id())));
        }
        let mut t = self.tick_every;
        while t < self.span {
            events.push(EventRecord::new(t, EventKind::Tick));
            t += self.tick_every;
        }
        events.push(EventRecord::new(self.span, EventKind::Tick));
        sort_trace(&mut events);
        Ok(events)
    }
}

/// Sorts a trace into the canonical total order: by time, then departures
/// before arrivals before ticks, then by task id. Replaying a trace in
/// this order is what the determinism contract is stated over.
pub fn sort_trace(events: &mut [EventRecord]) {
    events.sort_by(|a, b| {
        a.at.total_cmp(&b.at)
            .then_with(|| rank(&a.kind).cmp(&rank(&b.kind)))
            .then_with(|| event_id(&a.kind).cmp(&event_id(&b.kind)))
    });
}

fn rank(kind: &EventKind) -> u8 {
    match kind {
        EventKind::Depart(_) => 0,
        EventKind::Arrive(_) => 1,
        EventKind::Tick => 2,
    }
}

fn event_id(kind: &EventKind) -> usize {
    match kind {
        EventKind::Arrive(t) => t.id().index(),
        EventKind::Depart(id) => id.index(),
        EventKind::Tick => 0,
    }
}

/// Replays a trace through an engine, event by event.
///
/// # Errors
///
/// Engine errors propagate (a generated trace never triggers them).
pub fn replay(engine: &mut AdmissionEngine, trace: &[EventRecord]) -> Result<(), AdmitError> {
    for event in trace {
        engine.apply(event)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let spec = TraceSpec::new(12, 1.5, 7);
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a, b);
        assert!(
            a.windows(2).all(|w| w[0].at <= w[1].at),
            "trace not time-sorted"
        );
        // 12 arrivals + 12 departures + ticks (includes the final one).
        let arrivals = a
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Arrive(_)))
            .count();
        let departs = a
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Depart(_)))
            .count();
        assert_eq!(arrivals, 12);
        assert_eq!(departs, 12);
        assert_eq!(a.last().unwrap().kind, EventKind::Tick);
        assert!((a.last().unwrap().at - spec.span).abs() < 1e-12);
    }

    #[test]
    fn domain_assignment_is_deterministic_round_robin() {
        let unpinned = TraceSpec::new(10, 1.5, 7).generate().unwrap();
        for e in &unpinned {
            if let EventKind::Arrive(t) = &e.kind {
                assert_eq!(t.domain(), None);
            }
        }
        let pinned = TraceSpec::new(10, 1.5, 7).domains(4).generate().unwrap();
        for e in &pinned {
            if let EventKind::Arrive(t) = &e.kind {
                assert_eq!(t.domain(), Some(t.id().index() % 4));
            }
        }
        // Pinning does not perturb timing or ordering: same ids at the
        // same instants.
        let times = |tr: &[EventRecord]| -> Vec<(u64, &'static str)> {
            tr.iter()
                .map(|e| (e.at.to_bits(), e.kind.label()))
                .collect()
        };
        assert_eq!(times(&unpinned), times(&pinned));
    }

    #[test]
    fn departures_never_precede_arrivals() {
        let trace = TraceSpec::new(20, 2.0, 3).generate().unwrap();
        for e in &trace {
            if let EventKind::Depart(id) = e.kind {
                let arrive_at = trace
                    .iter()
                    .find_map(|a| match &a.kind {
                        EventKind::Arrive(t) if t.id() == id => Some(a.at),
                        _ => None,
                    })
                    .unwrap();
                assert!(arrive_at <= e.at);
            }
        }
    }
}
