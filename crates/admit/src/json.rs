//! Minimal JSON reader for the `dvs_admitd` wire protocol.
//!
//! The workspace builds offline with zero external dependencies, so the
//! serving front-end cannot use serde. Requests are single-line JSON
//! objects with primitive values; this module parses exactly that subset —
//! one top-level object whose values are null, booleans, numbers, strings,
//! or flat arrays of those primitives. Nested objects are rejected: the
//! protocol never produces them in *requests* (responses may nest, but the
//! server only ever writes those).
//!
//! ```
//! use dvs_admit::json::{parse_object, JsonValue};
//!
//! let kv = parse_object(r#"{"op":"arrive","id":3,"cycles":30.0}"#).unwrap();
//! assert_eq!(kv[0], ("op".to_string(), JsonValue::Str("arrive".to_string())));
//! assert_eq!(kv[1].1.as_f64(), Some(3.0));
//! ```

use std::fmt;

/// A primitive JSON value (plus flat arrays of primitives).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array (flat in protocol position; nested via
    /// [`parse_document`]).
    Arr(Vec<JsonValue>),
    /// An object — only ever produced by [`parse_document`];
    /// [`parse_object`] rejects nesting.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Error raised on malformed protocol JSON, with the byte offset of the
/// first offending character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset in the input line.
    pub at: usize,
    /// What was expected.
    pub expected: &'static str,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: expected {}", self.at, self.expected)
    }
}

impl std::error::Error for JsonParseError {}

struct Cursor<'a, 'p> {
    bytes: &'a [u8],
    pos: usize,
    /// Recycled `String` allocations to draw from when decoding strings
    /// (see [`Scratch`]); `None` outside the steady-state protocol path.
    pool: Option<&'p mut Vec<String>>,
}

impl<'a, 'p> Cursor<'a, 'p> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, expected: &'static str) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn err(&self, expected: &'static str) -> JsonParseError {
        JsonParseError {
            at: self.pos,
            expected,
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"', "string")?;
        let mut out = match self.pool.as_mut().and_then(|p| p.pop()) {
            Some(mut recycled) => {
                recycled.clear();
                recycled
            }
            None => String::new(),
        };
        loop {
            match self.peek().ok_or_else(|| self.err("closing quote"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("escape character"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("4 hex digits"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).ok_or_else(|| self.err("scalar value"))?);
                        }
                        _ => return Err(self.err("valid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("character"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, JsonParseError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .ok_or(JsonParseError {
                at: start,
                expected: "number",
            })
    }

    fn value(&mut self, allow_array: bool) -> Result<JsonValue, JsonParseError> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("value"))? {
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b'[' if allow_array => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.value(false)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return Err(self.err("',' or ']'")),
                    }
                }
            }
            b't' | b'f' => {
                if self.literal("true") {
                    Ok(JsonValue::Bool(true))
                } else if self.literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(self.err("boolean"))
                }
            }
            b'n' => {
                if self.literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(self.err("null"))
                }
            }
            _ => self.number().map(JsonValue::Num),
        }
    }

    /// Recursion cap for [`parse_document`]: deep enough for any report
    /// this workspace emits, shallow enough to bound the stack.
    const MAX_DEPTH: usize = 64;

    /// Full-JSON value parser (arbitrary nesting), used for trusted
    /// documents like the benchmark baseline rather than protocol lines.
    fn document_value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > Self::MAX_DEPTH {
            return Err(self.err("shallower nesting"));
        }
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("value"))? {
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.document_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return Err(self.err("',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "':'")?;
                    pairs.push((key, self.document_value(depth + 1)?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Obj(pairs));
                        }
                        _ => return Err(self.err("',' or '}'")),
                    }
                }
            }
            b't' | b'f' => {
                if self.literal("true") {
                    Ok(JsonValue::Bool(true))
                } else if self.literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(self.err("boolean"))
                }
            }
            b'n' => {
                if self.literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(self.err("null"))
                }
            }
            _ => self.number().map(JsonValue::Num),
        }
    }
}

/// Parses one complete JSON document of arbitrary (bounded) nesting.
/// Unlike [`parse_object`] this accepts nested objects and arrays — use it
/// for trusted on-disk documents, never for protocol input.
///
/// # Errors
///
/// [`JsonParseError`] with the byte offset of the first offense.
pub fn parse_document(text: &str) -> Result<JsonValue, JsonParseError> {
    let mut c = Cursor {
        bytes: text.as_bytes(),
        pos: 0,
        pool: None,
    };
    let value = c.document_value(0)?;
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(c.err("end of document"));
    }
    Ok(value)
}

/// Parses one flat JSON object, returning its key/value pairs in document
/// order (duplicate keys are kept; callers take the first match).
///
/// # Errors
///
/// [`JsonParseError`] with the byte offset of the first offense; nested
/// objects are an offense by design (see the [module docs](self)).
pub fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, JsonParseError> {
    let mut out = Vec::new();
    parse_object_impl(line, &mut out, None)?;
    Ok(out)
}

fn parse_object_impl(
    line: &str,
    out: &mut Vec<(String, JsonValue)>,
    pool: Option<&mut Vec<String>>,
) -> Result<(), JsonParseError> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
        pool,
    };
    c.skip_ws();
    c.eat(b'{', "'{'")?;
    c.skip_ws();
    if c.peek() == Some(b'}') {
        c.pos += 1;
    } else {
        loop {
            c.skip_ws();
            let key = c.string()?;
            c.skip_ws();
            c.eat(b':', "':'")?;
            let value = c.value(true)?;
            out.push((key, value));
            c.skip_ws();
            match c.peek() {
                Some(b',') => c.pos += 1,
                Some(b'}') => {
                    c.pos += 1;
                    break;
                }
                _ => return Err(c.err("',' or '}'")),
            }
        }
    }
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(c.err("end of line"));
    }
    Ok(())
}

/// Reusable parse buffers for the steady-state protocol path.
///
/// The serving loop parses one request line per iteration; allocating a
/// fresh pair vector and fresh key/value `String`s for every line is pure
/// churn. A `Scratch` owns both and recycles them: the pair vector keeps
/// its capacity across lines, and every `String` it held is returned to a
/// bounded pool that [`parse_object_into`] draws from before touching the
/// allocator. After the first few lines of a session, parsing a typical
/// request performs no heap allocation at all.
#[derive(Debug, Default)]
pub struct Scratch {
    pairs: Vec<(String, JsonValue)>,
    pool: Vec<String>,
}

/// Upper bound on pooled strings: protocol requests carry a handful of
/// keys and at most one or two string values, so anything beyond this is
/// a hostile or malformed line whose allocations we'd rather release.
const SCRATCH_POOL_CAP: usize = 64;

fn recycle_value(value: JsonValue, pool: &mut Vec<String>) {
    match value {
        JsonValue::Str(s) if pool.len() < SCRATCH_POOL_CAP => pool.push(s),
        JsonValue::Arr(items) => {
            for item in items {
                recycle_value(item, pool);
            }
        }
        JsonValue::Obj(pairs) => {
            for (key, item) in pairs {
                if pool.len() < SCRATCH_POOL_CAP {
                    pool.push(key);
                }
                recycle_value(item, pool);
            }
        }
        _ => {}
    }
}

/// [`parse_object`], but reusing `scratch`'s buffers instead of
/// allocating. Returns the parsed pairs as a borrow of `scratch`; the
/// previous call's pairs are recycled first, so at most one parsed line
/// is alive per `Scratch`.
///
/// # Errors
///
/// Exactly as [`parse_object`] (the scratch state stays reusable after an
/// error).
pub fn parse_object_into<'s>(
    line: &str,
    scratch: &'s mut Scratch,
) -> Result<&'s [(String, JsonValue)], JsonParseError> {
    let Scratch { pairs, pool } = scratch;
    for (key, value) in pairs.drain(..) {
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(key);
        }
        recycle_value(value, pool);
    }
    parse_object_impl(line, pairs, Some(pool))?;
    Ok(pairs)
}

/// Looks up `key` in parsed pairs (first occurrence).
#[must_use]
pub fn get<'a>(pairs: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shapes() {
        let kv = parse_object(r#" {"op":"arrive","at":1.5,"id":3,"cycles":30.0,"deadline":null} "#)
            .unwrap();
        assert_eq!(get(&kv, "op").unwrap().as_str(), Some("arrive"));
        assert_eq!(get(&kv, "at").unwrap().as_f64(), Some(1.5));
        assert_eq!(get(&kv, "deadline"), Some(&JsonValue::Null));
        assert_eq!(get(&kv, "missing"), None);
    }

    #[test]
    fn parses_arrays_booleans_and_escapes() {
        let kv = parse_object(r#"{"xs":[1,2.5,-3e2],"flag":true,"s":"a\"b\né"}"#).unwrap();
        assert_eq!(
            get(&kv, "xs"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.5),
                JsonValue::Num(-300.0)
            ]))
        );
        assert_eq!(get(&kv, "flag"), Some(&JsonValue::Bool(true)));
        assert_eq!(get(&kv, "s").unwrap().as_str(), Some("a\"b\né"));
    }

    #[test]
    fn empty_object_and_errors() {
        assert!(parse_object("{}").unwrap().is_empty());
        assert!(parse_object("").is_err());
        assert!(parse_object("{\"a\":1} trailing").is_err());
        assert!(
            parse_object("{\"a\":{}}").is_err(),
            "nested objects rejected"
        );
        assert!(
            parse_object("{\"a\":[[1]]}").is_err(),
            "nested arrays rejected"
        );
        assert!(parse_object("{\"a\":Infinity}").is_err());
        let err = parse_object("{\"a\"").unwrap_err();
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn document_parser_handles_nesting() {
        let doc = parse_document(
            "{\n  \"version\": 3,\n  \"tables\": [{\"a\": 1, \"b\": [1, 2]}, {\"a\": 2}]\n}\n",
        )
        .unwrap();
        let pairs = doc.as_obj().unwrap();
        assert_eq!(get(pairs, "version").unwrap().as_f64(), Some(3.0));
        let tables = get(pairs, "tables").unwrap().as_arr().unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(
            get(tables[0].as_obj().unwrap(), "b")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
        assert!(parse_document("{\"a\":1} x").is_err());
        let deep = format!("{}1{}", "[".repeat(80), "]".repeat(80));
        assert!(parse_document(&deep).is_err(), "depth cap enforced");
    }

    #[test]
    fn scratch_parse_matches_fresh_parse_and_survives_errors() {
        let mut scratch = Scratch::default();
        let lines = [
            r#"{"op":"arrive","at":1.5,"id":3,"cycles":30.0,"penalty":2.5}"#,
            r#"{"op":"tick","at":2.0}"#,
            r#"{"op":"depart","at":3.0,"id":3,"tags":["a","b"]}"#,
            r#"{"op":"stats"}"#,
            r#"{"op":"tick","at":2.5}"#,
        ];
        for line in lines {
            let reused = parse_object_into(line, &mut scratch).unwrap().to_vec();
            assert_eq!(reused, parse_object(line).unwrap(), "{line}");
        }
        // A parse error leaves the scratch reusable.
        assert!(parse_object_into("not json", &mut scratch).is_err());
        let kv = parse_object_into(r#"{"op":"tick","at":9}"#, &mut scratch).unwrap();
        assert_eq!(get(kv, "op").unwrap().as_str(), Some("tick"));
        assert_eq!(get(kv, "at").unwrap().as_f64(), Some(9.0));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "tab\t quote\" back\\ nl\n";
        let line = format!("{{\"s\":\"{}\"}}", escape(raw));
        let kv = parse_object(&line).unwrap();
        assert_eq!(get(&kv, "s").unwrap().as_str(), Some(raw));
    }
}
