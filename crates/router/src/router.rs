//! The scatter-gather router: one stateful front-end over N admission
//! shards.
//!
//! The router speaks the same newline-delimited JSON protocol as
//! `dvs_admitd` and fans requests across a shard fleet:
//!
//! * **Arrive/Depart** are *routed*: every task carries (or is assigned)
//!   a global power-domain pin, the [`ShardMap`] names the owning shard,
//!   and the event goes to that shard alone with the pin translated to
//!   the shard's local domain index.
//! * **Tick** is *fanned out* to every shard concurrently and gathered
//!   in shard-index order, so each shard's engine clock and billing
//!   window advance in lockstep and a cluster tick costs the slowest
//!   shard's re-solve, not the sum of all shards'.
//! * **Stats/shutdown** *scatter-gather*: every shard's counters are
//!   summed into cluster aggregates, and the balance invariant
//!   `Σ accepted + rejected + standing-shed = arrivals` is enforced at
//!   the router — a shard that lost or double-counted an event turns
//!   into a structured `balance-violation` error, not a silent skew.
//! * **Log** serves the router's own **merged decision log**: per-event
//!   decision lines echoed by the shards (`"dlog":true`), rewritten from
//!   shard-local to global domain indices and merged in a stable order
//!   keyed by the global domain. Because every domain lives on exactly
//!   one shard and each shard resolves its owned domains in ascending
//!   global order, the merge reproduces a single multi-domain engine's
//!   iteration order exactly — the K-shard cluster log is byte-identical
//!   to the 1-shard run, at any `DVS_THREADS` (the routing-property
//!   suite pins this across shards × threads).
//!
//! Reads may be **hedged**: a shard spec can name a follower replica
//! (`addr~replica`), and when the primary cannot answer a `stats` read
//! the router falls back to the follower, whose reply carries the
//! `stale_by` staleness bound the router surfaces in the aggregate.
//! `stale_by_max` only folds in bounds from replies a hedged follower
//! actually served — a primary echoing a `stale_by` field can never
//! inflate it.
//!
//! Writes are never hedged and never fall back — a write that reached a
//! replica instead of the primary would fork the shard's history.
//!
//! **Live resharding** (`{"op":"reshard","add":"NAME=ADDR"}` /
//! `{"op":"reshard","remove":"NAME"}`) migrates the minimal set of
//! domains the rendezvous hash moves, one domain at a time, with a
//! drain → snapshot-transfer → cutover protocol:
//!
//! 1. the source shard **exports** the domain — its engine fences the
//!    slot (no further arrivals), journals the export, and hands back a
//!    payload carrying the CPU spec, clock, and every resident task;
//! 2. the target shard **imports** the payload under an idempotency key
//!    `"{version}:{global}"` (the post-reshard map version), journals
//!    it, and answers with the new local slot;
//! 3. only after *every* moved domain has landed does the router bump
//!    the journaled [`ShardMap`] — the version bump is the cutover
//!    fence. A crash anywhere before it leaves the old map in force and
//!    the retry re-runs the same exports (idempotent on a fenced slot)
//!    and imports (deduplicated by key), so no event is double-applied
//!    or lost.
//!
//! A removed member's shard stays in the fleet as a drained shard: its
//! historical counters (departures, ticks, energy) still aggregate, so
//! the cluster balance invariant and stats totals are unchanged by any
//! reshard sequence.

use std::collections::{BTreeMap, BTreeSet};

use dvs_admit::json::{self, JsonValue};
use dvs_admit::server::Handled;
use dvs_admit::{AdmitClient, ClientConfig};

use crate::map::ShardMap;

/// Reserved engine-internal task id (mirrors the engine's anchor id).
const RESERVED_ANCHOR_ID: usize = usize::MAX;

/// One shard endpoint: the primary address and an optional follower
/// replica used for hedged reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Primary (write) address.
    pub addr: String,
    /// Optional read replica (`addr~replica` syntax).
    pub replica: Option<String>,
}

impl ShardSpec {
    /// Parses an `addr` or `addr~replica` spec.
    #[must_use]
    pub fn parse(spec: &str) -> Self {
        match spec.split_once('~') {
            Some((addr, replica)) => ShardSpec {
                addr: addr.to_string(),
                replica: Some(replica.to_string()),
            },
            None => ShardSpec {
                addr: spec.to_string(),
                replica: None,
            },
        }
    }
}

/// Router-level counters (the shards keep their own engine metrics; these
/// count what the *routing layer* did).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterMetrics {
    /// Arrivals routed to their owning shard.
    pub routed_arrives: u64,
    /// Departures routed to their owning shard.
    pub routed_departs: u64,
    /// Ticks fanned out to every shard.
    pub fanned_ticks: u64,
    /// Reads answered by a replica after the primary failed.
    pub hedged_reads: u64,
    /// Events routed per shard (index-aligned with the membership).
    pub per_shard_routed: Vec<u64>,
}

/// Errors raised while building a router (request-time errors are
/// reported in-band as protocol responses, never as `Err`).
#[derive(Debug)]
pub enum RouterError {
    /// The membership and the endpoint list disagree.
    Config(String),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Config(msg) => write!(f, "router config: {msg}"),
        }
    }
}

impl std::error::Error for RouterError {}

/// One entry of a shard's local domain table, index-aligned with the
/// engine's own domain list (fencing keeps a slot, imports append, so
/// local indices are stable for the engine's whole lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// The shard serves this global domain at this local index.
    Live(usize),
    /// The slot's domain was exported away (fenced). The engine still
    /// holds the export payload and re-exports it idempotently, so a
    /// fenced slot is also the retry source when a migration was
    /// interrupted between export and import.
    Fenced(usize),
    /// An engine-side domain with no global assignment. Never routed to.
    Unassigned,
}

impl Slot {
    fn live(self) -> Option<usize> {
        match self {
            Slot::Live(g) => Some(g),
            Slot::Fenced(_) | Slot::Unassigned => None,
        }
    }
}

struct Shard {
    /// Requests to this shard's dedicated worker thread (which owns the
    /// primary connection). One request in flight per shard at a time;
    /// the worker answers on `rx` in request order.
    tx: std::sync::mpsc::Sender<String>,
    rx: std::sync::mpsc::Receiver<Result<String, String>>,
    worker: Option<std::thread::JoinHandle<()>>,
    replica: Option<AdmitClient>,
    /// The member name this shard serves. Routing goes through names,
    /// not indices: the map's member list shifts on removal, while a
    /// drained shard stays in this fleet for stats aggregation.
    name: String,
    /// The endpoint this shard is connected to. A reshard that re-adds
    /// the member compares against this, so a rejoin at a *new* address
    /// reconnects instead of exporting/importing through the stale
    /// connection to the old process.
    spec: ShardSpec,
    /// The shard's local domain table (see [`Slot`]).
    slots: Vec<Slot>,
}

/// Builds one shard endpoint: the worker thread owning the primary
/// connection, the optional read replica, and an empty slot table (the
/// caller fills it from the map or grows it via imports).
fn connect_shard(label: usize, name: &str, spec: &ShardSpec, client: &ClientConfig) -> Shard {
    let mut cfg = client.clone();
    cfg.addr = spec.addr.clone();
    let replica = spec.replica.as_ref().map(|addr| {
        let mut rcfg = client.clone();
        rcfg.addr = addr.clone();
        AdmitClient::new(rcfg)
    });
    let (req_tx, req_rx) = std::sync::mpsc::channel::<String>();
    let (resp_tx, resp_rx) = std::sync::mpsc::channel::<Result<String, String>>();
    let primary = AdmitClient::new(cfg);
    let worker = std::thread::spawn(move || shard_worker(label, primary, &req_rx, &resp_tx));
    Shard {
        tx: req_tx,
        rx: resp_rx,
        worker: Some(worker),
        replica,
        name: name.to_string(),
        spec: spec.clone(),
        slots: Vec::new(),
    }
}

/// Winds a shard's worker down: replacing the request channel ends the
/// worker's loop, which drops the primary connection (the shard server
/// session sees EOF), and the join bounds the cleanup.
fn wind_down(shard: &mut Shard) {
    let (tx, _) = std::sync::mpsc::channel();
    drop(std::mem::replace(&mut shard.tx, tx));
    if let Some(worker) = shard.worker.take() {
        let _ = worker.join();
    }
}

/// The per-shard worker: owns the primary connection and serves one
/// request at a time off its channel. Persistent (rather than spawned
/// per fan-out) so a cluster tick costs two channel hops per shard, not
/// a thread spawn.
fn shard_worker(
    s: usize,
    mut client: AdmitClient,
    rx: &std::sync::mpsc::Receiver<String>,
    tx: &std::sync::mpsc::Sender<Result<String, String>>,
) {
    while let Ok(line) = rx.recv() {
        let resp = client
            .request(&line)
            .map_err(|e| err_response("shard-unavailable", None, &format!("shard {s}: {e}")));
        if tx.send(resp).is_err() {
            break;
        }
    }
}

/// The stateful router front-end. See the [module docs](self).
pub struct Router {
    map: ShardMap,
    shards: Vec<Shard>,
    /// Connection template for shards joined by a live reshard.
    client: ClientConfig,
    /// Tasks currently known to the cluster (accepted *or* standing
    /// rejected/shed — the engine keeps both in its ledger), mapped to
    /// their global domain pin so departures route without a lookup
    /// round-trip.
    present: BTreeMap<usize, usize>,
    /// Tasks that have departed; their ids are burned, mirroring the
    /// engine's own replay-safety rule.
    departed: BTreeSet<usize>,
    clock: f64,
    merged_log: String,
    merged_decisions: u64,
    metrics: RouterMetrics,
}

fn err_response(kind: &str, id: Option<usize>, msg: &str) -> String {
    let id = id.map_or_else(String::new, |i| format!(",\"id\":{i}"));
    format!(
        "{{\"ok\":false,\"kind\":\"{kind}\",\"error\":\"{}\"{id}}}",
        json::escape(msg)
    )
}

fn num_field(pairs: &[(String, JsonValue)], key: &str) -> Result<f64, String> {
    json::get(pairs, key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

/// Extracts the task id from a decision-log line (`t=… τ{id} verdict…`).
fn line_task_id(line: &str) -> Option<usize> {
    let tok = line.split_whitespace().nth(1)?;
    tok.strip_prefix('τ')?.parse().ok()
}

/// Whether a decision-log line records a shed.
fn line_is_shed(line: &str) -> bool {
    line.split_whitespace()
        .nth(2)
        .is_some_and(|v| v.starts_with("shed@"))
}

fn ids_json(ids: &[usize]) -> String {
    let items: Vec<String> = ids.iter().map(usize::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Asks a shard's engine for its `layout` — one `(fenced, import-key)`
/// pair per local domain, in index order. Errors are plain messages
/// (callers wrap them into the response shape they need).
fn probe_layout(shard: &Shard) -> Result<Vec<(bool, Option<String>)>, String> {
    let name = &shard.name;
    let gone = || format!("shard {name:?}: worker gone");
    shard
        .tx
        .send("{\"op\":\"layout\"}".to_string())
        .map_err(|_| gone())?;
    let resp = shard
        .rx
        .recv()
        .map_err(|_| gone())?
        .map_err(|e| format!("shard {name:?} layout probe failed: {e}"))?;
    let rp = json::parse_object(&resp)
        .map_err(|e| format!("bad layout response from shard {name:?}: {e}"))?;
    if json::get(&rp, "ok") != Some(&JsonValue::Bool(true)) {
        return Err(format!("shard {name:?} refused the layout probe: {resp}"));
    }
    let text = json::get(&rp, "layout")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("shard {name:?} layout reply lacks a layout field"))?;
    let mut out = Vec::new();
    for tok in text.split_whitespace() {
        let (mark, key) = tok.split_at(1);
        let fenced = match mark {
            "+" => false,
            "-" => true,
            _ => return Err(format!("shard {name:?}: unparseable layout token {tok:?}")),
        };
        out.push((fenced, (!key.is_empty()).then(|| key.to_string())));
    }
    Ok(out)
}

/// Asks a shard for its task-presence inventory: every present task as
/// `(id, local domain)` (`None` for an unpinned standing rejection) and
/// the ids it has burned as departed.
#[allow(clippy::type_complexity)]
fn probe_present(shard: &Shard) -> Result<(Vec<(usize, Option<usize>)>, Vec<usize>), String> {
    let name = &shard.name;
    let gone = || format!("shard {name:?}: worker gone");
    shard
        .tx
        .send("{\"op\":\"present\"}".to_string())
        .map_err(|_| gone())?;
    let resp = shard
        .rx
        .recv()
        .map_err(|_| gone())?
        .map_err(|e| format!("shard {name:?} presence probe failed: {e}"))?;
    let rp = json::parse_object(&resp)
        .map_err(|e| format!("bad presence response from shard {name:?}: {e}"))?;
    if json::get(&rp, "ok") != Some(&JsonValue::Bool(true)) {
        return Err(format!("shard {name:?} refused the presence probe: {resp}"));
    }
    let field = |key: &str| {
        json::get(&rp, key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("shard {name:?} presence reply lacks a {key} field"))
    };
    let mut tasks = Vec::new();
    for tok in field("tasks")?.split_whitespace() {
        let (id, pin) = tok
            .split_once(':')
            .ok_or_else(|| format!("shard {name:?}: unparseable presence token {tok:?}"))?;
        let id = id
            .parse::<usize>()
            .map_err(|_| format!("shard {name:?}: unparseable presence token {tok:?}"))?;
        let pin = match pin {
            "-" => None,
            d => Some(
                d.parse::<usize>()
                    .map_err(|_| format!("shard {name:?}: unparseable presence token {tok:?}"))?,
            ),
        };
        tasks.push((id, pin));
    }
    let mut departed = Vec::new();
    for tok in field("departed")?.split_whitespace() {
        departed.push(
            tok.parse::<usize>()
                .map_err(|_| format!("shard {name:?}: unparseable departed id {tok:?}"))?,
        );
    }
    Ok((tasks, departed))
}

/// The domains a member was *born* serving, in ascending global order:
/// members of the version-1 membership were constructed over the dense
/// version-1 assignment; every later joiner started with zero domains
/// and grew purely via imports.
fn birth_domains(map: &ShardMap, member: &str) -> Vec<usize> {
    let initial = map.initial_members();
    let Some(idx) = initial.iter().position(|m| m == member) else {
        return Vec::new();
    };
    ShardMap::new(initial.to_vec(), map.domains(), None)
        .expect("the initial membership was validated when the map was built")
        .owned(idx)
}

/// Rebuilds a shard's slot table from its engine's reported layout.
/// Imported slots name their global inside the migration key (`"V:G"`);
/// unkeyed slots are the member's birth domains, named positionally in
/// ascending global order. This is how a restarted router recovers the
/// exact local indices an engine that lived through reshards actually
/// has — fenced holes from exports, appended imports and all — instead
/// of assuming the dense assignment a fresh fleet would have.
fn slots_from_layout(
    member: &str,
    layout: &[(bool, Option<String>)],
    births: &[usize],
) -> Result<Vec<Slot>, String> {
    // Engine slots never disappear (exports fence in place), so a
    // process constructed over N domains always reports exactly N
    // unkeyed slots. Zero unkeyed slots with a non-empty birth set is
    // therefore a *different process* under the member's name — a
    // drained member rejoining fresh (legitimately empty, grows via
    // imports), which the birth assignment must not be forced onto.
    let unkeyed = layout.iter().filter(|(_, key)| key.is_none()).count();
    let mut births = if unkeyed == 0 { &[][..] } else { births }.iter().copied();
    if unkeyed != 0 && unkeyed != births.len() {
        return Err(format!(
            "shard {member:?}: engine was constructed over {unkeyed} domain(s) but \
             the member was born holding {} — wrong process or lost state",
            births.len()
        ));
    }
    let mut slots = Vec::with_capacity(layout.len());
    for (local, (fenced, key)) in layout.iter().enumerate() {
        let g = match key {
            Some(k) => Some(
                k.rsplit(':')
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| {
                        format!("shard {member:?}: import key {k:?} names no global domain")
                    })?,
            ),
            None => births.next(),
        };
        slots.push(match (g, fenced) {
            (Some(g), false) => Slot::Live(g),
            (Some(g), true) => Slot::Fenced(g),
            (None, false) => Slot::Unassigned,
            (None, true) => {
                return Err(format!(
                    "shard {member:?}: local domain {local} is fenced but has no \
                     known global assignment"
                ));
            }
        });
    }
    Ok(slots)
}

/// Startup sanity over reconciled slot tables: every global domain must
/// be live on exactly one shard, or — mid-migration, after an
/// interrupted reshard — fenced somewhere awaiting a roll-forward.
fn validate_coverage(map: &ShardMap, shards: &[Shard]) -> Result<(), String> {
    for g in 0..map.domains() {
        let live: Vec<&str> = shards
            .iter()
            .filter(|sh| sh.slots.contains(&Slot::Live(g)))
            .map(|sh| sh.name.as_str())
            .collect();
        match live.len() {
            0 => {
                if !shards.iter().any(|sh| sh.slots.contains(&Slot::Fenced(g))) {
                    return Err(format!(
                        "domain {g} is held by no shard, live or fenced — state lost"
                    ));
                }
                // Fenced-only: an interrupted migration. Arrivals are
                // refused with domain-fenced until a reshard rolls the
                // transfer forward.
            }
            1 => {}
            _ => {
                return Err(format!("domain {g} is live on multiple shards: {live:?}"));
            }
        }
    }
    Ok(())
}

impl Router {
    /// Builds a router over `map` with one endpoint per member (index
    /// aligned). `client` is the per-shard connection template; its
    /// `addr` is overwritten per endpoint.
    ///
    /// For a fresh map (version 1) the slot tables are the dense
    /// version-1 assignment — correct by construction, and connections
    /// stay lazy. For a map that lived through membership changes (a
    /// restart against a replayed journal), each shard is **probed** for
    /// its engine's actual domain layout and the slot tables are
    /// reconciled against it: engines that survived reshards keep
    /// fenced holes from exports and appended imports, so the dense
    /// assumption would misroute pinned arrivals to the wrong
    /// engine-local domain.
    ///
    /// # Errors
    ///
    /// [`RouterError::Config`] when the endpoint list does not match the
    /// membership size, when a shard cannot answer the layout probe, or
    /// when the reconciled layouts are inconsistent with the map (a
    /// domain live on two shards, or held by none).
    pub fn new(
        map: ShardMap,
        endpoints: &[ShardSpec],
        client: &ClientConfig,
    ) -> Result<Self, RouterError> {
        let reconcile = map.version() > 1;
        Self::with_reconcile(map, endpoints, client, reconcile)
    }

    /// Connects to a cluster that holds live state from a previous
    /// router process: always probes, regardless of map version.
    ///
    /// [`Router::new`] only reconciles for maps past version 1 (a fresh
    /// version-1 fleet is dense by construction, and connections stay
    /// lazy). A *restarted* version-1 cluster is indistinguishable from
    /// a fresh one by the map alone, yet its engines may hold in-flight
    /// tasks whose id→domain routing table died with the old router —
    /// so a caller that knows it is resuming (a replayed map journal, a
    /// reattached fleet) must use this constructor.
    ///
    /// # Errors
    ///
    /// As [`Router::new`].
    pub fn resume(
        map: ShardMap,
        endpoints: &[ShardSpec],
        client: &ClientConfig,
    ) -> Result<Self, RouterError> {
        Self::with_reconcile(map, endpoints, client, true)
    }

    fn with_reconcile(
        map: ShardMap,
        endpoints: &[ShardSpec],
        client: &ClientConfig,
        reconcile: bool,
    ) -> Result<Self, RouterError> {
        if endpoints.len() != map.members().len() {
            return Err(RouterError::Config(format!(
                "{} endpoints for {} members",
                endpoints.len(),
                map.members().len()
            )));
        }
        let mut shards = Vec::with_capacity(endpoints.len());
        for (s, spec) in endpoints.iter().enumerate() {
            let mut shard = connect_shard(s, &map.members()[s], spec, client);
            if reconcile {
                let layout = probe_layout(&shard).map_err(RouterError::Config)?;
                shard.slots =
                    slots_from_layout(&shard.name, &layout, &birth_domains(&map, &shard.name))
                        .map_err(RouterError::Config)?;
            } else {
                shard.slots = map.owned(s).into_iter().map(Slot::Live).collect();
            }
            shards.push(shard);
        }
        let mut present = BTreeMap::new();
        let mut departed = BTreeSet::new();
        if reconcile {
            validate_coverage(&map, &shards).map_err(RouterError::Config)?;
            // Rebuild the router-side task-presence table: departures
            // route through an id→global-domain map that lives (and
            // dies) with the router process, while the tasks themselves
            // live on in the engines. Local pins translate through the
            // just-reconciled slot tables; a task on a fenced slot is
            // mid-migration and maps to the same global domain its live
            // holder will report.
            for shard in &shards {
                let (tasks, burned) = probe_present(shard).map_err(RouterError::Config)?;
                for (id, pin) in tasks {
                    let Some(local) = pin else { continue };
                    let g = match shard.slots.get(local) {
                        Some(&Slot::Live(g) | &Slot::Fenced(g)) => g,
                        _ => {
                            return Err(RouterError::Config(format!(
                                "shard {:?} reports task \u{3c4}{id} on local domain \
                                 {local}, which maps to no global domain",
                                shard.name
                            )));
                        }
                    };
                    present.insert(id, g);
                }
                departed.extend(burned);
            }
        }
        let per_shard_routed = vec![0; shards.len()];
        Ok(Router {
            map,
            shards,
            client: client.clone(),
            present,
            departed,
            clock: 0.0,
            merged_log: String::new(),
            merged_decisions: 0,
            metrics: RouterMetrics {
                per_shard_routed,
                ..RouterMetrics::default()
            },
        })
    }

    /// The shard map in force.
    #[must_use]
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Router-layer counters.
    #[must_use]
    pub fn metrics(&self) -> &RouterMetrics {
        &self.metrics
    }

    /// The merged cluster decision log (same bytes a single multi-domain
    /// engine's `format_decision_log` would produce for the same event
    /// stream).
    #[must_use]
    pub fn merged_log(&self) -> &str {
        &self.merged_log
    }

    /// Parses and executes one request line against the cluster. Mirrors
    /// the single-server contract: never panics, never returns `Err` —
    /// protocol, routing, and shard errors are all encoded in-band.
    pub fn handle_line(&mut self, line: &str) -> Handled {
        let mut shutdown = false;
        let response = match self.handle_inner(line, &mut shutdown) {
            Ok(r) => r,
            Err(r) => r,
        };
        Handled { response, shutdown }
    }

    /// `Err` carries a fully-formatted error response.
    #[allow(clippy::too_many_lines)]
    fn handle_inner(&mut self, line: &str, shutdown: &mut bool) -> Result<String, String> {
        let pairs = json::parse_object(line)
            .map_err(|e| err_response("bad-request", None, &format!("bad request: {e}")))?;
        let op = json::get(&pairs, "op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err_response("bad-request", None, "missing field \"op\""))?
            .to_string();
        match op.as_str() {
            "arrive" => self.arrive(line, &pairs),
            "depart" => self.depart(&pairs),
            "tick" => self.tick(&pairs),
            "stats" => self.cluster_stats("stats"),
            "log" => Ok(format!(
                "{{\"ok\":true,\"decisions\":{},\"log\":\"{}\"}}",
                self.merged_decisions,
                json::escape(&self.merged_log)
            )),
            "map" => {
                let assignment: Vec<String> = (0..self.map.domains())
                    .map(|g| self.map.shard_for(g).to_string())
                    .collect();
                Ok(format!(
                    "{{\"ok\":true,\"version\":{},\"domains\":{},\"shards\":{},\"assignment\":[{}]}}",
                    self.map.version(),
                    self.map.domains(),
                    self.shards.len(),
                    assignment.join(",")
                ))
            }
            "reshard" => self.reshard(&pairs),
            "role" => Ok(format!(
                "{{\"ok\":true,\"role\":\"router\",\"shards\":{},\"map_version\":{}}}",
                self.shards.len(),
                self.map.version()
            )),
            "shutdown" => {
                *shutdown = true;
                self.cluster_stats("shutdown")
            }
            other => Err(err_response(
                "bad-request",
                None,
                &format!("unknown op {other:?}"),
            )),
        }
    }

    /// The router-shard index serving global domain `g`: the map names
    /// the owning member, and the fleet is searched by name (drained
    /// shards keep their slot in the fleet but leave the membership).
    fn route(&self, g: usize) -> Result<usize, String> {
        let member = &self.map.members()[self.map.shard_for(g)];
        self.shards
            .iter()
            .position(|sh| &sh.name == member)
            .ok_or_else(|| {
                err_response(
                    "shard-unavailable",
                    None,
                    &format!("no connected shard for member {member:?}"),
                )
            })
    }

    /// Mirrors the engine's validation order: the clock check comes
    /// before any id check, so cluster error kinds match a single server.
    fn check_clock(&self, at: f64) -> Result<(), String> {
        if !at.is_finite() || at < self.clock {
            return Err(err_response(
                "time-regression",
                None,
                &format!("event at {at} precedes cluster clock {}", self.clock),
            ));
        }
        Ok(())
    }

    /// Routes an arrival to the owning shard and stitches its decision
    /// lines into the merged log.
    fn arrive(&mut self, line: &str, pairs: &[(String, JsonValue)]) -> Result<String, String> {
        let proto = |msg: String| err_response("bad-request", None, &msg);
        let at = num_field(pairs, "at").map_err(proto)?;
        let id = num_field(pairs, "id").map_err(proto)? as usize;
        // Every field the shard needs is validated here first so a
        // malformed request is refused without touching any shard.
        num_field(pairs, "cycles").map_err(proto)?;
        num_field(pairs, "period").map_err(proto)?;
        num_field(pairs, "penalty").map_err(proto)?;
        let g = match json::get(pairs, "domain").and_then(JsonValue::as_f64) {
            Some(d) if d < 0.0 || d.fract() != 0.0 => {
                return Err(proto(format!("invalid domain {d}")));
            }
            Some(d) => d as usize,
            // Unpinned arrivals get the router's deterministic default
            // pin — the same `id mod domains` rule `TraceSpec::domains`
            // uses, so routed and single-engine replays of a generated
            // trace see identical pins.
            None => id % self.map.domains(),
        };
        self.check_clock(at)?;
        if id == RESERVED_ANCHOR_ID {
            return Err(err_response(
                "reserved-id",
                Some(id),
                &format!("task id {id} is reserved"),
            ));
        }
        if g >= self.map.domains() {
            return Err(err_response(
                "invalid-domain",
                Some(id),
                &format!(
                    "task \u{3c4}{id} is pinned to domain {g}, cluster has {}",
                    self.map.domains()
                ),
            ));
        }
        if self.departed.contains(&id) {
            return Err(err_response(
                "already-departed",
                Some(id),
                &format!("task \u{3c4}{id} already departed"),
            ));
        }
        if self.present.contains_key(&id) {
            return Err(err_response(
                "duplicate-task",
                Some(id),
                &format!("task \u{3c4}{id} is already present"),
            ));
        }
        let s = self.route(g)?;
        let Some(local) = self.shards[s]
            .slots
            .iter()
            .position(|slot| *slot == Slot::Live(g))
        else {
            // The owner does not serve g live. If the domain is fenced
            // (or parked live on a non-owner) an interrupted reshard
            // left it mid-migration: structured and retryable —
            // re-issuing the reshard rolls the transfer forward.
            let mid_migration = self.shards.iter().any(|sh| {
                sh.slots.contains(&Slot::Fenced(g)) || sh.slots.contains(&Slot::Live(g))
            });
            let (kind, msg) = if mid_migration {
                (
                    "domain-fenced",
                    format!(
                        "domain {g} is mid-migration (fenced on its owner); \
                         re-issue the reshard to complete it"
                    ),
                )
            } else {
                ("shard-unavailable", format!("shard {s} does not hold domain {g}"))
            };
            return Err(err_response(kind, Some(id), &msg));
        };
        // Forward the original fields verbatim (minus any client pin or
        // dlog flag), adding the shard-local pin and the dlog echo.
        let mut downstream = String::with_capacity(line.len() + 32);
        downstream.push_str("{\"op\":\"arrive\"");
        for (key, value) in pairs {
            if matches!(key.as_str(), "op" | "domain" | "dlog") {
                continue;
            }
            downstream.push_str(&format!(",\"{key}\":{}", render_value(value)));
        }
        downstream.push_str(&format!(",\"domain\":{local},\"dlog\":true}}"));
        let resp = self.shard_write(s, &downstream)?;
        let rp = json::parse_object(&resp).map_err(|e| {
            err_response("bad-request", Some(id), &format!("bad shard response: {e}"))
        })?;
        if json::get(&rp, "ok") != Some(&JsonValue::Bool(true)) {
            // Structured shard refusals (the router pre-validates, so
            // these indicate state skew) pass through unchanged.
            return Err(resp);
        }
        let lines = self.globalize(s, &rp)?;
        self.append_merged(lines.iter().map(|(_, l)| l.as_str()));
        self.clock = at;
        self.present.insert(id, g);
        self.metrics.routed_arrives += 1;
        self.metrics.per_shard_routed[s] += 1;
        let accepted = json::get(&rp, "decision").and_then(JsonValue::as_str) == Some("accepted");
        let dlog = self.dlog_suffix(pairs, &lines);
        Ok(if accepted {
            format!("{{\"ok\":true,\"decision\":\"accepted\",\"id\":{id},\"domain\":{g}{dlog}}}")
        } else {
            format!("{{\"ok\":true,\"decision\":\"rejected\",\"id\":{id}{dlog}}}")
        })
    }

    fn depart(&mut self, pairs: &[(String, JsonValue)]) -> Result<String, String> {
        let proto = |msg: String| err_response("bad-request", None, &msg);
        let at = num_field(pairs, "at").map_err(proto)?;
        let id = num_field(pairs, "id").map_err(proto)? as usize;
        self.check_clock(at)?;
        if self.departed.contains(&id) {
            return Err(err_response(
                "already-departed",
                Some(id),
                &format!("task \u{3c4}{id} already departed"),
            ));
        }
        let Some(&g) = self.present.get(&id) else {
            return Err(err_response(
                "unknown-task",
                Some(id),
                &format!("task \u{3c4}{id} is not present"),
            ));
        };
        let s = self.route(g)?;
        let downstream = format!("{{\"op\":\"depart\",\"at\":{at},\"id\":{id},\"dlog\":true}}");
        let resp = self.shard_write(s, &downstream)?;
        let rp = json::parse_object(&resp).map_err(|e| {
            err_response("bad-request", Some(id), &format!("bad shard response: {e}"))
        })?;
        if json::get(&rp, "ok") != Some(&JsonValue::Bool(true)) {
            return Err(resp);
        }
        let lines = self.globalize(s, &rp)?;
        self.append_merged(lines.iter().map(|(_, l)| l.as_str()));
        self.clock = at;
        self.present.remove(&id);
        self.departed.insert(id);
        self.metrics.routed_departs += 1;
        self.metrics.per_shard_routed[s] += 1;
        let shed: Vec<usize> = lines
            .iter()
            .filter(|(_, l)| line_is_shed(l))
            .filter_map(|(_, l)| line_task_id(l))
            .collect();
        let dlog = self.dlog_suffix(pairs, &lines);
        Ok(format!(
            "{{\"ok\":true,\"id\":{id},\"shed\":{}{dlog}}}",
            ids_json(&shed)
        ))
    }

    /// Fans a tick to every shard and merges the decision lines in
    /// global-domain order.
    ///
    /// The scatter is **concurrent** — every shard advances its clock and
    /// runs its re-solve pass in parallel, so a cluster tick costs the
    /// slowest shard, not the sum of all shards. The gather walks the
    /// responses in shard-index order and the merge sorts by global
    /// domain, so concurrency never reorders a byte of the merged log.
    fn tick(&mut self, pairs: &[(String, JsonValue)]) -> Result<String, String> {
        let proto = |msg: String| err_response("bad-request", None, &msg);
        let at = num_field(pairs, "at").map_err(proto)?;
        self.check_clock(at)?;
        let downstream = format!("{{\"op\":\"tick\",\"at\":{at},\"dlog\":true}}");
        // Scatter to every worker first, then gather in shard-index
        // order: all shards tick (and re-solve) concurrently.
        for (s, shard) in self.shards.iter().enumerate() {
            shard.tx.send(downstream.clone()).map_err(|_| {
                err_response(
                    "shard-unavailable",
                    None,
                    &format!("shard {s}: worker gone"),
                )
            })?;
        }
        let responses: Vec<Result<String, String>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                shard.rx.recv().unwrap_or_else(|_| {
                    Err(err_response(
                        "shard-unavailable",
                        None,
                        &format!("shard {s}: worker gone"),
                    ))
                })
            })
            .collect();
        let mut merged: Vec<(usize, String)> = Vec::new();
        let mut resolves: u64 = 0;
        for (s, resp) in responses.into_iter().enumerate() {
            let resp = resp?;
            let rp = json::parse_object(&resp).map_err(|e| {
                err_response("bad-request", None, &format!("bad shard response: {e}"))
            })?;
            if json::get(&rp, "ok") != Some(&JsonValue::Bool(true)) {
                return Err(resp);
            }
            resolves += json::get(&rp, "resolves")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0) as u64;
            merged.extend(self.globalize(s, &rp)?);
        }
        // Stable sort by global domain: every domain lives on exactly one
        // shard and each shard emits its owned domains in ascending
        // global order, so this reproduces a single engine's domain
        // iteration exactly (intra-domain order is preserved as emitted).
        merged.sort_by_key(|(g, _)| *g);
        self.append_merged(merged.iter().map(|(_, l)| l.as_str()));
        self.clock = at;
        self.metrics.fanned_ticks += 1;
        let shed: Vec<usize> = merged
            .iter()
            .filter(|(_, l)| line_is_shed(l))
            .filter_map(|(_, l)| line_task_id(l))
            .collect();
        let dlog = self.dlog_suffix(pairs, &merged);
        Ok(format!(
            "{{\"ok\":true,\"shed\":{},\"resolves\":{resolves}{dlog}}}",
            ids_json(&shed)
        ))
    }

    /// Scatter-gathers per-shard stats into cluster aggregates, enforcing
    /// the balance invariant. `op` is `"stats"` (hedged reads allowed) or
    /// `"shutdown"` (forwarded as-is; `dvs_admitd` answers shutdown with
    /// its final stats dump, which aggregates the same way).
    fn cluster_stats(&mut self, op: &str) -> Result<String, String> {
        const SUMMED: [&str; 14] = [
            "arrivals",
            "accepted",
            "admitted",
            "rejected",
            "shed",
            "shed_total",
            "readmitted",
            "departures",
            "ticks",
            "resolves",
            "resolves_degraded",
            "resolves_skipped",
            "resolve_nodes",
            "events",
        ];
        const SUMMED_F64: [&str; 4] =
            ["energy", "penalty_accrued", "penalty_charged", "total_cost"];
        let request = format!("{{\"op\":\"{op}\"}}");
        let hedge = op == "stats";
        let mut counts = [0u64; 14];
        let mut floats = [0f64; 4];
        let mut stale_by_max: u64 = 0;
        for s in 0..self.shards.len() {
            let (resp, hedge_served) = if hedge {
                self.shard_read(s, &request)?
            } else {
                (self.shard_write(s, &request)?, false)
            };
            let rp = json::parse_object(&resp).map_err(|e| {
                err_response("bad-request", None, &format!("bad shard response: {e}"))
            })?;
            if json::get(&rp, "ok") != Some(&JsonValue::Bool(true)) {
                return Err(resp);
            }
            for (i, key) in SUMMED.iter().enumerate() {
                counts[i] += json::get(&rp, key)
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0) as u64;
            }
            for (i, key) in SUMMED_F64.iter().enumerate() {
                floats[i] += json::get(&rp, key)
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0);
            }
            if hedge_served {
                if let Some(stale) = json::get(&rp, "stale_by").and_then(JsonValue::as_f64) {
                    stale_by_max = stale_by_max.max(stale as u64);
                }
            }
        }
        let (arrivals, accepted, rejected, shed) = (counts[0], counts[1], counts[3], counts[4]);
        if accepted + rejected + shed != arrivals {
            return Err(err_response(
                "balance-violation",
                None,
                &format!(
                    "cluster balance broken: accepted {accepted} + rejected {rejected} \
                     + standing-shed {shed} != arrivals {arrivals}"
                ),
            ));
        }
        let m = &self.metrics;
        let per_shard: Vec<String> = m.per_shard_routed.iter().map(u64::to_string).collect();
        let mut out = format!(
            "{{\"ok\":true,\"op\":\"cluster-stats\",\"shards\":{},\"map_version\":{},\"domains\":{}",
            self.shards.len(),
            self.map.version(),
            self.map.domains()
        );
        for (i, key) in SUMMED.iter().enumerate() {
            out.push_str(&format!(",\"{key}\":{}", counts[i]));
        }
        for (i, key) in SUMMED_F64.iter().enumerate() {
            out.push_str(&format!(",\"{key}\":{}", floats[i]));
        }
        out.push_str(&format!(
            ",\"routed_arrives\":{},\"routed_departs\":{},\"fanned_ticks\":{},\
             \"hedged_reads\":{},\"merged_decisions\":{},\"stale_by_max\":{},\
             \"per_shard_routed\":[{}]}}",
            m.routed_arrives,
            m.routed_departs,
            m.fanned_ticks,
            m.hedged_reads,
            self.merged_decisions,
            stale_by_max,
            per_shard.join(",")
        ));
        Ok(out)
    }

    /// Executes a live reshard: grows or shrinks the membership and
    /// migrates exactly the domains the rendezvous hash moves, one at a
    /// time, via export → import. The journaled map version bump is the
    /// **last** step (the cutover fence): a crash anywhere earlier
    /// leaves the old map in force, and re-issuing the same reshard
    /// skips already-landed domains (the import key dedupes on the
    /// shard, the slot table dedupes on the router) and finishes the
    /// remainder. See the [module docs](self) for the full protocol.
    #[allow(clippy::too_many_lines)]
    fn reshard(&mut self, pairs: &[(String, JsonValue)]) -> Result<String, String> {
        let proto = |msg: String| err_response("bad-request", None, &msg);
        let rerr = |msg: String| err_response("reshard", None, &msg);
        let add = json::get(pairs, "add").and_then(JsonValue::as_str);
        let remove = json::get(pairs, "remove").and_then(JsonValue::as_str);
        let (probe_members, name, spec, adding) = match (add, remove) {
            (Some(spec), None) => {
                let (name, addr) = spec.split_once('=').ok_or_else(|| {
                    proto(format!(
                        "reshard add needs NAME=ADDR, got {spec:?} \
                         (spawn mode resolves bare names to spawned shards)"
                    ))
                })?;
                let mut members: Vec<String> =
                    self.map.members().iter().map(String::clone).collect();
                members.push(name.to_string());
                (
                    members,
                    name.to_string(),
                    Some(ShardSpec::parse(addr)),
                    true,
                )
            }
            (None, Some(name)) => {
                let members: Vec<String> = self
                    .map
                    .members()
                    .iter()
                    .filter(|m| m.as_str() != name)
                    .map(String::clone)
                    .collect();
                if members.len() == self.map.members().len() {
                    return Err(rerr(format!("unknown member {name:?}")));
                }
                (members, name.to_string(), None, false)
            }
            _ => {
                return Err(proto(
                    "reshard needs exactly one of \"add\" or \"remove\"".to_string(),
                ));
            }
        };
        // Probe map: validates the target membership (names, duplicates,
        // emptiness) and answers "who owns g afterwards" without touching
        // the live, journaled map.
        let probe = ShardMap::new(probe_members, self.map.domains(), None)
            .map_err(|e| rerr(e.to_string()))?;
        // Connect the joining shard. A retry finds the member already in
        // the fleet and reuses it — unless the supplied address differs
        // (a drained member rejoining as a *new* process), in which case
        // the stale connection is torn down and replaced; the layout
        // refresh below adopts whatever state the new process holds.
        if adding {
            let spec = spec.as_ref().expect("add always carries a spec");
            match self.shards.iter().position(|sh| sh.name == name) {
                Some(pos) if self.shards[pos].spec != *spec => {
                    let mut stale = connect_shard(pos, &name, spec, &self.client);
                    std::mem::swap(&mut stale, &mut self.shards[pos]);
                    wind_down(&mut stale);
                }
                Some(_) => {}
                None => {
                    let shard = connect_shard(self.shards.len(), &name, spec, &self.client);
                    self.shards.push(shard);
                    self.metrics.per_shard_routed.push(0);
                }
            }
        }
        // Ground-truth refresh: rebuild every fleet member's slot table
        // from its engine's actual layout, so the moved set and the
        // migration sources below reflect where domains really live. An
        // earlier reshard may have been interrupted — or abandoned and a
        // *different* one issued — and its exports/imports are
        // discovered here and rolled forward rather than stranded.
        for shard in &mut self.shards {
            let layout = probe_layout(shard).map_err(&rerr)?;
            shard.slots =
                slots_from_layout(&shard.name, &layout, &birth_domains(&self.map, &shard.name))
                    .map_err(&rerr)?;
        }
        // The moved set is computed against the *holders*, not the map:
        // a domain migrates unless the post-reshard owner already serves
        // it live. On a clean fleet this is exactly the rendezvous
        // owner-diff (minimal movement); after an interrupted attempt it
        // also picks up displaced domains — live on a non-owner, or
        // fenced everywhere — whose map owner never changed.
        let moved: Vec<usize> = (0..self.map.domains())
            .filter(|&g| {
                let owner = &probe.members()[probe.shard_for(g)];
                !self
                    .shards
                    .iter()
                    .any(|sh| &sh.name == owner && sh.slots.contains(&Slot::Live(g)))
            })
            .collect();
        // The post-cutover version every import is keyed under: retries
        // of an interrupted reshard recompute the same keys, so a shard
        // that already applied an import answers with the same slot
        // instead of double-applying it.
        let next_version = self.map.version() + 1;
        let pause_ms: u64 = std::env::var("DVS_RESHARD_PAUSE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        for &g in &moved {
            if pause_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(pause_ms));
            }
            let owner = probe.members()[probe.shard_for(g)].clone();
            let dst = self
                .shards
                .iter()
                .position(|sh| sh.name == owner)
                .ok_or_else(|| rerr(format!("no connected shard for member {owner:?}")))?;
            // Source: the live holder, wherever it is. When an earlier
            // attempt was interrupted between export and import there is
            // no live holder — the fenced copy on the map-assigned owner
            // (the only shard that can have exported g under an
            // uncommitted reshard) re-exports its stored payload
            // idempotently. The *last* fenced slot is the freshest: a
            // domain re-imported and re-exported leaves older tombstones
            // at lower indices.
            let (src, local) = if let Some(src) = self
                .shards
                .iter()
                .position(|sh| sh.slots.contains(&Slot::Live(g)))
            {
                let local = self.shards[src]
                    .slots
                    .iter()
                    .position(|slot| *slot == Slot::Live(g))
                    .expect("just found above");
                (src, local)
            } else {
                let map_owner = &self.map.members()[self.map.shard_for(g)];
                let src = self
                    .shards
                    .iter()
                    .position(|sh| {
                        &sh.name == map_owner && sh.slots.contains(&Slot::Fenced(g))
                    })
                    .or_else(|| {
                        self.shards
                            .iter()
                            .position(|sh| sh.slots.contains(&Slot::Fenced(g)))
                    })
                    .ok_or_else(|| {
                        rerr(format!(
                            "domain {g} has no live or fenced holder — its state is lost"
                        ))
                    })?;
                let local = self.shards[src]
                    .slots
                    .iter()
                    .rposition(|slot| *slot == Slot::Fenced(g))
                    .expect("just found above");
                (src, local)
            };
            let resp =
                self.shard_write(src, &format!("{{\"op\":\"export\",\"domain\":{local}}}"))?;
            let rp = json::parse_object(&resp)
                .map_err(|e| rerr(format!("bad export response from shard {src}: {e}")))?;
            if json::get(&rp, "ok") != Some(&JsonValue::Bool(true)) {
                return Err(resp);
            }
            let payload = json::get(&rp, "payload")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| rerr(format!("shard {src} export reply lacks a payload")))?
                .to_string();
            // The engine fenced the slot the moment the export journaled;
            // mirror that now, so a failure on the import below leaves
            // the table telling the truth and the retry re-exports the
            // stored payload.
            self.shards[src].slots[local] = Slot::Fenced(g);
            let import = format!(
                "{{\"op\":\"import\",\"key\":\"{next_version}:{g}\",\"payload\":\"{}\"}}",
                json::escape(&payload)
            );
            let resp = self.shard_write(dst, &import)?;
            let rp = json::parse_object(&resp)
                .map_err(|e| rerr(format!("bad import response from shard {dst}: {e}")))?;
            if json::get(&rp, "ok") != Some(&JsonValue::Bool(true)) {
                return Err(resp);
            }
            let new_local = json::get(&rp, "local")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| rerr(format!("shard {dst} import reply lacks a local slot")))?
                as usize;
            let slots = &mut self.shards[dst].slots;
            match new_local.cmp(&slots.len()) {
                std::cmp::Ordering::Equal => slots.push(Slot::Live(g)),
                std::cmp::Ordering::Less if slots[new_local] == Slot::Live(g) => {}
                _ => {
                    return Err(rerr(format!(
                        "shard {dst} imported domain {g} at unexpected slot {new_local}"
                    )));
                }
            }
        }
        // Cutover fence: only now does the journaled map adopt the new
        // membership and version — routing flips atomically for every
        // subsequent event, and a replayed map journal lands here too.
        let bump = if adding {
            self.map.add_member(&name)
        } else {
            self.map.remove_member(&name)
        };
        bump.map_err(|e| rerr(e.to_string()))?;
        Ok(format!(
            "{{\"ok\":true,\"op\":\"reshard\",\"version\":{},\"moved\":{}}}",
            self.map.version(),
            moved.len()
        ))
    }

    /// Sends a write to shard `s`'s primary (through its worker). Writes
    /// never fall back to a replica: a follower refuses them
    /// (`not-primary`), and silently retrying elsewhere would fork the
    /// shard's history.
    fn shard_write(&mut self, s: usize, line: &str) -> Result<String, String> {
        let gone = || {
            err_response(
                "shard-unavailable",
                None,
                &format!("shard {s}: worker gone"),
            )
        };
        let shard = &self.shards[s];
        shard.tx.send(line.to_string()).map_err(|_| gone())?;
        shard.rx.recv().map_err(|_| gone())?
    }

    /// Sends a read to shard `s`, hedging to the replica when the primary
    /// cannot answer. The flag in the result says whether the *replica*
    /// served the reply — only then may its `stale_by` bound enter the
    /// aggregate (a primary's reply is never stale by definition, even
    /// if its JSON happens to carry a `stale_by` field).
    fn shard_read(&mut self, s: usize, line: &str) -> Result<(String, bool), String> {
        let primary = self.shard_write(s, line);
        match primary {
            Ok(resp) => Ok((resp, false)),
            Err(primary_err) => {
                let Some(replica) = self.shards[s].replica.as_mut() else {
                    return Err(primary_err);
                };
                let resp = replica.request(line).map_err(|replica_err| {
                    err_response(
                        "shard-unavailable",
                        None,
                        &format!("shard {s}: primary and replica both failed ({replica_err})"),
                    )
                })?;
                self.metrics.hedged_reads += 1;
                Ok((resp, true))
            }
        }
    }

    /// Rewrites a shard's echoed decision lines from local to global
    /// domain indices, returning `(global_domain, line)` pairs in emitted
    /// order. Lines without a domain suffix (rejected verdicts) keep
    /// their bytes and sort under the shard's first owned domain — they
    /// only occur on single-shard arrive responses, where the sort key is
    /// irrelevant.
    fn globalize(
        &self,
        s: usize,
        response_pairs: &[(String, JsonValue)],
    ) -> Result<Vec<(usize, String)>, String> {
        let Some(dlog) = json::get(response_pairs, "dlog").and_then(JsonValue::as_str) else {
            return Ok(Vec::new());
        };
        let slots = &self.shards[s].slots;
        let mut out = Vec::new();
        for line in dlog.lines() {
            if let Some(pos) = line.rfind('@') {
                let local: usize = line[pos + 1..].parse().map_err(|_| {
                    err_response(
                        "bad-request",
                        None,
                        &format!("unparseable decision line from shard {s}: {line:?}"),
                    )
                })?;
                let g = slots
                    .get(local)
                    .copied()
                    .and_then(Slot::live)
                    .ok_or_else(|| {
                        err_response(
                            "bad-request",
                            None,
                            &format!("shard {s} named unknown or exported local domain {local}"),
                        )
                    })?;
                out.push((g, format!("{}{g}", &line[..=pos])));
            } else {
                let first = slots.iter().copied().filter_map(Slot::live).next().unwrap_or(0);
                out.push((first, line.to_string()));
            }
        }
        Ok(out)
    }

    fn append_merged<'a>(&mut self, lines: impl Iterator<Item = &'a str>) {
        for line in lines {
            self.merged_log.push_str(line);
            self.merged_log.push('\n');
            self.merged_decisions += 1;
        }
    }

    /// The `,"dlog":"…"` suffix when the client asked for the echo.
    fn dlog_suffix(&self, pairs: &[(String, JsonValue)], lines: &[(usize, String)]) -> String {
        if json::get(pairs, "dlog") != Some(&JsonValue::Bool(true)) {
            return String::new();
        }
        let mut text = String::new();
        for (_, line) in lines {
            text.push_str(line);
            text.push('\n');
        }
        format!(",\"dlog\":\"{}\"", json::escape(&text))
    }
}

impl Drop for Router {
    /// Winds the worker fleet down: closing a request channel ends its
    /// worker's loop, which drops the primary connection (so shard
    /// server sessions see EOF), and the join bounds the cleanup.
    fn drop(&mut self) {
        for mut shard in self.shards.drain(..) {
            wind_down(&mut shard);
        }
    }
}

/// Renders a parsed JSON value back to JSON text (numbers via `f64`
/// round-trip formatting, which preserves every value a shard will
/// parse with `as_f64` anyway).
fn render_value(value: &JsonValue) -> String {
    match value {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => format!("{n}"),
        JsonValue::Str(s) => format!("\"{}\"", json::escape(s)),
        JsonValue::Arr(items) => {
            let parts: Vec<String> = items.iter().map(render_value).collect();
            format!("[{}]", parts.join(","))
        }
        JsonValue::Obj(pairs) => {
            let parts: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json::escape(k), render_value(v)))
                .collect();
            format!("{{{}}}", parts.join(","))
        }
    }
}
