//! `dvs_routerd` — the domain-sharded admission cluster front-end.
//!
//! ```text
//! dvs_routerd (--shards ADDR[~REPLICA],... | --spawn K)
//!             [--stdin | --listen ADDR]
//!             [--domains D] [--journal FILE]
//!             [--policy SPEC] [--power MODEL] (spawn mode only)
//!
//!   --shards LIST   comma-separated shard endpoints; ADDR~REPLICA names a
//!                   read replica used to hedge stats reads when the
//!                   primary is down
//!   --spawn K       spawn K dvs_admitd shard processes (binary located
//!                   next to this one) on ephemeral ports and route over
//!                   them; each child gets exactly its owned domain count
//!   --stdin         serve newline-delimited JSON on stdin/stdout (default)
//!   --listen ADDR   serve TCP sessions on ADDR (one session at a time —
//!                   the merged decision log is a single serialized
//!                   stream); prints "listening on ADDR" once bound
//!   --domains D     global power-domain count (default: shard count)
//!   --journal FILE  journal the shard map (version + membership history)
//!   --policy SPEC   forwarded to spawned shards (default greedy)
//!   --power MODEL   forwarded to spawned shards (default xscale)
//! ```
//!
//! The protocol is the `dvs_admitd` protocol (see `dvs_admit::server`)
//! plus `{"op":"map"}` for the domain→shard assignment. `stats` responds
//! with cluster aggregates under the balance invariant, `log` with the
//! deterministic merged decision log, and `shutdown` shuts every shard
//! down and responds with the final cluster aggregates.
//!
//! Shard membership is fixed for the life of the process; the shard map
//! is journaled so the assignment (and any future membership change) is
//! explicit and auditable.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};

use dvs_admit::ClientConfig;
use dvs_router::{Router, ShardMap, ShardSpec};

enum Mode {
    Stdin,
    Listen(String),
}

/// A spawned shard child: process handle plus the address it bound.
struct SpawnedShard {
    child: Child,
    addr: String,
}

/// Locates `dvs_admitd` next to the running binary.
fn admitd_path() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me
        .parent()
        .ok_or_else(|| "current_exe has no parent directory".to_string())?;
    let candidate = dir.join("dvs_admitd");
    if candidate.exists() {
        return Ok(candidate);
    }
    Err(format!("dvs_admitd not found at {}", candidate.display()))
}

/// Spawns one shard on an ephemeral port and reads the bound address from
/// its `listening on ADDR` line. The rest of the child's stdout is
/// drained by a reaper thread so the pipe can never block it.
fn spawn_shard(
    admitd: &Path,
    domains: usize,
    policy: &str,
    power: &str,
) -> Result<SpawnedShard, String> {
    let mut child = Command::new(admitd)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--domains",
            &domains.to_string(),
            "--policy",
            policy,
            "--power",
            power,
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", admitd.display()))?;
    let stdout = child.stdout.take().ok_or("child stdout not captured")?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading child banner: {e}"))?;
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .ok_or_else(|| format!("unexpected child banner {line:?}"))?
        .to_string();
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = reader.read_to_end(&mut sink);
    });
    Ok(SpawnedShard { child, addr })
}

fn serve<R: BufRead, W: Write>(
    router: &mut Router,
    reader: R,
    mut writer: W,
) -> std::io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let handled = router.handle_line(request);
        writeln!(writer, "{}", handled.response)?;
        writer.flush()?;
        if handled.shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

#[allow(clippy::too_many_lines)]
fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = Mode::Stdin;
    let mut shard_list: Option<String> = None;
    let mut spawn_count: Option<usize> = None;
    let mut domains: Option<usize> = None;
    let mut journal: Option<String> = None;
    let mut policy = "greedy".to_string();
    let mut power = "xscale".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stdin" => mode = Mode::Stdin,
            "--listen" => {
                mode = Mode::Listen(it.next().ok_or("--listen needs an address")?.clone());
            }
            "--shards" => {
                shard_list = Some(it.next().ok_or("--shards needs a list")?.clone());
            }
            "--spawn" => {
                spawn_count = Some(
                    it.next()
                        .ok_or("--spawn needs a count")?
                        .parse()
                        .map_err(|e| format!("bad --spawn: {e}"))?,
                );
            }
            "--domains" => {
                domains = Some(
                    it.next()
                        .ok_or("--domains needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --domains: {e}"))?,
                );
            }
            "--journal" => {
                journal = Some(it.next().ok_or("--journal needs a file")?.clone());
            }
            "--policy" => policy = it.next().ok_or("--policy needs a value")?.clone(),
            "--power" => power = it.next().ok_or("--power needs a value")?.clone(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: dvs_routerd (--shards ADDR[~REPLICA],... | --spawn K) \
                     [--stdin | --listen ADDR] [--domains D] [--journal FILE] \
                     [--policy SPEC] [--power MODEL]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if shard_list.is_some() == spawn_count.is_some() {
        return Err("exactly one of --shards or --spawn is required".to_string());
    }

    let journal_path = journal.as_deref().map(Path::new);
    let mut children: Vec<SpawnedShard> = Vec::new();
    let (map, endpoints) = if let Some(list) = &shard_list {
        // Shard names are the primary addresses: a fixed endpoint list is
        // a stable identity, and rendezvous hashing keeps the assignment
        // deterministic for it.
        let endpoints: Vec<ShardSpec> = list.split(',').map(ShardSpec::parse).collect();
        let names: Vec<String> = endpoints.iter().map(|s| s.addr.clone()).collect();
        let d = domains.unwrap_or(endpoints.len());
        let map = ShardMap::new(names, d, journal_path).map_err(|e| e.to_string())?;
        (map, endpoints)
    } else {
        // Spawn mode: logical names shard0..shardK-1 so the assignment
        // does not depend on the ephemeral ports the children bind.
        let k = spawn_count.expect("checked above");
        if k == 0 {
            return Err("--spawn must be at least 1".to_string());
        }
        let names: Vec<String> = (0..k).map(|i| format!("shard{i}")).collect();
        let d = domains.unwrap_or(k);
        let map = ShardMap::new(names, d, journal_path).map_err(|e| e.to_string())?;
        let admitd = admitd_path()?;
        let mut endpoints = Vec::with_capacity(k);
        for s in 0..k {
            // A shard serves exactly its owned domains (at least one so
            // the engine constructs even when the hash assigns none).
            let owned = map.owned(s).len().max(1);
            let shard = spawn_shard(&admitd, owned, &policy, &power)?;
            eprintln!("shard{s} on {} ({owned} domain(s))", shard.addr);
            endpoints.push(ShardSpec {
                addr: shard.addr.clone(),
                replica: None,
            });
            children.push(shard);
        }
        (map, endpoints)
    };

    let mut router =
        Router::new(map, &endpoints, &ClientConfig::default()).map_err(|e| e.to_string())?;

    let result = match mode {
        Mode::Stdin => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve(&mut router, stdin.lock(), stdout.lock()).map_err(|e| e.to_string())
        }
        Mode::Listen(addr) => {
            let listener = TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            println!("listening on {local}");
            std::io::stdout().flush().ok();
            // One session at a time: the merged decision log is one
            // serialized stream, so interleaving sessions would make the
            // cluster history depend on connection scheduling.
            let mut end = Ok(false);
            for stream in listener.incoming() {
                let stream = stream.map_err(|e| e.to_string())?;
                let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                end = serve(&mut router, reader, stream).map_err(|e| e.to_string());
                match end {
                    Ok(true) | Err(_) => break,
                    Ok(false) => {}
                }
            }
            end
        }
    };
    let shutdown = result?;
    if !shutdown {
        // EOF without a shutdown op: shut the fleet down ourselves so
        // spawned children do not outlive the router.
        let handled = router.handle_line("{\"op\":\"shutdown\"}");
        eprintln!("{}", handled.response);
    }
    for mut shard in children {
        let _ = shard.child.wait();
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
