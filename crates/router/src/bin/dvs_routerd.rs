//! `dvs_routerd` — the domain-sharded admission cluster front-end.
//!
//! ```text
//! dvs_routerd (--shards ADDR[~REPLICA],... | --spawn K)
//!             [--stdin | --listen ADDR]
//!             [--domains D] [--journal FILE]
//!             [--policy SPEC] [--power MODEL] [--shard-journals DIR]
//!             (the last three: spawn mode only)
//!
//!   --shards LIST   comma-separated shard endpoints; ADDR~REPLICA names a
//!                   read replica used to hedge stats reads when the
//!                   primary is down
//!   --spawn K       spawn K dvs_admitd shard processes (binary located
//!                   next to this one) on ephemeral ports and route over
//!                   them; each child gets exactly its owned domain count
//!   --stdin         serve newline-delimited JSON on stdin/stdout (default)
//!   --listen ADDR   serve TCP sessions on ADDR (one session at a time —
//!                   the merged decision log is a single serialized
//!                   stream); prints "listening on ADDR" once bound
//!   --domains D     global power-domain count (default: shard count)
//!   --journal FILE  journal the shard map (version + membership history).
//!                   An existing journal is **replayed**, not truncated:
//!                   the router resumes the journaled membership and
//!                   version and reconciles its routing tables against
//!                   the shards' actual domain layouts
//!   --policy SPEC   forwarded to spawned shards (default greedy)
//!   --power MODEL   forwarded to spawned shards (default xscale)
//!   --shard-journals DIR  give each spawned shard a write-ahead journal
//!                   at DIR/<name>.wal, so a killed shard can be respawned
//!                   with --recover and a reshard retried against its
//!                   recovered state
//! ```
//!
//! The protocol is the `dvs_admitd` protocol (see `dvs_admit::server`)
//! plus `{"op":"map"}` for the domain→shard assignment and
//! `{"op":"reshard",…}` for live membership changes. `stats` responds
//! with cluster aggregates under the balance invariant, `log` with the
//! deterministic merged decision log, and `shutdown` shuts every shard
//! down and responds with the final cluster aggregates.
//!
//! In spawn mode the router front-end also *manages* the fleet across
//! reshards: `{"op":"reshard","add":"NAME"}` (a bare name, no `=ADDR`)
//! spawns a fresh `dvs_admitd --domains 0` child and rewrites the
//! request to `NAME=ADDR` before routing, and any journaled child found
//! dead at reshard time is respawned at its old address with `--recover`
//! so an interrupted migration can be retried. A dead child *without* a
//! journal fails the reshard with a state-lost error instead of being
//! silently replaced by an empty engine. Restarting spawn mode against
//! an existing `--journal` likewise requires `--shard-journals`: the
//! fleet's state lives in the children, and only their journals can
//! carry it across the restart. On resume the journaled membership is
//! authoritative — a reshard may have grown the fleet past the original
//! `--spawn K`, and restarting with the same flags respawns every
//! journaled member, not K of them.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};

use dvs_admit::json::{self, JsonValue};
use dvs_admit::ClientConfig;
use dvs_router::{Router, ShardMap, ShardSpec};

enum Mode {
    Stdin,
    Listen(String),
}

/// A spawned shard child: process handle, the address it bound, and
/// everything needed to respawn it in place after a crash.
struct SpawnedShard {
    name: String,
    child: Child,
    addr: String,
    domains: usize,
}

/// Spawn-mode fleet configuration, shared by initial spawns, reshard
/// joins, and crash respawns.
struct SpawnCtx {
    admitd: PathBuf,
    policy: String,
    power: String,
    shard_journals: Option<PathBuf>,
}

impl SpawnCtx {
    fn journal_for(&self, name: &str) -> Option<PathBuf> {
        self.shard_journals
            .as_ref()
            .map(|d| d.join(format!("{name}.wal")))
    }
}

/// The number of domains `member` was constructed with: its dense
/// version-1 assignment if it is an initial member, zero if it joined
/// later (joiners grow purely via imports). This is the `--domains`
/// a recovering respawn must pass so journal replay starts from the
/// same construction the original process had.
fn birth_count(map: &ShardMap, member: &str) -> usize {
    let initial = map.initial_members();
    initial.iter().position(|m| m == member).map_or(0, |idx| {
        ShardMap::new(initial.to_vec(), map.domains(), None)
            .expect("the initial membership was validated when the map was journaled")
            .owned(idx)
            .len()
    })
}

/// Locates `dvs_admitd` next to the running binary.
fn admitd_path() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me
        .parent()
        .ok_or_else(|| "current_exe has no parent directory".to_string())?;
    let candidate = dir.join("dvs_admitd");
    if candidate.exists() {
        return Ok(candidate);
    }
    Err(format!("dvs_admitd not found at {}", candidate.display()))
}

/// Spawns a `dvs_admitd` child and reads the bound address from its
/// `listening on ADDR` line. The rest of the child's stdout is drained
/// by a reaper thread so the pipe can never block it.
fn spawn_admitd(admitd: &Path, args: &[String]) -> Result<(Child, String), String> {
    let mut child = Command::new(admitd)
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", admitd.display()))?;
    let stdout = child.stdout.take().ok_or("child stdout not captured")?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading child banner: {e}"))?;
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .ok_or_else(|| format!("unexpected child banner {line:?}"))?
        .to_string();
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = reader.read_to_end(&mut sink);
    });
    Ok((child, addr))
}

/// Spawns one shard (ephemeral port unless `listen` pins an address).
fn spawn_shard(
    ctx: &SpawnCtx,
    name: &str,
    domains: usize,
    listen: Option<&str>,
    recover: bool,
) -> Result<SpawnedShard, String> {
    let journal = ctx.journal_for(name);
    let mut args: Vec<String> = vec![
        "--listen".into(),
        listen.unwrap_or("127.0.0.1:0").into(),
        "--domains".into(),
        domains.to_string(),
        "--policy".into(),
        ctx.policy.clone(),
        "--power".into(),
        ctx.power.clone(),
    ];
    if let Some(j) = &journal {
        args.push("--journal".into());
        args.push(j.display().to_string());
        if recover && j.exists() {
            args.push("--recover".into());
        }
    }
    let (child, addr) = spawn_admitd(&ctx.admitd, &args)?;
    Ok(SpawnedShard {
        name: name.to_string(),
        child,
        addr,
        domains,
    })
}

/// Fleet work a reshard request needs before it reaches the router
/// (spawn mode only): respawn any dead child at its old address so the
/// migration can retry against recovered state, and resolve a bare
/// `"add":"NAME"` by spawning a fresh empty shard and rewriting the
/// request to `NAME=ADDR`. Returns the request line to route.
fn prepare_reshard(
    request: &str,
    children: &mut Vec<SpawnedShard>,
    ctx: &SpawnCtx,
) -> Result<String, String> {
    let Ok(pairs) = json::parse_object(request) else {
        return Ok(request.to_string()); // let the router report the parse error
    };
    if json::get(&pairs, "op").and_then(JsonValue::as_str) != Some("reshard") {
        return Ok(request.to_string());
    }
    for shard in children.iter_mut() {
        let dead = shard
            .child
            .try_wait()
            .map_err(|e| format!("{}: {e}", shard.name))?
            .is_some();
        if dead {
            // Without a journal there is nothing to recover: respawning
            // an empty engine at the old address would let the reshard
            // "succeed" by exporting freshly constructed, empty domains.
            if !ctx.journal_for(&shard.name).is_some_and(|j| j.exists()) {
                return Err(format!(
                    "shard {} is dead and has no journal to recover from — its state \
                     is lost (run with --shard-journals to make reshards crash-safe)",
                    shard.name
                ));
            }
            eprintln!("respawning {} on {}", shard.name, shard.addr);
            // SO_REUSEADDR (set by the listener) lets the old address
            // rebind immediately; --recover replays the shard journal.
            *shard = spawn_shard(ctx, &shard.name, shard.domains, Some(&shard.addr), true)?;
            eprintln!(
                "{} on {} (pid {}, recovered)",
                shard.name,
                shard.addr,
                shard.child.id()
            );
        }
    }
    match json::get(&pairs, "add").and_then(JsonValue::as_str) {
        Some(name) if !name.contains('=') => {
            let addr = match children.iter().find(|c| c.name == name) {
                Some(existing) => existing.addr.clone(),
                None => {
                    // A joining shard starts with zero domains; every
                    // domain it serves arrives through an import.
                    let shard = spawn_shard(ctx, name, 0, None, false)?;
                    eprintln!(
                        "{} on {} (pid {}, 0 domain(s), joining)",
                        shard.name,
                        shard.addr,
                        shard.child.id()
                    );
                    let addr = shard.addr.clone();
                    children.push(shard);
                    addr
                }
            };
            Ok(format!(
                "{{\"op\":\"reshard\",\"add\":\"{}={}\"}}",
                json::escape(name),
                json::escape(&addr)
            ))
        }
        _ => Ok(request.to_string()),
    }
}

fn serve<R: BufRead, W: Write>(
    router: &mut Router,
    reader: R,
    mut writer: W,
    mut fleet: Option<(&mut Vec<SpawnedShard>, &SpawnCtx)>,
) -> std::io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        let mut request = line.trim().to_string();
        if request.is_empty() {
            continue;
        }
        if let Some((children, ctx)) = fleet.as_mut() {
            match prepare_reshard(&request, children, ctx) {
                Ok(prepared) => request = prepared,
                Err(msg) => {
                    writeln!(
                        writer,
                        "{{\"ok\":false,\"kind\":\"reshard\",\"error\":\"{}\"}}",
                        json::escape(&msg)
                    )?;
                    writer.flush()?;
                    continue;
                }
            }
        }
        let handled = router.handle_line(&request);
        writeln!(writer, "{}", handled.response)?;
        writer.flush()?;
        if handled.shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

#[allow(clippy::too_many_lines)]
fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = Mode::Stdin;
    let mut shard_list: Option<String> = None;
    let mut spawn_count: Option<usize> = None;
    let mut domains: Option<usize> = None;
    let mut journal: Option<String> = None;
    let mut policy = "greedy".to_string();
    let mut power = "xscale".to_string();
    let mut shard_journals: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stdin" => mode = Mode::Stdin,
            "--listen" => {
                mode = Mode::Listen(it.next().ok_or("--listen needs an address")?.clone());
            }
            "--shards" => {
                shard_list = Some(it.next().ok_or("--shards needs a list")?.clone());
            }
            "--spawn" => {
                spawn_count = Some(
                    it.next()
                        .ok_or("--spawn needs a count")?
                        .parse()
                        .map_err(|e| format!("bad --spawn: {e}"))?,
                );
            }
            "--domains" => {
                domains = Some(
                    it.next()
                        .ok_or("--domains needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --domains: {e}"))?,
                );
            }
            "--journal" => {
                journal = Some(it.next().ok_or("--journal needs a file")?.clone());
            }
            "--policy" => policy = it.next().ok_or("--policy needs a value")?.clone(),
            "--power" => power = it.next().ok_or("--power needs a value")?.clone(),
            "--shard-journals" => {
                shard_journals = Some(PathBuf::from(
                    it.next().ok_or("--shard-journals needs a directory")?,
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: dvs_routerd (--shards ADDR[~REPLICA],... | --spawn K) \
                     [--stdin | --listen ADDR] [--domains D] [--journal FILE] \
                     [--policy SPEC] [--power MODEL] [--shard-journals DIR]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if shard_list.is_some() == spawn_count.is_some() {
        return Err("exactly one of --shards or --spawn is required".to_string());
    }

    if shard_journals.is_some() && spawn_count.is_none() {
        return Err("--shard-journals requires --spawn".to_string());
    }
    let journal_path = journal.as_deref().map(Path::new);
    // An existing map journal means this is a *restart*: replay it
    // instead of truncating it, and pick the fleet up where the previous
    // router left off. A missing file starts fresh.
    let mut resuming = false;
    let resumed: Option<ShardMap> = match journal_path {
        Some(p) if p.exists() => {
            let map = ShardMap::load(p).map_err(|e| e.to_string())?;
            if let Some(d) = domains {
                if d != map.domains() {
                    return Err(format!(
                        "--domains {d} conflicts with the journaled map ({} domains)",
                        map.domains()
                    ));
                }
            }
            eprintln!(
                "resuming shard map v{} ({} member(s)) from {}",
                map.version(),
                map.members().len(),
                p.display()
            );
            resuming = true;
            Some(map)
        }
        _ => None,
    };
    let mut children: Vec<SpawnedShard> = Vec::new();
    let mut spawn_ctx: Option<SpawnCtx> = None;
    let (map, endpoints) = if let Some(list) = &shard_list {
        // Shard names are the primary addresses: a fixed endpoint list is
        // a stable identity, and rendezvous hashing keeps the assignment
        // deterministic for it.
        let endpoints: Vec<ShardSpec> = list.split(',').map(ShardSpec::parse).collect();
        if let Some(map) = resumed {
            // The journaled membership is authoritative; --shards must
            // cover it exactly (reordered freely — replicas may differ).
            let mut ordered = Vec::with_capacity(map.members().len());
            for m in map.members() {
                let spec = endpoints
                    .iter()
                    .find(|s| &s.addr == m)
                    .ok_or_else(|| format!("journaled member {m:?} is not in --shards"))?;
                ordered.push(spec.clone());
            }
            if ordered.len() != endpoints.len() {
                return Err(format!(
                    "--shards lists {} endpoint(s) but the journaled membership \
                     has {}",
                    endpoints.len(),
                    ordered.len()
                ));
            }
            (map, ordered)
        } else {
            let names: Vec<String> = endpoints.iter().map(|s| s.addr.clone()).collect();
            let d = domains.unwrap_or(endpoints.len());
            let map = ShardMap::new(names, d, journal_path).map_err(|e| e.to_string())?;
            (map, endpoints)
        }
    } else {
        // Spawn mode: logical names shard0..shardK-1 so the assignment
        // does not depend on the ephemeral ports the children bind.
        let k = spawn_count.expect("checked above");
        if k == 0 {
            return Err("--spawn must be at least 1".to_string());
        }
        if let Some(dir) = &shard_journals {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("--shard-journals {}: {e}", dir.display()))?;
        }
        let ctx = SpawnCtx {
            admitd: admitd_path()?,
            policy: policy.clone(),
            power: power.clone(),
            shard_journals: shard_journals.clone(),
        };
        let (map, plan): (ShardMap, Vec<(String, usize, bool)>) = if let Some(map) = resumed {
            // Resuming a spawned fleet: the previous children are gone,
            // so each journaled member is respawned over its own journal
            // — without journals the fleet's state cannot be recovered.
            if shard_journals.is_none() {
                return Err(
                    "resuming a spawn-mode map journal requires --shard-journals \
                     (the fleet's state lives in the shard journals)"
                        .to_string(),
                );
            }
            // The journal is authoritative on membership: a reshard may
            // have grown or shrunk the fleet since the original --spawn,
            // and "restart with the same flags" must still work.
            if k != map.members().len() {
                eprintln!(
                    "note: --spawn {k} superseded by the journaled membership \
                     of {} member(s)",
                    map.members().len()
                );
            }
            let mut plan = Vec::with_capacity(map.members().len());
            for name in map.members() {
                let wal = ctx.journal_for(name).expect("checked above");
                if !wal.exists() {
                    return Err(format!(
                        "cannot resume: member {name:?} has no journal at {} — its \
                         state is lost",
                        wal.display()
                    ));
                }
                // `--recover` must rebuild over the member's *birth*
                // construction: the dense version-1 assignment for
                // initial members, zero domains for later joiners (their
                // domains replay from import records).
                plan.push((name.clone(), birth_count(&map, name), true));
            }
            (map, plan)
        } else {
            let names: Vec<String> = (0..k).map(|i| format!("shard{i}")).collect();
            let d = domains.unwrap_or(k);
            let map = ShardMap::new(names, d, journal_path).map_err(|e| e.to_string())?;
            let plan = (0..k)
                .map(|s| (format!("shard{s}"), map.owned(s).len(), false))
                .collect();
            (map, plan)
        };
        let mut endpoints = Vec::with_capacity(plan.len());
        for (name, owned, recover) in plan {
            // A shard serves exactly its owned domains (zero is fine —
            // the engine constructs empty and grows via imports).
            let shard = spawn_shard(&ctx, &name, owned, None, recover)?;
            eprintln!(
                "{name} on {} (pid {}, {owned} domain(s){})",
                shard.addr,
                shard.child.id(),
                if recover { ", recovered" } else { "" }
            );
            endpoints.push(ShardSpec {
                addr: shard.addr.clone(),
                replica: None,
            });
            children.push(shard);
        }
        spawn_ctx = Some(ctx);
        (map, endpoints)
    };

    // A resumed fleet holds live state from the previous router process:
    // Router::resume probes every shard for its actual domain layout and
    // task inventory so routing (including departures of pre-restart
    // tasks) picks up exactly where the old router left off.
    let mut router = if resuming {
        Router::resume(map, &endpoints, &ClientConfig::default())
    } else {
        Router::new(map, &endpoints, &ClientConfig::default())
    }
    .map_err(|e| e.to_string())?;

    let result = match mode {
        Mode::Stdin => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let fleet = spawn_ctx.as_ref().map(|ctx| (&mut children, ctx));
            serve(&mut router, stdin.lock(), stdout.lock(), fleet).map_err(|e| e.to_string())
        }
        Mode::Listen(addr) => {
            let listener = TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            println!("listening on {local}");
            std::io::stdout().flush().ok();
            // One session at a time: the merged decision log is one
            // serialized stream, so interleaving sessions would make the
            // cluster history depend on connection scheduling.
            let mut end = Ok(false);
            for stream in listener.incoming() {
                let stream = stream.map_err(|e| e.to_string())?;
                let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                let fleet = spawn_ctx.as_ref().map(|ctx| (&mut children, ctx));
                end = serve(&mut router, reader, stream, fleet).map_err(|e| e.to_string());
                match end {
                    Ok(true) | Err(_) => break,
                    Ok(false) => {}
                }
            }
            end
        }
    };
    let shutdown = result?;
    if !shutdown {
        // EOF without a shutdown op: shut the fleet down ourselves so
        // spawned children do not outlive the router.
        let handled = router.handle_line("{\"op\":\"shutdown\"}");
        eprintln!("{}", handled.response);
    }
    for mut shard in children {
        let _ = shard.child.wait();
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
