//! Versioned, journaled power-domain → shard assignment.
//!
//! A [`ShardMap`] deterministically assigns every global power domain to
//! exactly one shard via **rendezvous (highest-random-weight) hashing**:
//! domain `g` belongs to the member whose `hash(member, g)` is largest.
//! The properties that matter here:
//!
//! * **Total and unique** — every domain maps to exactly one member, for
//!   any non-empty membership (the routing-property suite pins this).
//! * **Deterministic** — the hash is a fixed FNV-1a over the member name
//!   and the domain index; the same membership always yields the same
//!   assignment, on any host, at any `DVS_THREADS`.
//! * **Minimal movement** — adding or removing one member only moves the
//!   domains that member wins or owned; all other assignments are
//!   untouched.
//!
//! Reassignment is **explicit, never implicit**: the map carries a
//! version that bumps on every membership change, and when a journal
//! path is attached every change is appended as a line — a restarted
//! router replays the journal and arrives at the same version and
//! assignment, and an operator can audit exactly when each domain moved.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Error raised when loading or appending the shard-map journal.
#[derive(Debug)]
pub enum MapError {
    /// Reading or writing the journal failed.
    Io(std::io::Error),
    /// The journal contents are not a valid shard-map history.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// An operation was invalid for the current membership.
    Membership(String),
    /// A journal record's version did not advance the map by exactly one:
    /// a duplicated or stale tail (torn write, doubled append, an old
    /// journal segment glued after a newer one) rather than a valid
    /// history. Loading refuses to silently adopt the regressed version.
    VersionRegression {
        /// 1-based line number of the offending record.
        line: usize,
        /// The version the record carried.
        found: u64,
        /// The version a valid history would carry at that point.
        expected: u64,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Io(e) => write!(f, "shard-map journal I/O: {e}"),
            MapError::Parse { line, reason } => {
                write!(f, "shard-map journal line {line}: {reason}")
            }
            MapError::Membership(reason) => write!(f, "shard-map membership: {reason}"),
            MapError::VersionRegression {
                line,
                found,
                expected,
            } => write!(
                f,
                "shard-map journal line {line}: version {found} does not advance \
                 the map to {expected} (stale or duplicated tail)"
            ),
        }
    }
}

impl std::error::Error for MapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

const JOURNAL_HEADER: &str = "dvs-router-shardmap v1";

/// Deterministic rendezvous-hash assignment of `domains` global power
/// domains onto a named shard membership. See the [module docs](self).
#[derive(Debug)]
pub struct ShardMap {
    members: Vec<String>,
    /// The version-1 membership (the journal's `init` record). A member
    /// present since init was born serving the dense version-1
    /// assignment; every later joiner was born empty — the distinction a
    /// restarted router needs to name a shard's unkeyed engine slots.
    initial: Vec<String>,
    domains: usize,
    version: u64,
    journal: Option<PathBuf>,
}

/// FNV-1a over the member name and the domain index: stable across
/// platforms and builds (no `DefaultHasher`, whose algorithm is not
/// guaranteed).
fn weight(member: &str, domain: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in member.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for b in (domain as u64).to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl ShardMap {
    /// Creates a map over the given members (shard names, index order =
    /// shard index) and domain count, at version 1. When `journal` is
    /// given, the initial membership is written to it (truncating any
    /// previous file — use [`ShardMap::load`] to resume one instead).
    ///
    /// # Errors
    ///
    /// * [`MapError::Membership`] for an empty membership, zero domains,
    ///   a duplicate name, or a name with whitespace or commas (they
    ///   would corrupt the journal format).
    /// * [`MapError::Io`] when the journal cannot be written.
    pub fn new<S: Into<String>>(
        members: Vec<S>,
        domains: usize,
        journal: Option<&Path>,
    ) -> Result<Self, MapError> {
        let members: Vec<String> = members.into_iter().map(Into::into).collect();
        Self::validate(&members, domains)?;
        let map = ShardMap {
            initial: members.clone(),
            members,
            domains,
            version: 1,
            journal: journal.map(Path::to_path_buf),
        };
        if let Some(path) = &map.journal {
            let mut text = format!("{JOURNAL_HEADER}\n");
            text.push_str(&format!(
                "1 init {} {}\n",
                map.domains,
                map.members.join(",")
            ));
            std::fs::write(path, text).map_err(MapError::Io)?;
        }
        Ok(map)
    }

    fn validate(members: &[String], domains: usize) -> Result<(), MapError> {
        if members.is_empty() {
            return Err(MapError::Membership("no members".to_string()));
        }
        if domains == 0 {
            return Err(MapError::Membership("no domains".to_string()));
        }
        for (i, m) in members.iter().enumerate() {
            if m.is_empty() || m.contains(char::is_whitespace) || m.contains(',') {
                return Err(MapError::Membership(format!("invalid member name {m:?}")));
            }
            if members[..i].contains(m) {
                return Err(MapError::Membership(format!("duplicate member {m:?}")));
            }
        }
        Ok(())
    }

    /// Replays a shard-map journal, reconstructing the membership and
    /// version the writer last held.
    ///
    /// # Errors
    ///
    /// [`MapError::Io`] / [`MapError::Parse`] naming the offending line,
    /// and [`MapError::VersionRegression`] when a record's version fails
    /// to advance the map by exactly one (a duplicated or stale tail —
    /// e.g. a torn write followed by a re-append of an older segment).
    pub fn load(path: &Path) -> Result<Self, MapError> {
        let text = std::fs::read_to_string(path).map_err(MapError::Io)?;
        let mut lines = text.lines().enumerate();
        let perr = |line: usize, reason: String| MapError::Parse { line, reason };
        match lines.next() {
            Some((_, JOURNAL_HEADER)) => {}
            other => {
                return Err(perr(1, format!("bad header {:?}", other.map(|(_, l)| l))));
            }
        }
        let mut map: Option<ShardMap> = None;
        for (idx, raw) in lines {
            let line_no = idx + 1;
            let cols: Vec<&str> = raw.split_whitespace().collect();
            if cols.len() != 4 && !(cols.len() == 3 && cols[1] != "init") {
                return Err(perr(line_no, format!("malformed record {raw:?}")));
            }
            let version: u64 = cols[0]
                .parse()
                .map_err(|_| perr(line_no, format!("bad version {:?}", cols[0])))?;
            match (cols[1], &mut map) {
                ("init", None) => {
                    let domains: usize = cols[2]
                        .parse()
                        .map_err(|_| perr(line_no, format!("bad domain count {:?}", cols[2])))?;
                    let members: Vec<String> = cols[3].split(',').map(String::from).collect();
                    Self::validate(&members, domains).map_err(|e| perr(line_no, e.to_string()))?;
                    map = Some(ShardMap {
                        initial: members.clone(),
                        members,
                        domains,
                        version,
                        journal: None,
                    });
                }
                ("add", Some(m)) => {
                    if version != m.version + 1 {
                        return Err(MapError::VersionRegression {
                            line: line_no,
                            found: version,
                            expected: m.version + 1,
                        });
                    }
                    m.apply_add(cols[2])
                        .map_err(|e| perr(line_no, e.to_string()))?;
                    m.version = version;
                }
                ("remove", Some(m)) => {
                    if version != m.version + 1 {
                        return Err(MapError::VersionRegression {
                            line: line_no,
                            found: version,
                            expected: m.version + 1,
                        });
                    }
                    m.apply_remove(cols[2])
                        .map_err(|e| perr(line_no, e.to_string()))?;
                    m.version = version;
                }
                (op, _) => return Err(perr(line_no, format!("unexpected record {op:?}"))),
            }
        }
        let mut map = map.ok_or_else(|| perr(1, "journal has no init record".to_string()))?;
        map.journal = Some(path.to_path_buf());
        Ok(map)
    }

    /// Member names in shard-index order.
    #[must_use]
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// The version-1 membership (what the journal's `init` record
    /// carried). Members present here were born serving the dense
    /// version-1 assignment; members added by later reshards were born
    /// with zero domains and grew purely via imports.
    #[must_use]
    pub fn initial_members(&self) -> &[String] {
        &self.initial
    }

    /// Number of global power domains being assigned.
    #[must_use]
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// Current map version: 1 at creation, bumped by every membership
    /// change.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The shard index owning global domain `g`: the member with the
    /// highest rendezvous weight (ties — astronomically unlikely with a
    /// 64-bit hash — break towards the lower shard index, keeping the
    /// assignment total and unique by construction).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn shard_for(&self, g: usize) -> usize {
        assert!(g < self.domains, "domain {g} out of range");
        let mut best = 0usize;
        let mut best_w = weight(&self.members[0], g);
        for (i, m) in self.members.iter().enumerate().skip(1) {
            let w = weight(m, g);
            if w > best_w {
                best = i;
                best_w = w;
            }
        }
        best
    }

    /// The sorted list of global domains shard `s` owns. A shard serves
    /// its owned domains as local domains `0..owned.len()` in this order —
    /// the global↔local translation the router applies on every request
    /// and decision-log line.
    #[must_use]
    pub fn owned(&self, s: usize) -> Vec<usize> {
        (0..self.domains)
            .filter(|&g| self.shard_for(g) == s)
            .collect()
    }

    /// Adds a member, bumping the version and journaling the change.
    ///
    /// # Errors
    ///
    /// [`MapError::Membership`] for invalid/duplicate names,
    /// [`MapError::Io`] when the journal append fails.
    pub fn add_member(&mut self, name: &str) -> Result<(), MapError> {
        self.apply_add(name)?;
        self.version += 1;
        self.append(&format!("{} add {name}\n", self.version))
    }

    /// Removes a member, bumping the version and journaling the change.
    /// The last member cannot be removed.
    ///
    /// # Errors
    ///
    /// [`MapError::Membership`] for unknown names or an emptying
    /// membership, [`MapError::Io`] when the journal append fails.
    pub fn remove_member(&mut self, name: &str) -> Result<(), MapError> {
        self.apply_remove(name)?;
        self.version += 1;
        self.append(&format!("{} remove {name}\n", self.version))
    }

    fn apply_add(&mut self, name: &str) -> Result<(), MapError> {
        let mut next = self.members.clone();
        next.push(name.to_string());
        Self::validate(&next, self.domains)?;
        self.members = next;
        Ok(())
    }

    fn apply_remove(&mut self, name: &str) -> Result<(), MapError> {
        if self.members.len() == 1 {
            return Err(MapError::Membership(
                "cannot remove the last member".to_string(),
            ));
        }
        let pos = self
            .members
            .iter()
            .position(|m| m == name)
            .ok_or_else(|| MapError::Membership(format!("unknown member {name:?}")))?;
        self.members.remove(pos);
        Ok(())
    }

    fn append(&self, record: &str) -> Result<(), MapError> {
        let Some(path) = &self.journal else {
            return Ok(());
        };
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(MapError::Io)?;
        f.write_all(record.as_bytes()).map_err(MapError::Io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard{i}")).collect()
    }

    /// A per-invocation-unique scratch directory, so concurrent test
    /// runs never collide on a shared journal path.
    fn scratch_dir(test: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dvs_router_{test}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn every_domain_maps_to_exactly_one_shard() {
        for k in 1..=5 {
            let map = ShardMap::new(names(k), 16, None).unwrap();
            let mut owned_total = 0;
            for s in 0..k {
                owned_total += map.owned(s).len();
            }
            assert_eq!(owned_total, 16, "k={k}: owned sets must partition");
            for g in 0..16 {
                let s = map.shard_for(g);
                assert!(map.owned(s).contains(&g));
            }
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        let a = ShardMap::new(names(4), 32, None).unwrap();
        let b = ShardMap::new(names(4), 32, None).unwrap();
        for g in 0..32 {
            assert_eq!(a.shard_for(g), b.shard_for(g));
        }
    }

    #[test]
    fn removal_only_moves_the_removed_members_domains() {
        let mut map = ShardMap::new(names(4), 64, None).unwrap();
        let before: Vec<String> = (0..64)
            .map(|g| map.members()[map.shard_for(g)].clone())
            .collect();
        map.remove_member("shard2").unwrap();
        for (g, owner) in before.iter().enumerate() {
            if owner != "shard2" {
                assert_eq!(
                    &map.members()[map.shard_for(g)],
                    owner,
                    "domain {g} moved although its owner stayed"
                );
            }
        }
    }

    #[test]
    fn version_bumps_on_membership_change_and_journal_replays() {
        let dir = scratch_dir("map_test");
        let path = dir.join("map.journal");
        let mut map = ShardMap::new(names(2), 8, Some(&path)).unwrap();
        assert_eq!(map.version(), 1);
        map.add_member("shard2").unwrap();
        assert_eq!(map.version(), 2);
        map.remove_member("shard0").unwrap();
        assert_eq!(map.version(), 3);
        let loaded = ShardMap::load(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(loaded.version(), 3);
        assert_eq!(loaded.members(), map.members());
        assert_eq!(
            loaded.initial_members(),
            names(2),
            "replay must preserve the version-1 membership"
        );
        for g in 0..8 {
            assert_eq!(loaded.shard_for(g), map.shard_for(g));
        }
    }

    #[test]
    fn load_rejects_a_regressed_or_stale_journal_tail() {
        let dir = scratch_dir("map_regress_test");
        let path = dir.join("map.journal");
        let mut map = ShardMap::new(names(2), 8, Some(&path)).unwrap();
        map.add_member("shard2").unwrap();
        // Re-append the version-2 record: a duplicated tail after a torn
        // write. The load must fail with the typed error, not silently
        // adopt the stale version.
        let text = std::fs::read_to_string(&path).unwrap();
        let dup = text.lines().last().unwrap().replace("shard2", "shard3");
        std::fs::write(&path, format!("{text}{dup}\n")).unwrap();
        let err = ShardMap::load(&path).unwrap_err();
        let _ = std::fs::remove_dir_all(&dir);
        match err {
            MapError::VersionRegression {
                line,
                found,
                expected,
            } => {
                assert_eq!(line, 4);
                assert_eq!(found, 2);
                assert_eq!(expected, 3);
            }
            other => panic!("expected VersionRegression, got {other}"),
        }
    }

    #[test]
    fn invalid_memberships_are_rejected() {
        assert!(ShardMap::new(Vec::<String>::new(), 4, None).is_err());
        assert!(ShardMap::new(vec!["a"], 0, None).is_err());
        assert!(ShardMap::new(vec!["a", "a"], 4, None).is_err());
        assert!(ShardMap::new(vec!["a b"], 4, None).is_err());
        assert!(ShardMap::new(vec!["a,b"], 4, None).is_err());
        let mut map = ShardMap::new(vec!["solo"], 4, None).unwrap();
        assert!(map.remove_member("solo").is_err());
        assert!(map.remove_member("ghost").is_err());
        assert!(map.add_member("solo").is_err());
    }
}
