//! dvs-router: a domain-sharded admission **cluster** front-end.
//!
//! A single `dvs_admitd` runs one [`AdmissionEngine`][engine] over K
//! power domains. This crate scales that horizontally: a fleet of
//! `dvs_admitd` **shards** each own a disjoint subset of the global
//! power domains, and a stateless-protocol/stateful-log **router**
//! ([`Router`], shipped as the `dvs_routerd` binary) fronts them with
//! the same newline-delimited JSON protocol clients already speak.
//!
//! The two load-bearing pieces:
//!
//! * [`ShardMap`] — deterministic rendezvous-hash assignment of every
//!   global power domain to exactly one shard, versioned and journaled
//!   so reassignment is always explicit, never implicit.
//! * [`Router`] — routes arrivals/departures to the owning shard, fans
//!   ticks out to every shard, scatter-gathers cluster stats under a
//!   balance-invariant check, and maintains a **deterministic merged
//!   decision log** that is byte-identical to what one unsharded
//!   multi-domain engine would log for the same event stream, at any
//!   shard count and any `DVS_THREADS`.
//!
//! Determinism rests on the domain-pinned protocol introduced alongside
//! this crate: tasks carry a power-domain pin end to end (event traces,
//! journals, snapshots, replication, the serving protocol), the engine
//! prices and guards pinned work entirely within its pin domain, and so
//! a domain's decision stream depends only on that domain's events —
//! sharding by domain partitions the decision process exactly. See
//! `DESIGN.md` §16 for the full argument and its caveats (stateless
//! policies, no cross-domain regret coupling).
//!
//! [engine]: dvs_admit::AdmissionEngine

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod map;
pub mod router;

pub use map::{MapError, ShardMap};
pub use router::{Router, RouterError, RouterMetrics, ShardSpec};
