//! The live-resharding exactness contract: a cluster whose membership
//! changes *mid-session* — domains migrating between shards via the
//! export → import → version-fence protocol — produces a merged
//! decision log byte-identical to one unsharded multi-domain engine
//! replaying the same pinned trace, across membership transitions
//! {1→2→4, 4→2} × `DVS_THREADS` {1,4}, with reshards fired between
//! arrivals in the middle of the event stream.

use std::net::TcpListener;
use std::sync::{Arc, Mutex};

use dvs_admit::json::{self, JsonValue};
use dvs_admit::server::{serve_tcp, ServeOptions, ServerControl};
use dvs_admit::{AdmissionEngine, ClientConfig, EngineConfig, TraceSpec};
use dvs_power::presets::{cubic_ideal, xscale_ideal};
use dvs_power::Processor;
use dvs_router::{Router, ShardMap, ShardSpec};
use reject_sched::online::OnlineGreedy;
use rt_model::io::EventKind;

/// Serialises tests that touch the process-global `DVS_THREADS` variable.
fn with_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var(dvs_exec::THREADS_ENV, n);
    let out = f();
    std::env::remove_var(dvs_exec::THREADS_ENV);
    out
}

fn config() -> EngineConfig {
    EngineConfig::default()
        .resolve_every(2)
        .resolve_budget(5_000)
}

/// Per-domain processor mix keyed by *global* domain index, so a shard
/// hosting any subset builds the same processors the unsharded
/// reference has — and a migrated domain's CPU spec round-trips through
/// the export payload to the identical processor.
fn cpu_for(global_domain: usize) -> Processor {
    if global_domain.is_multiple_of(2) {
        cubic_ideal()
    } else {
        xscale_ideal()
    }
}

/// An in-process shard serving the given global domains over TCP. A
/// joining shard starts with *zero* domains (mirroring
/// `dvs_admitd --domains 0`): everything it serves arrives via import.
fn shard_server(owned: &[usize]) -> (String, std::thread::JoinHandle<()>) {
    let cpus: Vec<Processor> = owned.iter().map(|&g| cpu_for(g)).collect();
    let engine = AdmissionEngine::with_domains(cpus, Box::new(OnlineGreedy), config()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let engine = Arc::new(Mutex::new(engine));
    let handle = std::thread::spawn(move || {
        let ctl = Arc::new(ServerControl::new());
        let _ = serve_tcp(&listener, &engine, ServeOptions::default(), &ctl, None);
    });
    (addr, handle)
}

fn client_config() -> ClientConfig {
    ClientConfig {
        max_attempts: 2,
        backoff_base: std::time::Duration::from_millis(1),
        ..ClientConfig::default()
    }
}

fn request_line(event: &rt_model::io::EventRecord) -> String {
    match &event.kind {
        EventKind::Arrive(t) => {
            let domain = t
                .domain()
                .map_or_else(String::new, |d| format!(",\"domain\":{d}"));
            format!(
                "{{\"op\":\"arrive\",\"at\":{},\"id\":{},\"cycles\":{},\"period\":{},\
                 \"deadline\":{},\"penalty\":{}{domain}}}",
                event.at,
                t.id().index(),
                t.wcec(),
                t.period(),
                t.deadline(),
                t.penalty()
            )
        }
        EventKind::Depart(id) => format!(
            "{{\"op\":\"depart\",\"at\":{},\"id\":{}}}",
            event.at,
            id.index()
        ),
        EventKind::Tick => format!("{{\"op\":\"tick\",\"at\":{}}}", event.at),
    }
}

/// A membership change to fire immediately before the trace event at
/// the given index (so reshards land between arrivals, mid-session).
enum Step {
    Add(&'static str),
    Remove(&'static str),
}

/// Replays a pinned trace through a cluster that starts with
/// `start_shards` members and reshards at the scheduled event indices.
/// Returns (merged log, final stats). Every response — events and
/// reshards alike — must be ok.
fn resharded_replay(
    start_shards: usize,
    steps: &[(usize, Step)],
    spec: TraceSpec,
) -> (String, String) {
    let trace = spec.generate().unwrap();
    let names: Vec<String> = (0..start_shards).map(|i| format!("shard{i}")).collect();
    let map = ShardMap::new(names, spec.domains, None).unwrap();
    let mut endpoints = Vec::new();
    let mut handles = Vec::new();
    for s in 0..start_shards {
        let (addr, handle) = shard_server(&map.owned(s));
        endpoints.push(ShardSpec {
            addr,
            replica: None,
        });
        handles.push(handle);
    }
    let mut router = Router::new(map, &endpoints, &client_config()).unwrap();
    let mut steps = steps.iter().peekable();
    for (i, event) in trace.iter().enumerate() {
        while steps.peek().is_some_and(|(at, _)| *at == i) {
            let (_, step) = steps.next().unwrap();
            let line = match step {
                Step::Add(name) => {
                    let (addr, handle) = shard_server(&[]);
                    handles.push(handle);
                    format!("{{\"op\":\"reshard\",\"add\":\"{name}={addr}\"}}")
                }
                Step::Remove(name) => format!("{{\"op\":\"reshard\",\"remove\":\"{name}\"}}"),
            };
            let resp = router.handle_line(&line).response;
            assert!(
                resp.starts_with("{\"ok\":true"),
                "reshard before event {i} refused: {resp}"
            );
        }
        let handled = router.handle_line(&request_line(event));
        assert!(
            handled.response.starts_with("{\"ok\":true"),
            "event {event:?} refused: {}",
            handled.response
        );
    }
    let stats = router.handle_line("{\"op\":\"stats\"}").response;
    assert!(stats.starts_with("{\"ok\":true"), "stats refused: {stats}");
    let log = router.merged_log().to_string();
    let down = router.handle_line("{\"op\":\"shutdown\"}");
    assert!(down.shutdown);
    for h in handles {
        h.join().unwrap();
    }
    (log, stats)
}

/// The unsharded reference: one engine over all domains, same pinned
/// trace — oblivious to any resharding.
fn reference_log(spec: TraceSpec) -> String {
    let trace = spec.generate().unwrap();
    let cpus: Vec<Processor> = (0..spec.domains).map(cpu_for).collect();
    let mut engine = AdmissionEngine::new(cpus, Box::new(OnlineGreedy), config()).unwrap();
    dvs_admit::trace::replay(&mut engine, &trace).unwrap();
    engine.format_decision_log()
}

fn num(pairs: &[(String, JsonValue)], key: &str) -> u64 {
    json::get(pairs, key)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("missing numeric field {key:?}")) as u64
}

/// Scale-out: 1 → 2 → 4 members, reshards fired a third and two thirds
/// of the way through the session. The merged log must match the
/// unsharded reference byte for byte at `DVS_THREADS` 1 and 4, and the
/// balance invariant must hold in the final stats.
#[test]
fn scale_out_1_2_4_is_byte_identical_to_unsharded() {
    let spec = TraceSpec::new(18, 2.4, 3).domains(4);
    let reference = with_threads("1", || reference_log(spec));
    assert!(
        reference.contains("accepted"),
        "reference log has no admissions"
    );
    let n = spec.generate().unwrap().len();
    for threads in ["1", "4"] {
        let steps = [
            (n / 3, Step::Add("shard1")),
            (2 * n / 3, Step::Add("shard2")),
        ];
        let steps2 = [(2 * n / 3 + 1, Step::Add("shard3"))];
        // Two adds at one point and one later: 1→2→3→4 in total, with
        // the last fired between different arrivals than the first two.
        let all: Vec<(usize, Step)> = steps.into_iter().chain(steps2).collect();
        let (log, stats) = with_threads(threads, || resharded_replay(1, &all, spec));
        assert_eq!(
            log, reference,
            "scale-out log diverged at {threads} threads"
        );
        let pairs = json::parse_object(&stats).unwrap();
        assert_eq!(num(&pairs, "arrivals"), 18);
        assert_eq!(
            num(&pairs, "accepted") + num(&pairs, "rejected") + num(&pairs, "shed"),
            num(&pairs, "arrivals"),
            "balance invariant broken after scale-out: {stats}"
        );
        assert_eq!(num(&pairs, "map_version"), 4, "three reshards from v1");
    }
}

/// Scale-in: 4 → 3 → 2 members, the removed shards' domains migrating
/// onto the survivors. Drained shards stay in the fleet, so historical
/// counters still aggregate and the balance invariant survives.
#[test]
fn scale_in_4_2_is_byte_identical_to_unsharded() {
    let spec = TraceSpec::new(18, 2.4, 11).domains(5);
    let reference = with_threads("1", || reference_log(spec));
    let n = spec.generate().unwrap().len();
    for threads in ["1", "4"] {
        let steps = [
            (n / 3, Step::Remove("shard3")),
            (2 * n / 3, Step::Remove("shard1")),
        ];
        let (log, stats) = with_threads(threads, || resharded_replay(4, &steps, spec));
        assert_eq!(log, reference, "scale-in log diverged at {threads} threads");
        let pairs = json::parse_object(&stats).unwrap();
        assert_eq!(
            num(&pairs, "accepted") + num(&pairs, "rejected") + num(&pairs, "shed"),
            num(&pairs, "arrivals"),
            "balance invariant broken after scale-in: {stats}"
        );
        assert_eq!(num(&pairs, "map_version"), 3, "two reshards from v1");
    }
}

/// A reshard is explicit about its movement: the response reports the
/// map version it cut over to and how many domains moved, and the
/// rendezvous map moves strictly fewer domains than a naive `g mod K`
/// rehash would.
#[test]
fn reshard_reports_version_and_minimal_movement() {
    let domains = 12;
    let (mut router, mut handles) = {
        let map = ShardMap::new(vec!["shard0", "shard1"], domains, None).unwrap();
        let mut endpoints = Vec::new();
        let mut handles = Vec::new();
        for s in 0..2 {
            let (addr, handle) = shard_server(&map.owned(s));
            endpoints.push(ShardSpec {
                addr,
                replica: None,
            });
            handles.push(handle);
        }
        (
            Router::new(map, &endpoints, &client_config()).unwrap(),
            handles,
        )
    };
    let (addr, handle) = shard_server(&[]);
    handles.push(handle);
    let resp = router
        .handle_line(&format!("{{\"op\":\"reshard\",\"add\":\"shard2={addr}\"}}"))
        .response;
    let pairs = json::parse_object(&resp).unwrap();
    assert_eq!(
        json::get(&pairs, "ok"),
        Some(&JsonValue::Bool(true)),
        "reshard refused: {resp}"
    );
    assert_eq!(num(&pairs, "version"), 2);
    let moved = num(&pairs, "moved") as usize;
    assert!(moved > 0, "a third member must win some domains");
    // Naive modulo rehash 2→3 moves about two thirds of all domains;
    // rendezvous moves only what the new member wins (~1/3). The hard
    // bound either way: strictly fewer than the naive scheme.
    let naive_moved = (0..domains).filter(|g| g % 2 != g % 3).count();
    assert!(
        moved < naive_moved,
        "rendezvous moved {moved} domains, naive modulo rehash moves {naive_moved}"
    );
    router.handle_line("{\"op\":\"shutdown\"}");
    for h in handles {
        h.join().unwrap();
    }
}

/// Reshard argument validation is typed and touches no shard: unknown
/// members, missing ADDR on add (outside spawn mode), both-or-neither
/// argument shapes.
#[test]
fn reshard_validation_errors_are_inband() {
    let (mut router, handles) = {
        let map = ShardMap::new(vec!["shard0", "shard1"], 4, None).unwrap();
        let mut endpoints = Vec::new();
        let mut handles = Vec::new();
        for s in 0..2 {
            let (addr, handle) = shard_server(&map.owned(s));
            endpoints.push(ShardSpec {
                addr,
                replica: None,
            });
            handles.push(handle);
        }
        (
            Router::new(map, &endpoints, &client_config()).unwrap(),
            handles,
        )
    };
    let kind = |resp: &str| -> String {
        let pairs = json::parse_object(resp).unwrap();
        json::get(&pairs, "kind")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string()
    };
    assert_eq!(
        kind(&router.handle_line("{\"op\":\"reshard\"}").response),
        "bad-request"
    );
    assert_eq!(
        kind(
            &router
                .handle_line("{\"op\":\"reshard\",\"add\":\"x=1\",\"remove\":\"y\"}")
                .response
        ),
        "bad-request"
    );
    assert_eq!(
        kind(
            &router
                .handle_line("{\"op\":\"reshard\",\"add\":\"bare-name\"}")
                .response
        ),
        "bad-request"
    );
    assert_eq!(
        kind(
            &router
                .handle_line("{\"op\":\"reshard\",\"remove\":\"ghost\"}")
                .response
        ),
        "reshard"
    );
    // Duplicate member name is caught by the probe map.
    assert_eq!(
        kind(
            &router
                .handle_line("{\"op\":\"reshard\",\"add\":\"shard0=127.0.0.1:1\"}")
                .response
        ),
        "reshard"
    );
    // Removing everything is refused before any migration starts.
    router.handle_line("{\"op\":\"reshard\",\"remove\":\"shard1\"}");
    assert_eq!(
        kind(
            &router
                .handle_line("{\"op\":\"reshard\",\"remove\":\"shard0\"}")
                .response
        ),
        "reshard"
    );
    router.handle_line("{\"op\":\"shutdown\"}");
    for h in handles {
        h.join().unwrap();
    }
}
